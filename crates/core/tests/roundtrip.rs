//! Round-trip serialization: parse → rewrite with an empty rule set →
//! render must be idempotent, and rendered text must re-parse to the same
//! structure — including group graph patterns (nested groups, OPTIONAL,
//! UNION, FILTER) and the xsd-typed sugar literals.

use sparql_rewrite_core::{parse_query, AlignmentStore, IndexedRewriter, Interner, Rewriter};

mod common;
use common::{random_group_query_text, Rng};

const QUERIES: &[&str] = &[
    "SELECT * WHERE { ?s ?p ?o }",
    "SELECT ?s ?o WHERE { ?s <http://ex.org/p> ?o . }",
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
     SELECT ?name ?mbox WHERE {\n\
       ?x foaf:name ?name ;\n\
          foaf:mbox ?mbox .\n\
       ?x a foaf:Person\n\
     }",
    "PREFIX ex: <http://ex.org/>\n\
     SELECT ?a WHERE { ?a ex:p \"plain\" , \"tagged\"@en , \
      \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> }",
    "SELECT * WHERE { _:b <http://ex.org/p> ?v . ?v <http://ex.org/q> _:b }",
    // Bare group pattern without the WHERE keyword.
    "SELECT ?x { ?x <http://ex.org/p> <http://ex.org/o> }",
    // Group graph patterns: OPTIONAL, UNION (binary and n-ary), FILTER,
    // nesting, and the empty group.
    "SELECT * WHERE { ?s <http://ex.org/p> ?o OPTIONAL { ?o <http://ex.org/q> ?r } }",
    "SELECT * WHERE { { ?s <http://ex.org/p> ?o } UNION { ?s <http://ex.org/q> ?o } }",
    "SELECT ?s WHERE { { ?s <http://a> 1 } UNION { ?s <http://b> 2.5 } UNION { ?s <http://c> true } }",
    "SELECT * WHERE { ?s <http://ex.org/p> ?o . FILTER(?o > 3) }",
    "SELECT * WHERE { ?s <http://ex.org/p> ?o \
     FILTER(?o = <http://ex.org/X> || !(?o < 3) && ?s != \"x\"@en) }",
    "SELECT * WHERE { ?a <http://p1> ?b OPTIONAL { ?b <http://p2> ?c \
     { ?c <http://p3> ?d } UNION { ?c <http://p4> ?e FILTER(?e <= -7) } } ?f <http://p5> ?g }",
    "SELECT * WHERE { }",
    "SELECT * WHERE { OPTIONAL { } { } UNION { } }",
    // SERVICE groups: IRI and variable endpoints, nesting inside and
    // around other group constructs.
    "SELECT * WHERE { ?s <http://ex.org/p> ?o . SERVICE <http://fed.org/sparql> { ?o <http://ex.org/q> ?r } }",
    "SELECT ?r WHERE { SERVICE ?ep { ?o <http://ex.org/q> ?r OPTIONAL { ?r <http://ex.org/s> ?t } } }",
    "SELECT * WHERE { SERVICE <http://a.org/> { SERVICE <http://b.org/> { ?s ?p ?o } FILTER(?o > 1) } }",
    "SELECT * WHERE { { SERVICE ?e { ?s <http://p> 1 } } UNION { ?s <http://q> 2 } SERVICE <http://c.org/> { } }",
];

#[test]
fn parse_rewrite_empty_render_is_idempotent() {
    let store = AlignmentStore::new();
    for input in QUERIES {
        let mut interner = Interner::new();
        let parsed = parse_query(input, &mut interner).unwrap_or_else(|e| {
            panic!("failed to parse {input:?}: {e}");
        });
        let rewriter = IndexedRewriter::new(&store);
        let rewritten = rewriter.rewrite_query(&parsed);
        assert_eq!(
            rewritten, parsed,
            "empty rule set must be the identity rewrite for {input:?}"
        );
        let rendered = rewritten.display(&interner).to_string();

        // The rendered text is valid SPARQL for this fragment: it parses,
        // and it parses to the same structure.
        let reparsed = parse_query(&rendered, &mut interner).unwrap_or_else(|e| {
            panic!("rendered text failed to re-parse: {e}\n--- rendered ---\n{rendered}");
        });
        assert_eq!(
            reparsed, parsed,
            "render → parse must be the identity for {input:?}\n--- rendered ---\n{rendered}"
        );

        // Full fixpoint: rendering the reparsed query reproduces the text.
        let rerendered = reparsed.display(&interner).to_string();
        assert_eq!(rendered, rerendered, "rendering must be a fixpoint");
    }
}

#[test]
fn random_group_queries_round_trip() {
    // Deterministic seeds through the shared generator: parse → display →
    // parse must be structural identity and display → parse → display a
    // textual fixpoint for arbitrarily nested OPTIONAL/UNION/FILTER shapes.
    for seed in 1..=30u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let text = random_group_query_text(&mut rng);
        let mut interner = Interner::new();
        let parsed = parse_query(&text, &mut interner)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        let rendered = parsed.display(&interner).to_string();
        let reparsed = parse_query(&rendered, &mut interner)
            .unwrap_or_else(|e| panic!("seed {seed}: re-parse failed: {e}\n{rendered}"));
        assert_eq!(reparsed, parsed, "seed {seed}\n{text}\n---\n{rendered}");
        assert_eq!(
            reparsed.display(&interner).to_string(),
            rendered,
            "seed {seed}: rendering must be a fixpoint"
        );
    }
}

#[test]
fn rendered_rewrite_reparses() {
    // A non-empty rewrite also renders to parseable SPARQL.
    let mut interner = Interner::new();
    let query = parse_query(
        "PREFIX src: <http://src.org/>\nSELECT ?n WHERE { ?x src:name ?n }",
        &mut interner,
    )
    .unwrap();
    let mut store = AlignmentStore::new();
    let lhs = sparql_rewrite_core::parse_bgp("?a <http://src.org/name> ?b", &mut interner)
        .unwrap()
        .patterns[0];
    let rhs = sparql_rewrite_core::parse_bgp(
        "?a <http://tgt.org/first> ?f . ?a <http://tgt.org/last> ?l",
        &mut interner,
    )
    .unwrap()
    .patterns;
    store.add_predicate(lhs, rhs).unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let rendered = out.display(&interner).to_string();
    let reparsed = parse_query(&rendered, &mut interner).unwrap();
    // Fresh existentials are structural (`TermKind::Fresh`); parsing their
    // rendered `?g{n}` names yields ordinary variables, so the invariant is
    // shape + textual fixpoint rather than term-for-term equality.
    assert_eq!(reparsed.pattern.triples.len(), 2);
    assert_eq!(reparsed.select, out.select);
    let rerendered = reparsed.display(&interner).to_string();
    assert_eq!(
        rendered, rerendered,
        "render → parse → render must be a fixpoint"
    );
    // The rendered existentials must not collide with any query variable.
    assert!(
        rendered.contains("?g0") && rendered.contains("?g1"),
        "{rendered}"
    );
}

#[test]
fn rendered_union_rewrite_reparses() {
    // A multi-template rewrite renders UNION branches that re-parse to the
    // same structure.
    let mut interner = Interner::new();
    let query = parse_query(
        "SELECT * WHERE { ?x <http://src/p> ?y . ?y <http://keep/q> ?z }",
        &mut interner,
    )
    .unwrap();
    let mut store = AlignmentStore::new();
    let lhs = sparql_rewrite_core::parse_bgp("?a <http://src/p> ?b", &mut interner)
        .unwrap()
        .patterns[0];
    for tgt in ["one", "two", "three"] {
        let rhs =
            sparql_rewrite_core::parse_bgp(&format!("?a <http://tgt/{tgt}> ?b"), &mut interner)
                .unwrap()
                .patterns;
        store.add_predicate(lhs, rhs).unwrap();
    }
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let rendered = out.display(&interner).to_string();
    assert_eq!(rendered.matches("UNION").count(), 2, "{rendered}");
    let reparsed = parse_query(&rendered, &mut interner).unwrap();
    assert_eq!(reparsed.pattern, out.pattern);
    assert_eq!(
        reparsed.display(&interner).to_string(),
        rendered,
        "render → parse → render must be a fixpoint"
    );
}

#[test]
fn unsupported_constructs_error_cleanly() {
    let mut interner = Interner::new();
    for q in [
        "SELECT * WHERE { GRAPH <http://g> { ?s ?p ?o } }",
        // SERVICE endpoints must be IRIs or variables, not literals.
        "SELECT * WHERE { ?s ?p ?o . SERVICE \"end\" { ?s ?q ?r } }",
        "SELECT * WHERE { ?s ?p ?o MINUS { ?s ?q ?r } }",
        // UNION must follow a braced group.
        "SELECT * WHERE { ?s ?p ?o UNION { ?s ?q ?r } }",
    ] {
        assert!(parse_query(q, &mut interner).is_err(), "accepted: {q}");
    }
    // Undeclared prefix.
    assert!(parse_query("SELECT * WHERE { ?s foaf:name ?o }", &mut interner).is_err());
}

#[test]
fn datatype_qname_expands_to_full_iri() {
    let mut interner = Interner::new();
    let prologue = "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n";
    let q1 = parse_query(
        &format!("{prologue}SELECT * WHERE {{ ?s <http://p> \"5\"^^xsd:int }}"),
        &mut interner,
    )
    .unwrap();
    let q2 = parse_query(
        "SELECT * WHERE { ?s <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> }",
        &mut interner,
    )
    .unwrap();
    // QName and full-IRI spellings intern to the same literal symbol...
    assert_eq!(q1.pattern.triples[0].o, q2.pattern.triples[0].o);
    // ...and the rendered form is prefix-free, so it re-parses standalone.
    let rendered = q1.display(&interner).to_string();
    assert!(
        rendered.contains("^^<http://www.w3.org/2001/XMLSchema#int>"),
        "{rendered}"
    );
    assert_eq!(parse_query(&rendered, &mut interner).unwrap(), q1);
}

#[test]
fn bare_numeric_sugar_round_trips_via_typed_form() {
    // `42` parses to the `"42"^^<xsd:integer>` literal, renders in that
    // canonical quoted form, and the re-parse is the identity.
    let mut interner = Interner::new();
    let q = parse_query(
        "SELECT * WHERE { ?s <http://p> 42 . ?s <http://q> -1.5 }",
        &mut interner,
    )
    .unwrap();
    let rendered = q.display(&interner).to_string();
    assert!(
        rendered.contains("\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"),
        "{rendered}"
    );
    assert!(
        rendered.contains("\"-1.5\"^^<http://www.w3.org/2001/XMLSchema#decimal>"),
        "{rendered}"
    );
    assert_eq!(parse_query(&rendered, &mut interner).unwrap(), q);
}

#[test]
fn malformed_literal_suffixes_are_rejected() {
    let mut interner = Interner::new();
    for q in [
        "SELECT * WHERE { ?s <http://p> \"x\"@ }", // empty language tag
        "SELECT * WHERE { ?s <http://p> \"x\"^^ }", // empty datatype
        "SELECT * WHERE { ?s <http://p> \"5\"^^xsd:int }", // undeclared prefix
    ] {
        assert!(parse_query(q, &mut interner).is_err(), "accepted: {q}");
    }
}

#[test]
fn bare_bgp_rejects_trailing_input_after_brace() {
    let mut interner = Interner::new();
    let err =
        sparql_rewrite_core::parse_bgp("{ ?s <http://p> ?o } ?x <http://q> ?y", &mut interner);
    assert!(
        err.is_err(),
        "trailing patterns after '}}' must not be dropped"
    );
}
