//! Round-trip serialization: parse → rewrite with an empty rule set →
//! render must be idempotent, and rendered text must re-parse to the same
//! structure.

use sparql_rewrite_core::{parse_query, AlignmentStore, IndexedRewriter, Interner, Rewriter};

const QUERIES: &[&str] = &[
    "SELECT * WHERE { ?s ?p ?o }",
    "SELECT ?s ?o WHERE { ?s <http://ex.org/p> ?o . }",
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n\
     SELECT ?name ?mbox WHERE {\n\
       ?x foaf:name ?name ;\n\
          foaf:mbox ?mbox .\n\
       ?x a foaf:Person\n\
     }",
    "PREFIX ex: <http://ex.org/>\n\
     SELECT ?a WHERE { ?a ex:p \"plain\" , \"tagged\"@en , \
      \"7\"^^<http://www.w3.org/2001/XMLSchema#integer> }",
    "SELECT * WHERE { _:b <http://ex.org/p> ?v . ?v <http://ex.org/q> _:b }",
    // Bare group pattern without the WHERE keyword.
    "SELECT ?x { ?x <http://ex.org/p> <http://ex.org/o> }",
];

#[test]
fn parse_rewrite_empty_render_is_idempotent() {
    let store = AlignmentStore::new();
    for input in QUERIES {
        let mut interner = Interner::new();
        let parsed = parse_query(input, &mut interner).unwrap_or_else(|e| {
            panic!("failed to parse {input:?}: {e}");
        });
        let rewriter = IndexedRewriter::new(&store);
        let rewritten = rewriter.rewrite_query(&parsed);
        assert_eq!(
            rewritten, parsed,
            "empty rule set must be the identity rewrite for {input:?}"
        );
        let rendered = rewritten.display(&interner).to_string();

        // The rendered text is valid SPARQL for this fragment: it parses,
        // and it parses to the same structure.
        let reparsed = parse_query(&rendered, &mut interner).unwrap_or_else(|e| {
            panic!("rendered text failed to re-parse: {e}\n--- rendered ---\n{rendered}");
        });
        assert_eq!(
            reparsed, parsed,
            "render → parse must be the identity for {input:?}\n--- rendered ---\n{rendered}"
        );

        // Full fixpoint: rendering the reparsed query reproduces the text.
        let rerendered = reparsed.display(&interner).to_string();
        assert_eq!(rendered, rerendered, "rendering must be a fixpoint");
    }
}

#[test]
fn rendered_rewrite_reparses() {
    // A non-empty rewrite also renders to parseable SPARQL.
    let mut interner = Interner::new();
    let query = parse_query(
        "PREFIX src: <http://src.org/>\nSELECT ?n WHERE { ?x src:name ?n }",
        &mut interner,
    )
    .unwrap();
    let mut store = AlignmentStore::new();
    let lhs = sparql_rewrite_core::parse_bgp("?a <http://src.org/name> ?b", &mut interner)
        .unwrap()
        .patterns[0];
    let rhs = sparql_rewrite_core::parse_bgp(
        "?a <http://tgt.org/first> ?f . ?a <http://tgt.org/last> ?l",
        &mut interner,
    )
    .unwrap()
    .patterns;
    store.add_predicate(lhs, rhs).unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let rendered = out.display(&interner).to_string();
    let reparsed = parse_query(&rendered, &mut interner).unwrap();
    // Fresh existentials are structural (`TermKind::Fresh`); parsing their
    // rendered `?g{n}` names yields ordinary variables, so the invariant is
    // shape + textual fixpoint rather than term-for-term equality.
    assert_eq!(reparsed.bgp.patterns.len(), 2);
    assert_eq!(reparsed.select, out.select);
    let rerendered = reparsed.display(&interner).to_string();
    assert_eq!(
        rendered, rerendered,
        "render → parse → render must be a fixpoint"
    );
    // The rendered existentials must not collide with any query variable.
    assert!(
        rendered.contains("?g0") && rendered.contains("?g1"),
        "{rendered}"
    );
}

#[test]
fn unsupported_constructs_error_cleanly() {
    let mut interner = Interner::new();
    for q in [
        "SELECT * WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?r } }",
        "SELECT * WHERE { { ?s ?p ?o } UNION { ?s ?q ?r } }",
        "SELECT * WHERE { ?s ?p ?o . FILTER(?o > 3) }",
    ] {
        // UNION appears after a nested group, which is itself unsupported —
        // both must fail, never silently drop patterns.
        assert!(parse_query(q, &mut interner).is_err(), "accepted: {q}");
    }
    // Undeclared prefix.
    assert!(parse_query("SELECT * WHERE { ?s foaf:name ?o }", &mut interner).is_err());
}

#[test]
fn datatype_qname_expands_to_full_iri() {
    let mut interner = Interner::new();
    let prologue = "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n";
    let q1 = parse_query(
        &format!("{prologue}SELECT * WHERE {{ ?s <http://p> \"5\"^^xsd:int }}"),
        &mut interner,
    )
    .unwrap();
    let q2 = parse_query(
        "SELECT * WHERE { ?s <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> }",
        &mut interner,
    )
    .unwrap();
    // QName and full-IRI spellings intern to the same literal symbol...
    assert_eq!(q1.bgp.patterns[0].o, q2.bgp.patterns[0].o);
    // ...and the rendered form is prefix-free, so it re-parses standalone.
    let rendered = q1.display(&interner).to_string();
    assert!(
        rendered.contains("^^<http://www.w3.org/2001/XMLSchema#int>"),
        "{rendered}"
    );
    assert_eq!(parse_query(&rendered, &mut interner).unwrap(), q1);
}

#[test]
fn malformed_literal_suffixes_are_rejected() {
    let mut interner = Interner::new();
    for q in [
        "SELECT * WHERE { ?s <http://p> \"x\"@ }", // empty language tag
        "SELECT * WHERE { ?s <http://p> \"x\"^^ }", // empty datatype
        "SELECT * WHERE { ?s <http://p> \"5\"^^xsd:int }", // undeclared prefix
    ] {
        assert!(parse_query(q, &mut interner).is_err(), "accepted: {q}");
    }
}

#[test]
fn bare_bgp_rejects_trailing_input_after_brace() {
    let mut interner = Interner::new();
    let err =
        sparql_rewrite_core::parse_bgp("{ ?s <http://p> ?o } ?x <http://q> ?y", &mut interner);
    assert!(
        err.is_err(),
        "trailing patterns after '}}' must not be dropped"
    );
}
