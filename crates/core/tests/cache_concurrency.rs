//! Concurrency and invalidation guarantees of the sharded rewrite-result
//! cache: under concurrent hits, misses, refreshes, and CLOCK evictions, a
//! lookup must either miss or return **exactly** the bytes inserted for its
//! own fingerprint — never another entry's value, never a torn mix — and a
//! rule-set revision bump must make every stale entry miss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;

use sparql_rewrite_core::{
    fingerprint_query, parse_bgp, AlignmentStore, CacheConfig, Interner, RewriteCache, Term,
};

/// xorshift64* (the workload generator's RNG) so threads get deterministic
/// but distinct access streams.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

#[test]
fn concurrent_churn_never_serves_a_foreign_value() {
    // A cache much smaller than the key space, so eviction churn is
    // constant: 2 shards x 16 slots vs 192 distinct keys.
    let cache = RewriteCache::new(CacheConfig {
        shards: 2,
        slots_per_shard: 16,
        value_cap: 128,
    });
    // Real fingerprints from real query texts, each mapped to a unique,
    // self-identifying value (so any cross-fingerprint mixup is caught by
    // a byte comparison).
    let keys: Vec<_> = (0..192)
        .map(|i| {
            let text = format!("SELECT * WHERE {{ ?s <http://ex.org/p{i}> ?o{i} }}");
            let value = format!("SELECT * WHERE {{ ?s <http://tgt.org/p{i}> ?o{i} }}");
            (fingerprint_query(&text).expect("cacheable"), value)
        })
        .collect();
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);

    thread::scope(|scope| {
        for t in 0..4u64 {
            let cache = &cache;
            let keys = &keys;
            let (hits, misses) = (&hits, &misses);
            scope.spawn(move || {
                let mut rng = 0xc0ffee ^ (t + 1);
                let mut buf = Vec::with_capacity(cache.value_cap());
                for _ in 0..200_000 {
                    let i = (xorshift(&mut rng) % keys.len() as u64) as usize;
                    let (fp, expected) = &keys[i];
                    if cache.lookup(*fp, 0, &mut buf) {
                        assert_eq!(
                            buf,
                            expected.as_bytes(),
                            "lookup for key {i} returned a foreign/torn value"
                        );
                        hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        cache.insert(*fp, 0, expected.as_bytes());
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // Both paths must actually have been exercised.
    assert!(hits.load(Ordering::Relaxed) > 0, "no hits at all");
    assert!(misses.load(Ordering::Relaxed) > 0, "no misses at all");
}

#[test]
fn concurrent_generations_never_cross() {
    // Writers continuously refresh the same keys under two different
    // generations; readers must only ever observe the value matching the
    // generation they asked for.
    let cache = RewriteCache::new(CacheConfig {
        shards: 1,
        slots_per_shard: 8,
        value_cap: 64,
    });
    let keys: Vec<_> = (0..12)
        .map(|i| {
            let text = format!("SELECT * WHERE {{ ?s <http://gen.org/p{i}> ?o }}");
            fingerprint_query(&text).expect("cacheable")
        })
        .collect();
    let value = |i: usize, gen: u64| format!("result-{i}-under-gen-{gen}");

    thread::scope(|scope| {
        for t in 0..4u64 {
            let cache = &cache;
            let keys = &keys;
            scope.spawn(move || {
                let mut rng = 0xdead_beef ^ t;
                let mut buf = Vec::with_capacity(cache.value_cap());
                for _ in 0..100_000 {
                    let i = (xorshift(&mut rng) % keys.len() as u64) as usize;
                    let gen = xorshift(&mut rng) % 2;
                    if cache.lookup(keys[i], gen, &mut buf) {
                        assert_eq!(
                            buf,
                            value(i, gen).as_bytes(),
                            "generation {gen} lookup observed another generation's value"
                        );
                    } else {
                        cache.insert(keys[i], gen, value(i, gen).as_bytes());
                    }
                }
            });
        }
    });
}

#[test]
fn store_revision_drives_cache_invalidation() {
    // The full invalidation contract: entries stamped with the store's
    // revision stop hitting the moment a post-freeze add_* bumps it —
    // exactly when the dense dispatch tables are dropped.
    let mut it = Interner::new();
    let mut store = AlignmentStore::new();
    let lhs = parse_bgp("?a <http://src/p> ?b", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?a <http://tgt/p> ?b", &mut it).unwrap().patterns;
    store.add_predicate(lhs, rhs).unwrap();
    store.build_dense_index(it.symbol_bound());
    assert!(store.has_dense_index());

    let cache = RewriteCache::default();
    let fp = fingerprint_query("SELECT * WHERE { ?s <http://src/p> ?o }").unwrap();
    let mut buf = Vec::new();
    cache.insert(fp, store.revision(), b"rewrite-under-rule-set-1");
    assert!(cache.lookup(fp, store.revision(), &mut buf));

    // Post-freeze rule load: dense tables AND cached rewrites both stale.
    let from = Term::iri(it.intern("http://src/E"));
    let to = Term::iri(it.intern("http://tgt/E"));
    store.add_entity(from, to).unwrap();
    assert!(!store.has_dense_index());
    assert!(
        !cache.lookup(fp, store.revision(), &mut buf),
        "stale entry served after a rule-set change"
    );

    // Re-freeze and repopulate under the new revision: both recover.
    store.build_dense_index(it.symbol_bound());
    assert!(store.has_dense_index());
    cache.insert(fp, store.revision(), b"rewrite-under-rule-set-2");
    assert!(cache.lookup(fp, store.revision(), &mut buf));
    assert_eq!(buf, b"rewrite-under-rule-set-2");
}
