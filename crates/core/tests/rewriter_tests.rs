//! Rewriter semantics: entity substitution, predicate-template expansion,
//! variable-capture avoidance, and indexed ≡ linear equivalence on random
//! rule sets.

use sparql_rewrite_core::{
    parse_bgp, parse_query, AlignmentStore, Bgp, IndexedRewriter, Interner, LinearRewriter, Query,
    Rewriter, SelectList, Term, TriplePattern,
};

fn iri(i: &mut Interner, s: &str) -> Term {
    Term::iri(i.intern(s))
}

fn var(i: &mut Interner, s: &str) -> Term {
    Term::var(i.intern(s))
}

#[test]
fn entity_substitution_all_positions() {
    let mut it = Interner::new();
    let src = iri(&mut it, "http://src/Person");
    let tgt = iri(&mut it, "http://tgt/Agent");
    let src_p = iri(&mut it, "http://src/knows");
    let tgt_p = iri(&mut it, "http://tgt/acquaintedWith");
    let mut store = AlignmentStore::new();
    store.add_entity(src, tgt).unwrap();
    store.add_entity(src_p, tgt_p).unwrap();

    // src appears as subject and object, src_p as predicate.
    let bgp = Bgp::new(vec![
        TriplePattern::new(src, src_p, src),
        TriplePattern::new(var(&mut it, "x"), src_p, var(&mut it, "y")),
    ]);
    let rewritten = IndexedRewriter::new(&store).rewrite_bgp(&bgp, &mut it);
    assert_eq!(
        rewritten.patterns,
        vec![
            TriplePattern::new(tgt, tgt_p, tgt),
            TriplePattern::new(var(&mut it, "x"), tgt_p, var(&mut it, "y")),
        ]
    );
}

#[test]
fn entity_substitution_via_parsed_query() {
    let mut it = Interner::new();
    let query = parse_query(
        "PREFIX src: <http://src/>\n\
         SELECT ?name WHERE { ?p src:name ?name . ?p a src:Person }",
        &mut it,
    )
    .unwrap();
    let mut store = AlignmentStore::new();
    store
        .add_entity(
            iri(&mut it, "http://src/Person"),
            iri(&mut it, "http://tgt/Agent"),
        )
        .unwrap();
    store
        .add_entity(
            iri(&mut it, "http://src/name"),
            iri(&mut it, "http://tgt/label"),
        )
        .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query, &mut it);
    let rendered = out.display(&it).to_string();
    assert!(rendered.contains("<http://tgt/label>"), "{rendered}");
    assert!(rendered.contains("<http://tgt/Agent>"), "{rendered}");
    assert!(!rendered.contains("http://src/"), "{rendered}");
    // rdf:type stays untouched.
    assert!(
        rendered.contains("<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"),
        "{rendered}"
    );
}

#[test]
fn predicate_template_one_to_many_expansion() {
    let mut it = Interner::new();
    // ?x src:name ?n  =>  ?x tgt:firstName ?f . ?x tgt:lastName ?l
    // (?f, ?l are template-introduced existentials)
    let lhs = parse_bgp("?x <http://src/name> ?n", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp(
        "?x <http://tgt/firstName> ?f . ?x <http://tgt/lastName> ?l",
        &mut it,
    )
    .unwrap()
    .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_query(
        "SELECT ?who WHERE { ?who <http://src/name> \"Ada\" }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query, &mut it);
    assert_eq!(out.bgp.patterns.len(), 2);
    let [a, b] = [out.bgp.patterns[0], out.bgp.patterns[1]];
    // ?x bound to ?who in both output patterns.
    assert_eq!(a.s, var(&mut it, "who"));
    assert_eq!(b.s, var(&mut it, "who"));
    assert_eq!(a.p, iri(&mut it, "http://tgt/firstName"));
    assert_eq!(b.p, iri(&mut it, "http://tgt/lastName"));
    // The literal "Ada" bound nothing (lhs object ?n is unused in rhs);
    // objects are fresh vars, distinct from each other.
    assert!(a.o.is_var() && b.o.is_var());
    assert_ne!(a.o, b.o);
}

#[test]
fn template_with_concrete_lhs_object_matches_selectively() {
    let mut it = Interner::new();
    // Only rewrite `?x src:type src:Special` patterns.
    let lhs = parse_bgp("?x <http://src/type> <http://src/Special>", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp("?x <http://tgt/kind> <http://tgt/Special>", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs.clone()).unwrap();

    let hit = parse_bgp("?a <http://src/type> <http://src/Special>", &mut it).unwrap();
    let miss = parse_bgp("?a <http://src/type> <http://src/Other>", &mut it).unwrap();
    let rw = IndexedRewriter::new(&store);
    let hit_out = rw.rewrite_bgp(&hit, &mut it);
    assert_eq!(hit_out.patterns[0].p, iri(&mut it, "http://tgt/kind"));
    let miss_out = rw.rewrite_bgp(&miss, &mut it);
    assert_eq!(miss_out, miss, "non-matching object must not rewrite");
}

#[test]
fn repeated_lhs_variable_requires_equal_terms() {
    let mut it = Interner::new();
    // ?x src:sameAs ?x — only matches reflexive patterns.
    let lhs = parse_bgp("?x <http://src/sameAs> ?x", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp("?x <http://tgt/reflexive> ?x", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();
    let rw = IndexedRewriter::new(&store);

    let reflexive = parse_bgp("?a <http://src/sameAs> ?a", &mut it).unwrap();
    let out = rw.rewrite_bgp(&reflexive, &mut it);
    assert_eq!(out.patterns[0].p, iri(&mut it, "http://tgt/reflexive"));

    let non_reflexive = parse_bgp("?a <http://src/sameAs> ?b", &mut it).unwrap();
    let out = rw.rewrite_bgp(&non_reflexive, &mut it);
    assert_eq!(out, non_reflexive);
}

#[test]
fn fresh_variables_avoid_capture() {
    let mut it = Interner::new();
    // Template introduces ?m; the query already uses ?m AND the first few
    // generated names (?g0, ?g1), so naive renaming would capture.
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p1> ?m . ?m <http://tgt/p2> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_query(
        "SELECT * WHERE { ?m <http://src/p> ?g0 . ?g0 <http://other/q> ?g1 }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query, &mut it);
    assert_eq!(out.bgp.patterns.len(), 3);
    let intro = out.bgp.patterns[0].o; // the renamed ?m from the template
    assert!(intro.is_var());
    // The introduced variable is none of the query's variables.
    for taken in ["m", "g0", "g1"] {
        assert_ne!(intro, var(&mut it, taken), "captured ?{taken}");
    }
    // And it joins the two expanded patterns.
    assert_eq!(out.bgp.patterns[1].s, intro);
    // Untouched pattern still references the original ?g0/?g1.
    assert_eq!(out.bgp.patterns[2].s, var(&mut it, "g0"));
    assert_eq!(out.bgp.patterns[2].o, var(&mut it, "g1"));
}

#[test]
fn fresh_variables_distinct_across_multiple_expansions() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> ?m . ?m <http://tgt/q> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    // The same rule fires twice; each expansion must mint a distinct ?m.
    let query = parse_query(
        "SELECT * WHERE { ?a <http://src/p> ?b . ?c <http://src/p> ?d }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query, &mut it);
    assert_eq!(out.bgp.patterns.len(), 4);
    let m1 = out.bgp.patterns[0].o;
    let m2 = out.bgp.patterns[2].o;
    assert_ne!(m1, m2, "existentials from separate expansions must differ");
}

#[test]
fn entity_substitution_feeds_template_matching() {
    let mut it = Interner::new();
    // Entity rule maps the predicate into the vocabulary the template
    // expects; template must fire on the substituted pattern.
    let old_p = iri(&mut it, "http://legacy/knows");
    let src_p = iri(&mut it, "http://src/knows");
    let mut store = AlignmentStore::new();
    store.add_entity(old_p, src_p).unwrap();
    let lhs = parse_bgp("?a <http://src/knows> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp("?b <http://tgt/knownBy> ?a", &mut it)
        .unwrap()
        .patterns;
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_bgp("?x <http://legacy/knows> ?y", &mut it).unwrap();
    let out = IndexedRewriter::new(&store).rewrite_bgp(&query, &mut it);
    assert_eq!(
        out.patterns,
        vec![TriplePattern::new(
            var(&mut it, "y"),
            iri(&mut it, "http://tgt/knownBy"),
            var(&mut it, "x"),
        )]
    );
}

#[test]
fn first_matching_rule_wins_in_id_order() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs1 = parse_bgp("?s <http://tgt/first> ?o", &mut it)
        .unwrap()
        .patterns;
    let rhs2 = parse_bgp("?s <http://tgt/second> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs1).unwrap();
    store.add_predicate(lhs, rhs2).unwrap();
    let query = parse_bgp("?x <http://src/p> ?y", &mut it).unwrap();
    for out in [
        IndexedRewriter::new(&store).rewrite_bgp(&query, &mut it),
        LinearRewriter::new(&store).rewrite_bgp(&query, &mut it),
    ] {
        assert_eq!(out.patterns[0].p, iri(&mut it, "http://tgt/first"));
    }
}

// ---------------------------------------------------------------------------
// Property-style equivalence: indexed and linear rewriters must agree on
// random rule sets and random queries.
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn random_term(rng: &mut Rng, it: &mut Interner, vocab: usize) -> Term {
    match rng.below(4) {
        0 => Term::var(it.intern(&format!("v{}", rng.below(8)))),
        1 => Term::iri(it.intern(&format!("http://ex/e{}", rng.below(vocab)))),
        2 => Term::literal(it.intern(&format!("\"lit{}\"", rng.below(vocab)))),
        _ => Term::blank(it.intern(&format!("b{}", rng.below(4)))),
    }
}

#[test]
fn property_indexed_equals_linear_on_random_rule_sets() {
    for seed in 1..=20u64 {
        let mut rng = Rng(seed * 0x9e37_79b9);
        let mut it = Interner::new();
        let preds: Vec<Term> = (0..12)
            .map(|i| Term::iri(it.intern(&format!("http://ex/p{i}"))))
            .collect();
        let mut store = AlignmentStore::new();
        let n_rules = 1 + rng.below(40);
        for _ in 0..n_rules {
            if rng.below(2) == 0 {
                // Entity rule between random concrete IRIs.
                let from = Term::iri(it.intern(&format!("http://ex/e{}", rng.below(20))));
                let to = Term::iri(it.intern(&format!("http://tgt/e{}", rng.below(20))));
                store.add_entity(from, to).unwrap();
            } else {
                let s = if rng.below(2) == 0 {
                    Term::var(it.intern("ts"))
                } else {
                    random_term(&mut rng, &mut it, 20)
                };
                let o = if rng.below(2) == 0 {
                    Term::var(it.intern("to"))
                } else {
                    random_term(&mut rng, &mut it, 20)
                };
                let lhs = TriplePattern::new(s, preds[rng.below(preds.len())], o);
                let n_rhs = 1 + rng.below(3);
                let rhs: Vec<TriplePattern> = (0..n_rhs)
                    .map(|k| {
                        TriplePattern::new(
                            if rng.below(2) == 0 {
                                s
                            } else {
                                Term::var(it.intern(&format!("fresh{k}")))
                            },
                            Term::iri(it.intern(&format!("http://tgt/p{}", rng.below(12)))),
                            if rng.below(2) == 0 {
                                o
                            } else {
                                Term::var(it.intern(&format!("fresh{}", k + 1)))
                            },
                        )
                    })
                    .collect();
                store.add_predicate(lhs, rhs).unwrap();
            }
        }
        let n_patterns = 1 + rng.below(16);
        let patterns: Vec<TriplePattern> = (0..n_patterns)
            .map(|_| {
                TriplePattern::new(
                    random_term(&mut rng, &mut it, 20),
                    if rng.below(4) == 0 {
                        random_term(&mut rng, &mut it, 20)
                    } else {
                        preds[rng.below(preds.len())]
                    },
                    random_term(&mut rng, &mut it, 20),
                )
            })
            .collect();
        let query = Query {
            select: SelectList::Star,
            bgp: Bgp::new(patterns),
        };
        let indexed = IndexedRewriter::new(&store).rewrite_query(&query, &mut it);
        let linear = LinearRewriter::new(&store).rewrite_query(&query, &mut it);
        assert_eq!(
            indexed,
            linear,
            "seed {seed}: indexed and linear rewriters disagree\nindexed: {}\nlinear: {}",
            indexed.display(&it),
            linear.display(&it)
        );
    }
}

#[test]
fn template_blank_nodes_freshened_per_expansion() {
    let mut it = Interner::new();
    // rhs introduces a blank node — an existential that must not be shared
    // across independent expansions, nor capture the query's own _:b.
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> _:b", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_query(
        "SELECT * WHERE { ?a <http://src/p> ?x . ?c <http://src/p> ?d . _:b <http://other/q> ?e }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query, &mut it);
    assert_eq!(out.bgp.patterns.len(), 3);
    let o1 = out.bgp.patterns[0].o;
    let o2 = out.bgp.patterns[1].o;
    let query_blank = Term::blank(it.intern("b"));
    assert_ne!(o1, o2, "one existential shared across expansions");
    assert_ne!(o1, query_blank, "captured the query's _:b");
    assert_ne!(o2, query_blank, "captured the query's _:b");
    // The query's own blank node passes through untouched.
    assert_eq!(out.bgp.patterns[2].s, query_blank);
    // Indexed and linear still agree.
    let lin = LinearRewriter::new(&store).rewrite_query(&query, &mut it);
    assert_eq!(out, lin);
}
