//! Rewriter semantics: entity substitution, predicate-template expansion,
//! multi-template UNION expansion, recursive group rewriting, FILTER
//! substitution, variable-capture avoidance, and indexed ≡ linear
//! equivalence on random rule sets and random group-shaped queries.

use sparql_rewrite_core::{
    parse_bgp, parse_query, AlignmentStore, Bgp, CmpOp, ExprNode, GroupPattern, IndexedRewriter,
    Interner, LinearRewriter, PatternNode, Query, Rewriter, RuleTemplate, SelectList, Term,
    TriplePattern,
};

mod common;
use common::{random_group_query_text, Rng};

fn iri(i: &mut Interner, s: &str) -> Term {
    Term::iri(i.intern(s))
}

fn var(i: &mut Interner, s: &str) -> Term {
    Term::var(i.intern(s))
}

/// The root group's nodes, materialized for shape assertions.
fn root_nodes(p: &GroupPattern) -> Vec<PatternNode> {
    p.root_children().map(|c| p.nodes[c as usize]).collect()
}

#[test]
fn entity_substitution_all_positions() {
    let mut it = Interner::new();
    let src = iri(&mut it, "http://src/Person");
    let tgt = iri(&mut it, "http://tgt/Agent");
    let src_p = iri(&mut it, "http://src/knows");
    let tgt_p = iri(&mut it, "http://tgt/acquaintedWith");
    let mut store = AlignmentStore::new();
    store.add_entity(src, tgt).unwrap();
    store.add_entity(src_p, tgt_p).unwrap();

    // src appears as subject and object, src_p as predicate.
    let bgp = Bgp::new(vec![
        TriplePattern::new(src, src_p, src),
        TriplePattern::new(var(&mut it, "x"), src_p, var(&mut it, "y")),
    ]);
    let rewritten = IndexedRewriter::new(&store).rewrite_bgp(&bgp);
    assert_eq!(
        rewritten.triples,
        vec![
            TriplePattern::new(tgt, tgt_p, tgt),
            TriplePattern::new(var(&mut it, "x"), tgt_p, var(&mut it, "y")),
        ]
    );
    assert!(rewritten.is_flat());
}

#[test]
fn entity_substitution_via_parsed_query() {
    let mut it = Interner::new();
    let query = parse_query(
        "PREFIX src: <http://src/>\n\
         SELECT ?name WHERE { ?p src:name ?name . ?p a src:Person }",
        &mut it,
    )
    .unwrap();
    let mut store = AlignmentStore::new();
    store
        .add_entity(
            iri(&mut it, "http://src/Person"),
            iri(&mut it, "http://tgt/Agent"),
        )
        .unwrap();
    store
        .add_entity(
            iri(&mut it, "http://src/name"),
            iri(&mut it, "http://tgt/label"),
        )
        .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let rendered = out.display(&it).to_string();
    assert!(rendered.contains("<http://tgt/label>"), "{rendered}");
    assert!(rendered.contains("<http://tgt/Agent>"), "{rendered}");
    assert!(!rendered.contains("http://src/"), "{rendered}");
    // rdf:type stays untouched.
    assert!(
        rendered.contains("<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>"),
        "{rendered}"
    );
}

#[test]
fn predicate_template_one_to_many_expansion() {
    let mut it = Interner::new();
    // ?x src:name ?n  =>  ?x tgt:firstName ?f . ?x tgt:lastName ?l
    // (?f, ?l are template-introduced existentials)
    let lhs = parse_bgp("?x <http://src/name> ?n", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp(
        "?x <http://tgt/firstName> ?f . ?x <http://tgt/lastName> ?l",
        &mut it,
    )
    .unwrap()
    .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_query(
        "SELECT ?who WHERE { ?who <http://src/name> \"Ada\" }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    assert_eq!(out.pattern.triples.len(), 2);
    let [a, b] = [out.pattern.triples[0], out.pattern.triples[1]];
    // ?x bound to ?who in both output patterns.
    assert_eq!(a.s, var(&mut it, "who"));
    assert_eq!(b.s, var(&mut it, "who"));
    assert_eq!(a.p, iri(&mut it, "http://tgt/firstName"));
    assert_eq!(b.p, iri(&mut it, "http://tgt/lastName"));
    // The literal "Ada" bound nothing (lhs object ?n is unused in rhs);
    // objects are structural fresh existentials, distinct from each other.
    assert!(a.o.is_fresh() && b.o.is_fresh());
    assert_ne!(a.o, b.o);
}

#[test]
fn template_with_concrete_lhs_object_matches_selectively() {
    let mut it = Interner::new();
    // Only rewrite `?x src:type src:Special` patterns.
    let lhs = parse_bgp("?x <http://src/type> <http://src/Special>", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp("?x <http://tgt/kind> <http://tgt/Special>", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs.clone()).unwrap();

    let hit = parse_bgp("?a <http://src/type> <http://src/Special>", &mut it).unwrap();
    let miss = parse_bgp("?a <http://src/type> <http://src/Other>", &mut it).unwrap();
    let rw = IndexedRewriter::new(&store);
    let hit_out = rw.rewrite_bgp(&hit);
    assert_eq!(hit_out.triples[0].p, iri(&mut it, "http://tgt/kind"));
    let miss_out = rw.rewrite_bgp(&miss);
    assert_eq!(
        miss_out,
        GroupPattern::from_bgp(&miss),
        "non-matching object must not rewrite"
    );
}

#[test]
fn repeated_lhs_variable_requires_equal_terms() {
    let mut it = Interner::new();
    // ?x src:sameAs ?x — only matches reflexive patterns.
    let lhs = parse_bgp("?x <http://src/sameAs> ?x", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp("?x <http://tgt/reflexive> ?x", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();
    let rw = IndexedRewriter::new(&store);

    let reflexive = parse_bgp("?a <http://src/sameAs> ?a", &mut it).unwrap();
    let out = rw.rewrite_bgp(&reflexive);
    assert_eq!(out.triples[0].p, iri(&mut it, "http://tgt/reflexive"));

    let non_reflexive = parse_bgp("?a <http://src/sameAs> ?b", &mut it).unwrap();
    let out = rw.rewrite_bgp(&non_reflexive);
    assert_eq!(out, GroupPattern::from_bgp(&non_reflexive));
}

#[test]
fn fresh_variables_avoid_capture() {
    let mut it = Interner::new();
    // Template introduces ?m; the query already uses ?m AND the first few
    // generated names (?g0, ?g1), so naive renaming would capture.
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p1> ?m . ?m <http://tgt/p2> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_query(
        "SELECT * WHERE { ?m <http://src/p> ?g0 . ?g0 <http://other/q> ?g1 }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    assert_eq!(out.pattern.triples.len(), 3);
    let intro = out.pattern.triples[0].o; // the renamed ?m from the template
    assert!(intro.is_fresh(), "template existentials are Fresh terms");
    // The introduced variable is none of the query's variables.
    for taken in ["m", "g0", "g1"] {
        assert_ne!(intro, var(&mut it, taken), "captured ?{taken}");
    }
    // And it joins the two expanded patterns.
    assert_eq!(out.pattern.triples[1].s, intro);
    // Untouched pattern still references the original ?g0/?g1.
    assert_eq!(out.pattern.triples[2].s, var(&mut it, "g0"));
    assert_eq!(out.pattern.triples[2].o, var(&mut it, "g1"));
}

#[test]
fn fresh_variables_distinct_across_multiple_expansions() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> ?m . ?m <http://tgt/q> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    // The same rule fires twice; each expansion must mint a distinct ?m.
    let query = parse_query(
        "SELECT * WHERE { ?a <http://src/p> ?b . ?c <http://src/p> ?d }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    assert_eq!(out.pattern.triples.len(), 4);
    let m1 = out.pattern.triples[0].o;
    let m2 = out.pattern.triples[2].o;
    assert_ne!(m1, m2, "existentials from separate expansions must differ");
}

#[test]
fn entity_substitution_feeds_template_matching() {
    let mut it = Interner::new();
    // Entity rule maps the predicate into the vocabulary the template
    // expects; template must fire on the substituted pattern.
    let old_p = iri(&mut it, "http://legacy/knows");
    let src_p = iri(&mut it, "http://src/knows");
    let mut store = AlignmentStore::new();
    store.add_entity(old_p, src_p).unwrap();
    let lhs = parse_bgp("?a <http://src/knows> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let rhs = parse_bgp("?b <http://tgt/knownBy> ?a", &mut it)
        .unwrap()
        .patterns;
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_bgp("?x <http://legacy/knows> ?y", &mut it).unwrap();
    let out = IndexedRewriter::new(&store).rewrite_bgp(&query);
    assert_eq!(
        out.triples,
        vec![TriplePattern::new(
            var(&mut it, "y"),
            iri(&mut it, "http://tgt/knownBy"),
            var(&mut it, "x"),
        )]
    );
}

// ---------------------------------------------------------------------------
// Multi-template matches: the paper's union semantics. These tests fail on
// a first-match-wins rewriter — every alternative must survive.
// ---------------------------------------------------------------------------

#[test]
fn two_matching_templates_expand_to_a_union_of_both() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs1 = parse_bgp("?s <http://tgt/first> ?o", &mut it)
        .unwrap()
        .patterns;
    let rhs2 = parse_bgp("?s <http://tgt/second> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs1).unwrap();
    store.add_predicate(lhs, rhs2).unwrap();
    let query = parse_bgp("?x <http://src/p> ?y", &mut it).unwrap();
    for out in [
        IndexedRewriter::new(&store).rewrite_bgp(&query),
        LinearRewriter::new(&store).rewrite_bgp(&query),
    ] {
        // Shape: root group holds exactly one UNION with two group branches.
        let nodes = root_nodes(&out);
        assert_eq!(nodes.len(), 1, "{nodes:?}");
        let PatternNode::Union { first } = nodes[0] else {
            panic!("expected a UNION node, got {nodes:?} — alternatives were dropped");
        };
        let branches: Vec<u32> = out.children_from(first).collect();
        assert_eq!(branches.len(), 2, "one branch per matching template");
        // Branch order follows rule-id order: first, then second.
        let branch_pred = |b: u32| -> Term {
            let PatternNode::Group { first } = out.nodes[b as usize] else {
                panic!("union branch must be a group");
            };
            let run = out.children_from(first).next().unwrap();
            out.run(run)[0].p
        };
        assert_eq!(branch_pred(branches[0]), iri(&mut it, "http://tgt/first"));
        assert_eq!(branch_pred(branches[1]), iri(&mut it, "http://tgt/second"));
    }
}

#[test]
fn union_expansion_preserves_surrounding_conjunction() {
    let mut it = Interner::new();
    // One multi-match triple sandwiched between two pass-through triples:
    // the group must keep the order run / UNION / run.
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs1 = parse_bgp("?s <http://tgt/a> ?o", &mut it).unwrap().patterns;
    let rhs2 = parse_bgp("?s <http://tgt/b> ?o", &mut it).unwrap().patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs1).unwrap();
    store.add_predicate(lhs, rhs2).unwrap();
    let query = parse_bgp(
        "?x <http://keep/1> ?y . ?x <http://src/p> ?z . ?z <http://keep/2> ?w",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_bgp(&query);
    let nodes = root_nodes(&out);
    assert_eq!(nodes.len(), 3, "{nodes:?}");
    assert!(matches!(nodes[0], PatternNode::Triples { len: 1, .. }));
    assert!(matches!(nodes[1], PatternNode::Union { .. }));
    assert!(matches!(nodes[2], PatternNode::Triples { len: 1, .. }));
    let rendered = out.display(&it).to_string();
    assert!(rendered.contains("<http://keep/1>"), "{rendered}");
    assert!(rendered.contains("UNION"), "{rendered}");
    assert!(rendered.contains("<http://tgt/a>"), "{rendered}");
    assert!(rendered.contains("<http://tgt/b>"), "{rendered}");
}

#[test]
fn union_branch_order_is_deterministic_in_rule_id_order() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let mut store = AlignmentStore::new();
    // Three templates, registered in a known order; branches must follow it.
    for name in ["zeta", "alpha", "mid"] {
        let rhs = parse_bgp(&format!("?s <http://tgt/{name}> ?o"), &mut it)
            .unwrap()
            .patterns;
        store.add_predicate(lhs, rhs).unwrap();
    }
    let query = parse_query("SELECT * WHERE { ?x <http://src/p> ?y }", &mut it).unwrap();
    let rw = IndexedRewriter::new(&store);
    let first = rw.rewrite_query(&query).display(&it).to_string();
    // Registration order, not alphabetical order.
    let (za, aa, ma) = (
        first.find("zeta").unwrap(),
        first.find("alpha").unwrap(),
        first.find("mid").unwrap(),
    );
    assert!(za < aa && aa < ma, "{first}");
    // Deterministic across repeated rewrites and across strategies.
    for _ in 0..5 {
        assert_eq!(rw.rewrite_query(&query).display(&it).to_string(), first);
    }
    assert_eq!(
        LinearRewriter::new(&store)
            .rewrite_query(&query)
            .display(&it)
            .to_string(),
        first
    );
}

#[test]
fn union_branches_get_distinct_existentials() {
    let mut it = Interner::new();
    // Both templates introduce an existential ?m; the two branches must not
    // share one fresh term (they are separate scopes, but shared counters
    // would also be wrong across the surrounding conjunction).
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs1 = parse_bgp("?s <http://tgt/a> ?m . ?m <http://tgt/a2> ?o", &mut it)
        .unwrap()
        .patterns;
    let rhs2 = parse_bgp("?s <http://tgt/b> ?m . ?m <http://tgt/b2> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs1).unwrap();
    store.add_predicate(lhs, rhs2).unwrap();
    let query = parse_bgp("?x <http://src/p> ?y", &mut it).unwrap();
    let out = IndexedRewriter::new(&store).rewrite_bgp(&query);
    let m1 = out.triples[0].o;
    let m2 = out.triples[2].o;
    assert!(m1.is_fresh() && m2.is_fresh());
    assert_ne!(m1, m2);
}

// ---------------------------------------------------------------------------
// Recursive group rewriting: OPTIONAL, UNION, nested groups, FILTER.
// ---------------------------------------------------------------------------

#[test]
fn rewrites_inside_optional_union_and_nested_groups() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> ?o", &mut it).unwrap().patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();
    store
        .add_entity(iri(&mut it, "http://src/E"), iri(&mut it, "http://tgt/E"))
        .unwrap();

    let query = parse_query(
        "SELECT * WHERE { ?a <http://src/p> ?b . \
         OPTIONAL { ?b <http://src/p> <http://src/E> } \
         { ?c <http://src/p> ?d } UNION { { ?e <http://src/p> ?f } } }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let rendered = out.display(&it).to_string();
    assert!(
        !rendered.contains("http://src/"),
        "source vocabulary must be rewritten everywhere: {rendered}"
    );
    assert_eq!(rendered.matches("<http://tgt/p>").count(), 4, "{rendered}");
    assert!(rendered.contains("<http://tgt/E>"), "{rendered}");
    assert!(rendered.contains("OPTIONAL {"), "{rendered}");
    assert!(rendered.contains("UNION"), "{rendered}");
    // Structure preserved: run, optional, union at the root.
    let nodes = root_nodes(&out.pattern);
    assert!(matches!(nodes[0], PatternNode::Triples { .. }));
    assert!(matches!(nodes[1], PatternNode::Optional { .. }));
    assert!(matches!(nodes[2], PatternNode::Union { .. }));
}

#[test]
fn multi_template_match_inside_optional_becomes_nested_union() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs1 = parse_bgp("?s <http://tgt/a> ?o", &mut it).unwrap().patterns;
    let rhs2 = parse_bgp("?s <http://tgt/b> ?o", &mut it).unwrap().patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs1).unwrap();
    store.add_predicate(lhs, rhs2).unwrap();
    let query = parse_query(
        "SELECT * WHERE { ?x <http://other/q> ?y OPTIONAL { ?x <http://src/p> ?z } }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let nodes = root_nodes(&out.pattern);
    let PatternNode::Optional { first } = nodes[1] else {
        panic!("expected OPTIONAL at root: {nodes:?}");
    };
    let inner: Vec<PatternNode> = out
        .pattern
        .children_from(first)
        .map(|c| out.pattern.nodes[c as usize])
        .collect();
    assert_eq!(inner.len(), 1);
    assert!(
        matches!(inner[0], PatternNode::Union { .. }),
        "multi-match inside OPTIONAL must expand to a UNION in place: {inner:?}"
    );
}

#[test]
fn filter_expressions_get_entity_substitution() {
    let mut it = Interner::new();
    let mut store = AlignmentStore::new();
    store
        .add_entity(
            iri(&mut it, "http://src/Special"),
            iri(&mut it, "http://tgt/Special"),
        )
        .unwrap();
    let query = parse_query(
        "SELECT * WHERE { ?s <http://p> ?o \
         FILTER(?o = <http://src/Special> || !(?o < 3) && ?s != \"x\"@EN) }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let rendered = out.display(&it).to_string();
    assert!(
        rendered.contains("<http://tgt/Special>"),
        "entity alignment must apply inside FILTER: {rendered}"
    );
    assert!(!rendered.contains("http://src/"), "{rendered}");
    // Variables and the rest of the expression pass through (lang tag was
    // normalized at parse time).
    assert!(rendered.contains("\"x\"@en"), "{rendered}");
    assert!(rendered.contains("||"), "{rendered}");
    assert!(rendered.contains("!("), "{rendered}");
    // Both rewriters agree.
    let lin = LinearRewriter::new(&store).rewrite_query(&query);
    assert_eq!(out, lin);
}

// ---------------------------------------------------------------------------
// Property-style equivalence: indexed and linear rewriters must agree on
// random rule sets and random queries.
// ---------------------------------------------------------------------------

fn random_term(rng: &mut Rng, it: &mut Interner, vocab: usize) -> Term {
    match rng.below(4) {
        0 => Term::var(it.intern(&format!("v{}", rng.below(8)))),
        1 => Term::iri(it.intern(&format!("http://ex/e{}", rng.below(vocab)))),
        2 => Term::literal(it.intern(&format!("\"lit{}\"", rng.below(vocab)))),
        _ => Term::blank(it.intern(&format!("b{}", rng.below(4)))),
    }
}

/// Random complex template for `lhs`: a chain body of depth 1..=3 linked by
/// existential variables, a guard over the lhs variables (when any —
/// sometimes statically decidable `=`/`!=`, sometimes an ordered comparison
/// that stays residual, sometimes negated), and a transform-style filter
/// relating a body variable to a constant.
fn random_complex_template(rng: &mut Rng, it: &mut Interner, lhs: TriplePattern) -> RuleTemplate {
    let depth = 1 + rng.below(3);
    let mut triples = Vec::new();
    let mut prev = if lhs.s.is_var() {
        lhs.s
    } else {
        Term::var(it.intern("c0"))
    };
    for k in 0..depth {
        let next = if k + 1 == depth && lhs.o.is_var() && rng.below(2) == 0 {
            lhs.o
        } else {
            Term::var(it.intern(&format!("c{}", k + 1)))
        };
        triples.push(TriplePattern::new(
            prev,
            Term::iri(it.intern(&format!("http://tgt/p{}", rng.below(12)))),
            next,
        ));
        prev = next;
    }
    let mut tmpl = RuleTemplate::from_triples(triples.clone());
    let lhs_vars: Vec<Term> = [lhs.s, lhs.o].into_iter().filter(|t| t.is_var()).collect();
    if !lhs_vars.is_empty() && rng.below(3) > 0 {
        let v = lhs_vars[rng.below(lhs_vars.len())];
        let l = tmpl.push_expr(ExprNode::Term(v));
        let c = Term::iri(it.intern(&format!("http://ex/e{}", rng.below(20))));
        let r = tmpl.push_expr(ExprNode::Term(c));
        let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt][rng.below(3)];
        let mut g = tmpl.push_expr(ExprNode::Cmp(op, l, r));
        if rng.below(4) == 0 {
            g = tmpl.push_expr(ExprNode::Not(g));
        }
        tmpl.set_guard(g);
    }
    if rng.below(2) == 0 {
        // Body subjects/objects are always variables (existential chain
        // links or lhs-bound), so this is a valid filter reference.
        let bv = triples[rng.below(triples.len())].o;
        let l = tmpl.push_expr(ExprNode::Term(bv));
        let r = tmpl.push_expr(ExprNode::Term(Term::literal(
            it.intern(&format!("\"t{}\"", rng.below(9))),
        )));
        let op = [CmpOp::Ne, CmpOp::Le, CmpOp::Gt][rng.below(3)];
        let f = tmpl.push_expr(ExprNode::Cmp(op, l, r));
        tmpl.push_filter(f);
    }
    tmpl
}

/// Random rule set over a fixed predicate vocabulary; about half the rules
/// are entity alignments, predicate templates deliberately collide on the
/// same predicate so multi-template UNION expansion is exercised, and about
/// a third of the templates are complex (guarded / chain / transform) so
/// guard pruning and residual-FILTER emission run under both strategies.
fn random_store(rng: &mut Rng, it: &mut Interner) -> AlignmentStore {
    let preds: Vec<Term> = (0..12)
        .map(|i| Term::iri(it.intern(&format!("http://ex/p{i}"))))
        .collect();
    let mut store = AlignmentStore::new();
    let n_rules = 1 + rng.below(40);
    for _ in 0..n_rules {
        if rng.below(2) == 0 {
            // Entity rule between random concrete IRIs.
            let from = Term::iri(it.intern(&format!("http://ex/e{}", rng.below(20))));
            let to = Term::iri(it.intern(&format!("http://tgt/e{}", rng.below(20))));
            store.add_entity(from, to).unwrap();
        } else {
            let s = if rng.below(2) == 0 {
                Term::var(it.intern("ts"))
            } else {
                random_term(rng, it, 20)
            };
            let o = if rng.below(2) == 0 {
                Term::var(it.intern("to"))
            } else {
                random_term(rng, it, 20)
            };
            let lhs = TriplePattern::new(s, preds[rng.below(preds.len())], o);
            if rng.below(3) == 0 {
                let tmpl = random_complex_template(rng, it, lhs);
                store.add_complex_predicate(lhs, tmpl).unwrap();
                continue;
            }
            let n_rhs = 1 + rng.below(3);
            let rhs: Vec<TriplePattern> = (0..n_rhs)
                .map(|k| {
                    TriplePattern::new(
                        if rng.below(2) == 0 {
                            s
                        } else {
                            Term::var(it.intern(&format!("fresh{k}")))
                        },
                        Term::iri(it.intern(&format!("http://tgt/p{}", rng.below(12)))),
                        if rng.below(2) == 0 {
                            o
                        } else {
                            Term::var(it.intern(&format!("fresh{}", k + 1)))
                        },
                    )
                })
                .collect();
            store.add_predicate(lhs, rhs).unwrap();
        }
    }
    store
}

#[test]
fn property_indexed_equals_linear_on_random_rule_sets() {
    for seed in 1..=20u64 {
        let mut rng = Rng(seed * 0x9e37_79b9);
        let mut it = Interner::new();
        let store = random_store(&mut rng, &mut it);
        let preds: Vec<Term> = (0..12)
            .map(|i| Term::iri(it.intern(&format!("http://ex/p{i}"))))
            .collect();
        let n_patterns = 1 + rng.below(16);
        let patterns: Vec<TriplePattern> = (0..n_patterns)
            .map(|_| {
                TriplePattern::new(
                    random_term(&mut rng, &mut it, 20),
                    if rng.below(4) == 0 {
                        random_term(&mut rng, &mut it, 20)
                    } else {
                        preds[rng.below(preds.len())]
                    },
                    random_term(&mut rng, &mut it, 20),
                )
            })
            .collect();
        let query = Query {
            select: SelectList::Star,
            pattern: GroupPattern::from_bgp(&Bgp::new(patterns)),
        };
        let indexed = IndexedRewriter::new(&store).rewrite_query(&query);
        let linear = LinearRewriter::new(&store).rewrite_query(&query);
        assert_eq!(
            indexed,
            linear,
            "seed {seed}: indexed and linear rewriters disagree\nindexed: {}\nlinear: {}",
            indexed.display(&it),
            linear.display(&it)
        );
    }
}

#[test]
fn property_indexed_equals_linear_on_random_group_queries() {
    for seed in 1..=25u64 {
        let mut rng = Rng(seed * 0x51ed_2701);
        let mut it = Interner::new();
        let mut store = random_store(&mut rng, &mut it);
        let text = random_group_query_text(&mut rng);
        let query = parse_query(&text, &mut it).unwrap_or_else(|e| {
            panic!("seed {seed}: generated query failed to parse: {e}\n{text}")
        });
        let indexed = IndexedRewriter::new(&store).rewrite_query(&query);
        let linear = LinearRewriter::new(&store).rewrite_query(&query);
        assert_eq!(
            indexed,
            linear,
            "seed {seed}: rewriters disagree on group query\n{text}\nindexed: {}\nlinear: {}",
            indexed.display(&it),
            linear.display(&it)
        );
        // Rewriting is deterministic per query.
        assert_eq!(indexed, IndexedRewriter::new(&store).rewrite_query(&query));
        // Dense dispatch must serve the same answers — complex rules (and
        // their pooled guard/filter templates) included, no silent
        // divergence between the frozen pools and the hash fallback.
        assert!(
            store.build_dense_index(it.symbol_bound()),
            "seed {seed}: dense index unexpectedly declined"
        );
        assert_eq!(
            indexed,
            IndexedRewriter::new(&store).rewrite_query(&query),
            "seed {seed}: dense and hash dispatch disagree"
        );
    }
}

#[test]
fn template_blank_nodes_freshened_per_expansion() {
    let mut it = Interner::new();
    // rhs introduces a blank node — an existential that must not be shared
    // across independent expansions, nor capture the query's own _:b.
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> _:b", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();

    let query = parse_query(
        "SELECT * WHERE { ?a <http://src/p> ?x . ?c <http://src/p> ?d . _:b <http://other/q> ?e }",
        &mut it,
    )
    .unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    assert_eq!(out.pattern.triples.len(), 3);
    let o1 = out.pattern.triples[0].o;
    let o2 = out.pattern.triples[1].o;
    let query_blank = Term::blank(it.intern("b"));
    assert_ne!(o1, o2, "one existential shared across expansions");
    assert_ne!(o1, query_blank, "captured the query's _:b");
    assert_ne!(o2, query_blank, "captured the query's _:b");
    // The query's own blank node passes through untouched.
    assert_eq!(out.pattern.triples[2].s, query_blank);
    // Indexed and linear still agree.
    let lin = LinearRewriter::new(&store).rewrite_query(&query);
    assert_eq!(out, lin);
}

// ---------------------------------------------------------------------------
// Scratch reuse, per-query determinism, and re-rewriting prior output.
// ---------------------------------------------------------------------------

#[test]
fn scratch_reuse_matches_fresh_scratch() {
    use sparql_rewrite_core::RewriteScratch;
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> ?m . ?m <http://tgt/q> ?o", &mut it)
        .unwrap()
        .patterns;
    let rhs2 = parse_bgp("?s <http://tgt/alt> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();
    store.add_predicate(lhs, rhs2).unwrap(); // multi-match: UNION output
    let rw = IndexedRewriter::new(&store);

    let queries = [
        parse_query("SELECT * WHERE { ?a <http://src/p> ?b }", &mut it).unwrap(),
        parse_query(
            "SELECT ?x WHERE { ?x <http://src/p> ?y OPTIONAL { ?y <http://src/p> ?z } \
             FILTER(?x != 4) }",
            &mut it,
        )
        .unwrap(),
        parse_query("SELECT * WHERE { ?u <http://other/p> ?v }", &mut it).unwrap(),
    ];
    let mut reused = RewriteScratch::new();
    for q in &queries {
        rw.rewrite_query_into(q, &mut reused);
        let via_reuse = reused.to_query();
        // A scratch dirtied by earlier queries must give byte-identical
        // results to a brand-new one.
        let mut clean = RewriteScratch::new();
        rw.rewrite_query_into(q, &mut clean);
        assert_eq!(via_reuse, clean.to_query());
        // And to the allocating convenience path.
        assert_eq!(via_reuse, rw.rewrite_query(q));
    }
}

#[test]
fn rewrite_is_deterministic_per_query() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> ?m . ?m <http://tgt/q> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();
    let rw = IndexedRewriter::new(&store);
    let query = parse_query(
        "SELECT * WHERE { ?a <http://src/p> ?b . ?c <http://src/p> ?d }",
        &mut it,
    )
    .unwrap();
    // The fresh counter restarts per rewrite call, so the same query always
    // produces the same output — the property that makes multi-threaded
    // batch rewriting order-independent.
    let first = rw.rewrite_query(&query);
    for _ in 0..5 {
        assert_eq!(rw.rewrite_query(&query), first);
    }
}

#[test]
fn rerewriting_output_skips_existing_fresh_counters() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://mid/p> ?m . ?m <http://mid/q> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();
    // Second stage rewrites the mid vocabulary onward, introducing another
    // existential.
    let lhs2 = parse_bgp("?s <http://mid/q> ?o", &mut it).unwrap().patterns[0];
    let rhs2 = parse_bgp("?s <http://tgt/q1> ?k . ?k <http://tgt/q2> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store2 = AlignmentStore::new();
    store2.add_predicate(lhs2, rhs2).unwrap();

    let query = parse_bgp("?a <http://src/p> ?b", &mut it).unwrap();
    let stage1 = IndexedRewriter::new(&store).rewrite_bgp(&query);
    // stage1: ?a mid:p g0 . g0 mid:q ?b   (g0 = Fresh(0))
    let stage2 = IndexedRewriter::new(&store2).rewrite_pattern(&stage1);
    // stage2 must mint existentials that do not collide with Fresh(0).
    let mut fresh: Vec<Term> = stage2
        .triples
        .iter()
        .flat_map(|tp| tp.terms())
        .filter(|t| t.is_fresh())
        .collect();
    fresh.sort();
    fresh.dedup();
    assert_eq!(fresh.len(), 2, "{stage2:?}");
    // The join structure survives: g0 appears in both the passthrough and
    // the expanded patterns, and the new existential differs from it.
    assert_eq!(stage2.triples.len(), 3);
    assert_eq!(stage2.triples[0].o, stage2.triples[1].s);
    assert_ne!(stage2.triples[1].s, stage2.triples[2].s);
}

#[test]
fn fresh_vars_never_collide_with_g_named_query_vars_when_rendered() {
    let mut it = Interner::new();
    let lhs = parse_bgp("?s <http://src/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> ?m . ?m <http://tgt/q> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store = AlignmentStore::new();
    store.add_predicate(lhs, rhs).unwrap();
    // The query itself uses ?g0 and ?g1 — the names the renderer would
    // otherwise hand to the first two fresh existentials.
    let query = parse_query("SELECT ?g0 WHERE { ?g0 <http://src/p> ?g1 }", &mut it).unwrap();
    let out = IndexedRewriter::new(&store).rewrite_query(&query);
    let rendered = out.display(&it).to_string();
    // The existential joins the two expanded patterns and must be a new
    // name, not ?g0/?g1.
    assert!(rendered.contains("?g2"), "{rendered}");
    let reparsed = parse_query(&rendered, &mut it).unwrap();
    assert_eq!(reparsed.pattern.triples.len(), 2);
    // Join variable is shared between the two reparsed patterns and is
    // distinct from the projected ?g0 and the original ?g1.
    let join = reparsed.pattern.triples[0].o;
    assert_eq!(join, reparsed.pattern.triples[1].s);
    assert_ne!(join, var(&mut it, "g0"));
    assert_ne!(join, var(&mut it, "g1"));
}

#[test]
fn fresh_count_excludes_preexisting_fresh_terms() {
    use sparql_rewrite_core::RewriteScratch;
    let mut it = Interner::new();
    // Input already carries Fresh(0)/Fresh(1) (as if from a prior rewrite);
    // an empty rule set mints nothing, so fresh_count must be 0.
    let p = iri(&mut it, "http://ex/p");
    let prior = Bgp::new(vec![TriplePattern::new(Term::fresh(0), p, Term::fresh(1))]);
    let store = AlignmentStore::new();
    let rw = IndexedRewriter::new(&store);
    let mut scratch = RewriteScratch::new();
    rw.rewrite_bgp_into(&prior, &mut scratch);
    assert_eq!(scratch.fresh_count(), 0);

    // With a rule that mints one existential, the count is exactly 1 and the
    // new counter sits above the pre-existing ones.
    let lhs = parse_bgp("?s <http://ex/p> ?o", &mut it).unwrap().patterns[0];
    let rhs = parse_bgp("?s <http://tgt/p> ?m . ?m <http://tgt/q> ?o", &mut it)
        .unwrap()
        .patterns;
    let mut store2 = AlignmentStore::new();
    store2.add_predicate(lhs, rhs).unwrap();
    let rw2 = IndexedRewriter::new(&store2);
    rw2.rewrite_bgp_into(&prior, &mut scratch);
    assert_eq!(scratch.fresh_count(), 1);
    let minted = scratch.patterns()[0].o;
    assert!(minted.is_fresh() && minted.fresh_index() >= 2, "{minted:?}");
}
