//! End-to-end chaos battery: the real [`HttpTransport`] driven through the
//! [`FederatedExecutor`] against an in-process [`ChaosProxy`], one test per
//! injected fault class, asserting the documented fault → outcome mapping:
//!
//! | fault                | outcome                                      |
//! |----------------------|----------------------------------------------|
//! | healthy              | `Served` (connection reused across requests) |
//! | refuse / reset       | transient → `ExhaustedRetries { permanent: false }` |
//! | trickle (slow-loris) | `TimedOut` at exactly the deadline           |
//! | truncated body       | transient → `ExhaustedRetries { permanent: false }` |
//! | malformed status     | permanent, one attempt                       |
//! | malformed header     | permanent, one attempt                       |
//! | oversized body       | permanent, one attempt (cap checked before read) |
//! | wrong content-length | `Served`, but the connection is never pooled |
//!
//! Plus the conditions no proxy can fake: a genuinely dead port
//! (ECONNREFUSED from the kernel) and an unparseable authority. The final
//! test streams a mixed fault schedule twice and requires byte-identical
//! outcome transcripts — the determinism contract the bench soak gates on.

use sparql_rewrite_core::{
    BackoffPolicy, BreakerConfig, BreakerState, ChaosProxy, ChaosSpec, EndpointId, EndpointOutcome,
    EndpointPlan, ExecutorConfig, FaultClass, FederatedExecutor, HttpConfig, HttpEndpoint,
    HttpLimits, HttpTransport, Interner, Term,
};

/// A plan shipping one fixed subquery to endpoint 0.
fn plan() -> EndpointPlan {
    let mut interner = Interner::new();
    let sym = interner.intern("http://chaos.example.org/sparql");
    EndpointPlan {
        endpoint: EndpointId(0),
        endpoint_term: Term::iri(sym),
        subquery: "SELECT * WHERE { ?s <http://ep0.example.org/onto/p0> ?o . }".to_string(),
        selectivity: 1,
        n_patterns: 1,
    }
}

fn transport_for(authority: String) -> HttpTransport {
    HttpTransport::new(
        vec![HttpEndpoint::new(authority, "/sparql")],
        HttpConfig {
            limits: HttpLimits {
                max_header_bytes: 8 * 1024,
                // Below the chaos proxy's 256 KiB oversized announcement,
                // so OversizedBody is rejected at the cap.
                max_body_bytes: 64 * 1024,
            },
            connect_cap_nanos: 250_000_000,
        },
    )
}

/// Wide-margin timing: inter-request and cooldown are *virtual* (free), so
/// they dwarf any real socket latency that leaks into the virtual clock —
/// breaker decisions can't flip on scheduling noise.
fn exec_config() -> ExecutorConfig {
    ExecutorConfig {
        n_threads: 1,
        deadline_nanos: 200_000_000,
        inter_request_nanos: 50_000_000,
        backoff: BackoffPolicy {
            base_nanos: 1_000_000,
            max_nanos: 4_000_000,
            max_retries: 3,
        },
        breaker: BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_rate_pct: 50,
            cooldown_nanos: 120_000_000,
            half_open_successes: 1,
        },
        seed: 0x7e57_c4a0,
    }
}

/// Spawn a proxy locked to one fault class, run `n` sequential executions,
/// and hand back (outcomes, executor, proxy) for assertions.
fn run_against(
    class: FaultClass,
    n: usize,
) -> (
    Vec<EndpointOutcome>,
    FederatedExecutor<HttpTransport>,
    ChaosProxy,
) {
    let proxy = ChaosProxy::spawn(0x5eed, ChaosSpec::always(class)).expect("spawn chaos proxy");
    let exec = FederatedExecutor::new(transport_for(proxy.authority()), 1, exec_config());
    let plans = [plan()];
    let outcomes = (0..n)
        .map(|_| exec.execute(&plans).reports[0].outcome)
        .collect();
    (outcomes, exec, proxy)
}

#[test]
fn healthy_endpoint_serves_and_reuses_its_connection() {
    let (outcomes, exec, proxy) = run_against(FaultClass::Healthy, 6);
    for (i, o) in outcomes.iter().enumerate() {
        assert!(
            matches!(o, EndpointOutcome::Served { attempts: 1, .. }),
            "request {i}: {o:?}"
        );
    }
    assert_eq!(proxy.injected(FaultClass::Healthy), 6);
    assert!(
        exec.transport().reused_connections() >= 1,
        "keep-alive pool never reused a healthy connection"
    );
    assert_eq!(exec.caught_panics(), 0);
}

#[test]
fn healthy_responses_are_deterministic_per_subquery() {
    let proxy = ChaosProxy::spawn(1, ChaosSpec::default()).unwrap();
    let exec = FederatedExecutor::new(transport_for(proxy.authority()), 1, exec_config());
    let plans = [plan()];
    let first = exec.execute(&plans).reports[0].rows.clone().unwrap();
    let second = exec.execute(&plans).reports[0].rows.clone().unwrap();
    // The chaos proxy stamps bodies with a hash of the received query, so
    // equal subqueries must produce byte-equal rows.
    assert_eq!(first, second);
    assert!(first.starts_with("{\"q\":\""), "unexpected body {first:?}");
}

#[test]
fn refused_connections_exhaust_transient_retries() {
    let (outcomes, exec, proxy) = run_against(FaultClass::Refuse, 1);
    let max = exec.config().backoff.max_retries;
    assert_eq!(
        outcomes[0],
        EndpointOutcome::ExhaustedRetries {
            attempts: max + 1,
            permanent: false
        }
    );
    assert_eq!(proxy.injected(FaultClass::Refuse), (max + 1) as u64);
}

#[test]
fn reset_after_the_request_is_transient() {
    let (outcomes, exec, _proxy) = run_against(FaultClass::Reset, 1);
    assert_eq!(
        outcomes[0],
        EndpointOutcome::ExhaustedRetries {
            attempts: exec.config().backoff.max_retries + 1,
            permanent: false
        }
    );
}

#[test]
fn truncated_bodies_are_transient() {
    let (outcomes, exec, _proxy) = run_against(FaultClass::TruncateBody, 1);
    assert_eq!(
        outcomes[0],
        EndpointOutcome::ExhaustedRetries {
            attempts: exec.config().backoff.max_retries + 1,
            permanent: false
        }
    );
}

#[test]
fn slow_loris_burns_the_deadline_to_a_timeout() {
    let (outcomes, exec, proxy) = run_against(FaultClass::Trickle, 1);
    // The trickle streams one byte per 20ms against a 200ms deadline: the
    // DeadlineReader re-arms the socket timeout per read, so the *total*
    // stall is cut at the deadline and the executor books exactly it.
    assert_eq!(
        outcomes[0],
        EndpointOutcome::TimedOut {
            attempts: 1,
            elapsed_nanos: exec.config().deadline_nanos
        }
    );
    assert_eq!(proxy.injected(FaultClass::Trickle), 1);
}

#[test]
fn malformed_status_lines_are_permanent() {
    let (outcomes, _exec, _proxy) = run_against(FaultClass::MalformedStatus, 1);
    assert_eq!(
        outcomes[0],
        EndpointOutcome::ExhaustedRetries {
            attempts: 1,
            permanent: true
        }
    );
}

#[test]
fn malformed_headers_are_permanent() {
    let (outcomes, _exec, _proxy) = run_against(FaultClass::MalformedHeader, 1);
    assert_eq!(
        outcomes[0],
        EndpointOutcome::ExhaustedRetries {
            attempts: 1,
            permanent: true
        }
    );
}

#[test]
fn oversized_bodies_are_rejected_at_the_cap_without_reading() {
    let (outcomes, _exec, _proxy) = run_against(FaultClass::OversizedBody, 1);
    // The 256 KiB Content-Length announcement exceeds the 64 KiB cap: the
    // reader rejects it from the header alone, never draining the body.
    assert_eq!(
        outcomes[0],
        EndpointOutcome::ExhaustedRetries {
            attempts: 1,
            permanent: true
        }
    );
}

#[test]
fn wrong_content_length_serves_but_poisons_the_connection() {
    let (outcomes, exec, _proxy) = run_against(FaultClass::WrongContentLength, 3);
    // The response parses (short body), so the caller is served — but the
    // stray over-announced bytes make the connection dirty, so it must
    // never re-enter the keep-alive pool.
    for (i, o) in outcomes.iter().enumerate() {
        assert!(
            matches!(o, EndpointOutcome::Served { attempts: 1, .. }),
            "request {i}: {o:?}"
        );
    }
    assert_eq!(
        exec.transport().reused_connections(),
        0,
        "a poisoned connection was reused"
    );
    assert_eq!(exec.transport().transparent_reconnects(), 0);
}

#[test]
fn sustained_faults_trip_the_breaker_and_fast_fail() {
    let (outcomes, exec, _proxy) = run_against(FaultClass::Refuse, 3);
    // Execution 1 records min_samples failures at a 100% rate: tripped.
    assert!(matches!(
        outcomes[0],
        EndpointOutcome::ExhaustedRetries {
            permanent: false,
            ..
        }
    ));
    // The 120ms cooldown spans the 50ms inter-request gap, so the next two
    // executions are rejected without a single socket dial.
    assert_eq!(outcomes[1], EndpointOutcome::CircuitOpen { attempts: 0 });
    assert_eq!(outcomes[2], EndpointOutcome::CircuitOpen { attempts: 0 });
    assert_eq!(exec.breaker_states()[0], BreakerState::Open);
}

#[test]
fn a_genuinely_dead_port_fast_fails_as_transient() {
    // Bind a listener to reserve a loopback port, then drop it: dialing
    // the dead port yields a real kernel ECONNREFUSED, not a proxy fake.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let exec = FederatedExecutor::new(transport_for(dead.to_string()), 1, exec_config());
    let report = &exec.execute(&[plan()]).reports[0];
    assert_eq!(
        report.outcome,
        EndpointOutcome::ExhaustedRetries {
            attempts: exec.config().backoff.max_retries + 1,
            permanent: false
        },
        "rows: {:?}",
        report.rows
    );
}

#[test]
fn an_unparseable_authority_is_permanent() {
    let exec = FederatedExecutor::new(
        transport_for("127.0.0.1:notaport".to_string()),
        1,
        exec_config(),
    );
    assert_eq!(
        exec.execute(&[plan()]).reports[0].outcome,
        EndpointOutcome::ExhaustedRetries {
            attempts: 1,
            permanent: true
        }
    );
}

/// Outcome classes only — never latency nanos, which real sockets make
/// nondeterministic. This is the same transcript shape the bench soak
/// compares across runs.
fn outcome_class(o: &EndpointOutcome) -> String {
    match o {
        EndpointOutcome::Served { attempts, .. } => format!("served a={attempts}"),
        EndpointOutcome::TimedOut { attempts, .. } => format!("timed_out a={attempts}"),
        EndpointOutcome::CircuitOpen { attempts } => format!("circuit_open a={attempts}"),
        EndpointOutcome::ExhaustedRetries {
            attempts,
            permanent,
        } => format!("exhausted a={attempts} perm={permanent}"),
    }
}

#[test]
fn mixed_chaos_schedules_replay_byte_identically() {
    let spec = ChaosSpec {
        refuse_pct: 12,
        reset_pct: 12,
        truncate_pct: 12,
        malformed_status_pct: 6,
        wrong_len_pct: 10,
        ..ChaosSpec::default()
    };
    let run = || {
        let proxy = ChaosProxy::spawn(0xc4a0_5eed, spec).unwrap();
        let exec = FederatedExecutor::new(transport_for(proxy.authority()), 1, exec_config());
        let plans = [plan()];
        let mut transcript = String::new();
        let mut served = 0u32;
        let mut degraded = 0u32;
        for i in 0..40 {
            let r = &exec.execute(&plans).reports[0];
            if r.outcome.is_served() {
                served += 1;
            } else {
                degraded += 1;
            }
            transcript.push_str(&format!(
                "r={i} {} b={:?}\n",
                outcome_class(&r.outcome),
                r.breaker
            ));
        }
        assert_eq!(exec.caught_panics(), 0);
        (transcript, proxy.injected_counts(), served, degraded)
    };
    let (t1, inj1, served, degraded) = run();
    let (t2, inj2, _, _) = run();
    assert_eq!(t1, t2, "outcome transcripts diverged across identical runs");
    assert_eq!(inj1, inj2, "fault-injection schedules diverged");
    assert!(served > 0, "no request was served:\n{t1}");
    assert!(degraded > 0, "no request degraded:\n{t1}");
}
