//! Steady-state rewriting performs zero heap allocations.
//!
//! This binary installs a counting global allocator, warms a
//! [`RewriteScratch`] over a workload once, then asserts that repeated
//! `rewrite_query_into` calls never touch the allocator again. The workload
//! deliberately exercises every allocation-prone path: entity substitution,
//! one-to-many template expansion, multi-template UNION expansion,
//! fresh-variable minting, rule misses, and recursive group-pattern
//! rewriting (nested groups, OPTIONAL, UNION, FILTER trees).

use std::sync::{Mutex, MutexGuard};

use sparql_rewrite_core::counting_alloc::{allocation_count, CountingAllocator};
use sparql_rewrite_core::{
    fingerprint_query, parse_bgp, parse_query, parse_query_into, render_query_into, AlignmentStore,
    CacheConfig, CmpOp, ExprNode, IndexedRewriter, Interner, LinearRewriter, ParseScratch, Query,
    QueryRef, RewriteCache, RewriteScratch, Rewriter, RuleTemplate, Term,
};

/// The allocation counter is process-global and the test harness runs tests
/// on parallel threads, so each test holds this lock for its whole body —
/// otherwise one test's fixture building would land inside another's
/// counting window.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialized() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn build_fixture() -> (AlignmentStore, Vec<Query>) {
    let mut it = Interner::new();
    let mut store = AlignmentStore::new();
    // Entity alignment, 1:1 template, and 1:2 template with an existential.
    store
        .add_entity(
            parse_bgp("?x <http://src/E> ?y", &mut it).unwrap().patterns[0].p,
            parse_bgp("?x <http://tgt/E> ?y", &mut it).unwrap().patterns[0].p,
        )
        .unwrap();
    let lhs1 = parse_bgp("?a <http://src/one> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let rhs1 = parse_bgp("?b <http://tgt/one> ?a", &mut it)
        .unwrap()
        .patterns;
    store.add_predicate(lhs1, rhs1).unwrap();
    let lhs2 = parse_bgp("?a <http://src/split> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let rhs2 = parse_bgp(
        "?a <http://tgt/h> ?m . ?m <http://tgt/t> ?b . ?m <http://tgt/k> _:bn",
        &mut it,
    )
    .unwrap()
    .patterns;
    store.add_predicate(lhs2, rhs2).unwrap();
    // Two templates on one predicate: every `src:multi` pattern expands into
    // a two-branch UNION.
    let lhs3 = parse_bgp("?a <http://src/multi> ?b", &mut it)
        .unwrap()
        .patterns[0];
    for tgt in ["m1", "m2"] {
        let rhs = parse_bgp(&format!("?a <http://tgt/{tgt}> ?b"), &mut it)
            .unwrap()
            .patterns;
        store.add_predicate(lhs3, rhs).unwrap();
    }

    let queries = vec![
        parse_query(
            "SELECT ?a ?b WHERE { ?a <http://src/one> ?b . ?a <http://src/E> ?b }",
            &mut it,
        )
        .unwrap(),
        parse_query(
            "SELECT * WHERE { ?p <http://src/split> ?q . ?q <http://src/split> ?r . ?r <http://miss/p> ?s }",
            &mut it,
        )
        .unwrap(),
        parse_query("SELECT ?x WHERE { ?x <http://nohit/p> <http://nohit/o> }", &mut it).unwrap(),
        // Group-pattern shapes driven through the recursive path: nested
        // group, OPTIONAL, explicit UNION, FILTER with entity substitution,
        // and a multi-template UNION expansion inside the OPTIONAL.
        parse_query(
            "SELECT * WHERE { ?a <http://src/one> ?b . \
             OPTIONAL { ?b <http://src/multi> ?c } \
             { ?c <http://src/split> ?d } UNION { { ?c <http://src/one> ?e } } \
             FILTER(?b != <http://src/E> && ?c < 42 || !(?d = \"z\"@en)) }",
            &mut it,
        )
        .unwrap(),
        // A multi-match at top level sandwiched between pass-throughs.
        parse_query(
            "SELECT * WHERE { ?x <http://miss/p> ?y . ?x <http://src/multi> ?z . \
             ?z <http://miss/q> ?w }",
            &mut it,
        )
        .unwrap(),
    ];
    (store, queries)
}

#[test]
fn steady_state_rewrite_query_into_is_allocation_free() {
    let _guard = serialized();
    let (store, queries) = build_fixture();
    let rewriter = IndexedRewriter::new(&store);
    let mut scratch = RewriteScratch::new();

    // Warm-up: first pass may grow the scratch buffers.
    for q in &queries {
        rewriter.rewrite_query_into(q, &mut scratch);
    }
    let expected: Vec<(usize, u32)> = queries
        .iter()
        .map(|q| {
            rewriter.rewrite_query_into(q, &mut scratch);
            (scratch.patterns().len(), scratch.fresh_count())
        })
        .collect();

    let before = allocation_count();
    for _ in 0..1_000 {
        for (q, exp) in queries.iter().zip(&expected) {
            rewriter.rewrite_query_into(q, &mut scratch);
            assert_eq!((scratch.patterns().len(), scratch.fresh_count()), *exp);
        }
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "steady-state rewrite_query_into must not allocate"
    );
}

#[test]
fn linear_strategy_is_also_allocation_free() {
    let _guard = serialized();
    let (store, queries) = build_fixture();
    let rewriter = LinearRewriter::new(&store);
    let mut scratch = RewriteScratch::new();
    for q in &queries {
        rewriter.rewrite_query_into(q, &mut scratch);
    }
    let before = allocation_count();
    for _ in 0..100 {
        for q in &queries {
            rewriter.rewrite_query_into(q, &mut scratch);
        }
    }
    assert_eq!(allocation_count() - before, 0);
}

/// Query texts covering the allocation-prone parse paths: PREFIX + QName
/// expansion, flat predicate-object/object lists, full group shapes
/// (nested group, OPTIONAL, UNION, FILTER with typed-literal sugar), and
/// predicates that the fixture's rule set expands into a multi-branch
/// UNION at rewrite time.
const PIPELINE_TEXTS: &[&str] = &[
    "PREFIX src: <http://src/>\nSELECT ?a ?b WHERE { ?a src:one ?b ; src:E ?b . ?b src:one ?a , ?c }",
    "SELECT * WHERE { ?p <http://src/split> ?q . ?q <http://miss/p> 42 . ?q <http://miss/q> \"x\"@en }",
    "SELECT * WHERE { ?a <http://src/one> ?b . \
     OPTIONAL { ?b <http://src/multi> ?c } \
     { ?c <http://src/split> ?d } UNION { { ?c <http://src/one> ?e } } \
     FILTER(?b != <http://src/E> && ?c < 42 || !(?d = \"z\"@en)) }",
    "SELECT * WHERE { ?x <http://miss/p> ?y . ?x <http://src/multi> ?z . ?z <http://miss/q> true }",
];

#[test]
fn steady_state_parse_query_into_is_allocation_free() {
    let _guard = serialized();
    let mut it = Interner::new();
    let mut scratch = ParseScratch::new();
    // Warm-up: first pass interns every distinct string and grows the
    // scratch buffers to the batch's high-water mark.
    for text in PIPELINE_TEXTS {
        parse_query_into(text, &mut it, &mut scratch).unwrap();
    }
    let expected: Vec<(usize, usize)> = PIPELINE_TEXTS
        .iter()
        .map(|text| {
            parse_query_into(text, &mut it, &mut scratch).unwrap();
            (
                scratch.pattern().triples.len(),
                scratch.select().map_or(0, <[_]>::len),
            )
        })
        .collect();

    let before = allocation_count();
    for _ in 0..1_000 {
        for (text, exp) in PIPELINE_TEXTS.iter().zip(&expected) {
            parse_query_into(text, &mut it, &mut scratch).unwrap();
            assert_eq!(
                (
                    scratch.pattern().triples.len(),
                    scratch.select().map_or(0, <[_]>::len)
                ),
                *exp
            );
        }
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "steady-state parse_query_into must not allocate"
    );
}

#[test]
fn steady_state_parse_rewrite_render_pipeline_is_allocation_free() {
    let _guard = serialized();
    // Rules over the same vocabulary as PIPELINE_TEXTS, including the
    // two-template `src:multi` predicate whose rewrite expands a UNION.
    // Built against the *same* interner the pipeline parses with — rule
    // terms and query terms must share symbols.
    let mut it = Interner::new();
    let mut store = AlignmentStore::new();
    store
        .add_entity(
            parse_bgp("?x <http://src/E> ?y", &mut it).unwrap().patterns[0].p,
            parse_bgp("?x <http://tgt/E> ?y", &mut it).unwrap().patterns[0].p,
        )
        .unwrap();
    let lhs1 = parse_bgp("?a <http://src/one> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let rhs1 = parse_bgp("?b <http://tgt/one> ?a", &mut it)
        .unwrap()
        .patterns;
    store.add_predicate(lhs1, rhs1).unwrap();
    let lhs2 = parse_bgp("?a <http://src/split> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let rhs2 = parse_bgp("?a <http://tgt/h> ?m . ?m <http://tgt/t> ?b", &mut it)
        .unwrap()
        .patterns;
    store.add_predicate(lhs2, rhs2).unwrap();
    let lhs3 = parse_bgp("?a <http://src/multi> ?b", &mut it)
        .unwrap()
        .patterns[0];
    for tgt in ["m1", "m2"] {
        let rhs = parse_bgp(&format!("?a <http://tgt/{tgt}> ?b"), &mut it)
            .unwrap()
            .patterns;
        store.add_predicate(lhs3, rhs).unwrap();
    }
    // Exercise the tentpole: lookups run on the dense direct-indexed tables.
    assert!(store.build_dense_index(it.symbol_bound()));
    let rewriter = IndexedRewriter::new(&store);
    let mut parse = ParseScratch::new();
    let mut rewrite = RewriteScratch::new();
    let mut fresh_base = String::new();
    let mut out = String::new();

    let serve = |text: &str,
                 it: &mut Interner,
                 parse: &mut ParseScratch,
                 rewrite: &mut RewriteScratch,
                 fresh_base: &mut String,
                 out: &mut String| {
        parse_query_into(text, it, parse).unwrap();
        rewriter.rewrite_ref_into(parse.query_ref(), rewrite);
        render_query_into(
            QueryRef {
                select: rewrite.select(),
                pattern: rewrite.pattern(),
            },
            it,
            fresh_base,
            out,
        );
        out.len()
    };

    for text in PIPELINE_TEXTS {
        serve(
            text,
            &mut it,
            &mut parse,
            &mut rewrite,
            &mut fresh_base,
            &mut out,
        );
    }
    let expected: Vec<usize> = PIPELINE_TEXTS
        .iter()
        .map(|t| {
            serve(
                t,
                &mut it,
                &mut parse,
                &mut rewrite,
                &mut fresh_base,
                &mut out,
            )
        })
        .collect();

    let before = allocation_count();
    for _ in 0..1_000 {
        for (text, exp) in PIPELINE_TEXTS.iter().zip(&expected) {
            let len = serve(
                text,
                &mut it,
                &mut parse,
                &mut rewrite,
                &mut fresh_base,
                &mut out,
            );
            assert_eq!(len, *exp);
        }
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "steady-state parse → rewrite → render must not allocate"
    );
}

#[test]
fn cache_hit_path_is_allocation_free() {
    let _guard = serialized();
    // The cache probe — fingerprint, lookup, copy-out — is the entire
    // serve path for a repeated query, so it must be as allocation-free as
    // the pipeline it short-circuits. Fingerprinting itself must also stay
    // clean on the miss path (it runs before every cold serve).
    let cache = RewriteCache::new(CacheConfig::default());
    let texts: Vec<String> = PIPELINE_TEXTS.iter().map(|t| t.to_string()).collect();
    let fps: Vec<_> = texts
        .iter()
        .map(|t| fingerprint_query(t).expect("pipeline texts are cacheable"))
        .collect();
    for (i, fp) in fps.iter().enumerate() {
        cache.insert(*fp, 0, format!("rendered-{i}").into_bytes().as_slice());
    }
    let mut buf = Vec::with_capacity(cache.value_cap());
    // Warm pass.
    for (text, fp) in texts.iter().zip(&fps) {
        assert_eq!(fingerprint_query(text), Some(*fp));
        assert!(cache.lookup(*fp, 0, &mut buf));
    }
    let before = allocation_count();
    for _ in 0..1_000 {
        for text in &texts {
            let computed = fingerprint_query(text).expect("cacheable");
            assert!(cache.lookup(computed, 0, &mut buf));
        }
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "steady-state fingerprint + cache lookup must not allocate"
    );
}

/// Complex correspondences — guarded rules (statically true / statically
/// false / undecidable), existential chain templates, and value-transform
/// FILTERs — must be as allocation-free in steady state as flat templates.
/// This drives the guard pre-pass, residual-FILTER emission (expression
/// pool import with leaf substitution), and UNION branches that carry an
/// inner group + FILTER chain.
#[test]
fn complex_rule_rewriting_is_allocation_free() {
    let _guard = serialized();
    let mut it = Interner::new();
    let mut store = AlignmentStore::new();

    // Guarded 1:1: fires only when ?b = <http://val/yes>; an undecidable
    // match carries the instantiated guard along as a residual FILTER.
    let g_lhs = parse_bgp("?a <http://src/g> ?b", &mut it).unwrap().patterns[0];
    let mut tmpl =
        RuleTemplate::from_triples(parse_bgp("?a <http://tgt/g> ?b", &mut it).unwrap().patterns);
    let l = tmpl.push_expr(ExprNode::Term(g_lhs.o));
    let r = tmpl.push_expr(ExprNode::Term(Term::iri(it.intern("http://val/yes"))));
    let g = tmpl.push_expr(ExprNode::Cmp(CmpOp::Eq, l, r));
    tmpl.set_guard(g);
    store.add_complex_predicate(g_lhs, tmpl).unwrap();

    // 1:2 existential chain plus an emitted value-transform FILTER.
    let c_lhs = parse_bgp("?a <http://src/len> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let mut tmpl = RuleTemplate::from_triples(
        parse_bgp("?a <http://tgt/q> ?m . ?m <http://tgt/v> ?b", &mut it)
            .unwrap()
            .patterns,
    );
    let l = tmpl.push_expr(ExprNode::Term(c_lhs.o));
    let r = tmpl.push_expr(ExprNode::Term(Term::literal(it.intern("\"0\""))));
    let f = tmpl.push_expr(ExprNode::Cmp(CmpOp::Ne, l, r));
    tmpl.push_filter(f);
    store.add_complex_predicate(c_lhs, tmpl).unwrap();

    // Flat + guarded templates colliding on one predicate: every match
    // expands into a UNION whose second branch is a group with a residual
    // FILTER inside.
    let m_lhs = parse_bgp("?a <http://src/multi> ?b", &mut it)
        .unwrap()
        .patterns[0];
    let flat = parse_bgp("?a <http://tgt/m1> ?b", &mut it)
        .unwrap()
        .patterns;
    store.add_predicate(m_lhs, flat).unwrap();
    let mut tmpl = RuleTemplate::from_triples(
        parse_bgp("?a <http://tgt/m2> ?b", &mut it)
            .unwrap()
            .patterns,
    );
    let l = tmpl.push_expr(ExprNode::Term(m_lhs.s));
    let r = tmpl.push_expr(ExprNode::Term(Term::iri(it.intern("http://ex/skip"))));
    let g = tmpl.push_expr(ExprNode::Cmp(CmpOp::Ne, l, r));
    tmpl.set_guard(g);
    store.add_complex_predicate(m_lhs, tmpl).unwrap();
    // Serve from the dense direct-indexed tables, as production would.
    assert!(store.build_dense_index(it.symbol_bound()));

    let queries = vec![
        // Guard statically true, statically false (rule pruned, pattern
        // passes through), and undecidable (residual FILTER emitted).
        parse_query(
            "SELECT * WHERE { ?x <http://src/g> <http://val/yes> }",
            &mut it,
        )
        .unwrap(),
        parse_query(
            "SELECT * WHERE { ?x <http://src/g> <http://val/no> }",
            &mut it,
        )
        .unwrap(),
        parse_query("SELECT * WHERE { ?x <http://src/g> ?y }", &mut it).unwrap(),
        // Chain + transform twice over: two fresh existentials minted.
        parse_query(
            "SELECT * WHERE { ?x <http://src/len> ?y . ?y <http://src/len> ?z }",
            &mut it,
        )
        .unwrap(),
        parse_query("SELECT * WHERE { ?x <http://src/multi> ?y }", &mut it).unwrap(),
    ];

    let rewriter = IndexedRewriter::new(&store);
    let mut scratch = RewriteScratch::new();
    for q in &queries {
        rewriter.rewrite_query_into(q, &mut scratch);
    }
    let expected: Vec<(usize, u32)> = queries
        .iter()
        .map(|q| {
            rewriter.rewrite_query_into(q, &mut scratch);
            (scratch.patterns().len(), scratch.fresh_count())
        })
        .collect();

    let before = allocation_count();
    for _ in 0..1_000 {
        for (q, exp) in queries.iter().zip(&expected) {
            rewriter.rewrite_query_into(q, &mut scratch);
            assert_eq!((scratch.patterns().len(), scratch.fresh_count()), *exp);
        }
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "steady-state complex-rule rewriting must not allocate"
    );

    // Same fixture through the linear strategy: guard pruning and residual
    // emission share the engine, so it must be just as clean.
    let linear = LinearRewriter::new(&store);
    for q in &queries {
        linear.rewrite_query_into(q, &mut scratch);
    }
    let before = allocation_count();
    for _ in 0..100 {
        for (q, exp) in queries.iter().zip(&expected) {
            linear.rewrite_query_into(q, &mut scratch);
            assert_eq!((scratch.patterns().len(), scratch.fresh_count()), *exp);
        }
    }
    assert_eq!(
        allocation_count() - before,
        0,
        "steady-state complex-rule rewriting (linear) must not allocate"
    );
}

#[test]
fn rewrite_pattern_into_is_allocation_free_after_warmup() {
    let _guard = serialized();
    let (store, queries) = build_fixture();
    let rewriter = IndexedRewriter::new(&store);
    let mut scratch = RewriteScratch::new();
    for q in &queries {
        rewriter.rewrite_pattern_into(&q.pattern, &mut scratch);
    }
    let before = allocation_count();
    for _ in 0..100 {
        for q in &queries {
            rewriter.rewrite_pattern_into(&q.pattern, &mut scratch);
        }
    }
    assert_eq!(allocation_count() - before, 0);
}
