//! Helpers shared by the integration tests: the deterministic xorshift
//! RNG and the random group-shaped query generator. One copy, so a grammar
//! extension (a new literal form, a new pattern shape) changes the
//! round-trip and rewriter property coverage together.

/// xorshift64* — deterministic, dependency-free.
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Random `SELECT * WHERE { ... }` text with nested groups, OPTIONAL,
/// UNION, SERVICE, FILTER, and every literal form the parser sugars. The
/// vocabulary (`http://ex/p0..11`, `http://ex/e0..19`, `?v0..7`)
/// deliberately overlaps the rewriter property tests' random rule sets so
/// rewrites fire — SERVICE endpoints draw from the same entity pool, so
/// endpoint entity substitution fires too.
pub fn random_group_query_text(rng: &mut Rng) -> String {
    fn gen_triple(rng: &mut Rng, buf: &mut String) {
        let s = rng.below(8);
        let p = rng.below(12);
        buf.push_str(&format!("?v{s} <http://ex/p{p}> "));
        match rng.below(5) {
            0 => buf.push_str(&format!("?v{}", rng.below(8))),
            1 => buf.push_str(&format!("<http://ex/e{}>", rng.below(20))),
            2 => buf.push_str(&format!("{}", rng.below(50))),
            3 => buf.push_str("\"text\"@en-GB"),
            _ => buf.push_str(&format!("\"lit{}\"", rng.below(20))),
        }
        buf.push_str(" . ");
    }
    fn gen_filter(rng: &mut Rng, buf: &mut String) {
        buf.push_str("FILTER(");
        let v = rng.below(8);
        match rng.below(4) {
            0 => buf.push_str(&format!("?v{v} < {}", rng.below(100))),
            1 => buf.push_str(&format!("?v{v} != <http://ex/e{}>", rng.below(20))),
            2 => buf.push_str(&format!(
                "?v{v} = \"lit{}\" || ?v{} >= {}",
                rng.below(20),
                rng.below(8),
                rng.below(100)
            )),
            _ => buf.push_str(&format!("!(?v{v} > 3.5) && ?v{} <= true", rng.below(8))),
        }
        buf.push_str(") ");
    }
    fn gen_group(rng: &mut Rng, buf: &mut String, depth: usize) {
        buf.push_str("{ ");
        let n = 1 + rng.below(3);
        for _ in 0..n {
            match rng.below(if depth < 2 { 7 } else { 2 }) {
                0 | 1 => gen_triple(rng, buf),
                2 => {
                    buf.push_str("OPTIONAL ");
                    gen_group(rng, buf, depth + 1);
                }
                5 => {
                    match rng.below(3) {
                        0 => buf.push_str(&format!("SERVICE ?v{} ", rng.below(8))),
                        _ => buf.push_str(&format!("SERVICE <http://ex/e{}> ", rng.below(20))),
                    }
                    gen_group(rng, buf, depth + 1);
                }
                3 => {
                    gen_group(rng, buf, depth + 1);
                    buf.push_str("UNION ");
                    gen_group(rng, buf, depth + 1);
                    if rng.below(2) == 0 {
                        buf.push_str("UNION ");
                        gen_group(rng, buf, depth + 1);
                    }
                }
                4 => gen_filter(rng, buf),
                _ => gen_group(rng, buf, depth + 1),
            }
        }
        buf.push_str("} ");
    }
    let mut buf = String::from("SELECT * WHERE ");
    gen_group(rng, &mut buf, 0);
    buf
}
