//! End-to-end serve-pipeline property tests: parse → rewrite → render,
//! twice, over random group-shaped queries.
//!
//! With an **idempotent** rule set — every rule maps source vocabulary to
//! target vocabulary and no rule's output is any rule's input, the offline
//! composition discipline the paper assumes (§4) — the pipeline must be a
//! textual fixpoint: feeding the rendered rewrite back through
//! parse → rewrite → render reproduces the text byte for byte. The second
//! pass sees only target vocabulary (nothing fires) plus `?g{n}` names for
//! the first pass's existentials (parsed as ordinary variables, renamed by
//! nothing, re-rendered identically).

use sparql_rewrite_core::{
    parse_bgp, parse_query_into, render_query_into, AlignmentStore, IndexedRewriter, Interner,
    ParseScratch, QueryRef, RewriteScratch, Rewriter,
};

mod common;
use common::{random_group_query_text, Rng};

/// Idempotent rule set over the shared generator's vocabulary
/// (`http://ex/p0..11`, `http://ex/e0..19`): targets live under
/// `http://out/`, which no rule matches.
fn idempotent_rules(it: &mut Interner) -> AlignmentStore {
    let mut store = AlignmentStore::new();
    for i in 0..12 {
        let lhs = parse_bgp(&format!("?s <http://ex/p{i}> ?o"), it)
            .unwrap()
            .patterns[0];
        let rhs = match i % 3 {
            // 1:1 rename.
            0 => {
                parse_bgp(&format!("?s <http://out/p{i}> ?o"), it)
                    .unwrap()
                    .patterns
            }
            // 1:2 chain introducing an existential.
            1 => {
                parse_bgp(
                    &format!("?s <http://out/p{i}h> ?m . ?m <http://out/p{i}t> ?o"),
                    it,
                )
                .unwrap()
                .patterns
            }
            // Leave every third predicate unmapped... except multi-template
            // below.
            _ => continue,
        };
        store.add_predicate(lhs, rhs).unwrap();
        if i % 4 == 0 {
            // Second template on the same predicate: rewrites expand into a
            // two-branch UNION.
            let alt = parse_bgp(&format!("?s <http://out/alt{i}> ?o"), it)
                .unwrap()
                .patterns;
            store.add_predicate(lhs, alt).unwrap();
        }
    }
    for e in (0..20).step_by(2) {
        let from = parse_bgp(&format!("?x <http://ex/e{e}> ?y"), it)
            .unwrap()
            .patterns[0]
            .p;
        let to = parse_bgp(&format!("?x <http://out/e{e}> ?y"), it)
            .unwrap()
            .patterns[0]
            .p;
        store.add_entity(from, to).unwrap();
    }
    store
}

struct Pipeline {
    interner: Interner,
    parse: ParseScratch,
    rewrite: RewriteScratch,
    fresh_base: String,
    out: String,
}

impl Pipeline {
    fn serve<R: Rewriter>(&mut self, rewriter: &R, text: &str) -> &str {
        parse_query_into(text, &mut self.interner, &mut self.parse).expect("pipeline input parses");
        rewriter.rewrite_ref_into(self.parse.query_ref(), &mut self.rewrite);
        render_query_into(
            QueryRef {
                select: self.rewrite.select(),
                pattern: self.rewrite.pattern(),
            },
            &self.interner,
            &mut self.fresh_base,
            &mut self.out,
        );
        &self.out
    }
}

#[test]
fn pipeline_is_a_fixpoint_for_idempotent_rules() {
    let mut interner = Interner::new();
    let mut store = idempotent_rules(&mut interner);
    assert!(store.build_dense_index(interner.symbol_bound()));
    let rewriter = IndexedRewriter::new(&store);
    let mut pipe = Pipeline {
        interner,
        parse: ParseScratch::new(),
        rewrite: RewriteScratch::new(),
        fresh_base: String::new(),
        out: String::new(),
    };
    for seed in 1..=40u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let text = random_group_query_text(&mut rng);
        let once = pipe.serve(&rewriter, &text).to_string();
        let twice = pipe.serve(&rewriter, &once).to_string();
        assert_eq!(
            once, twice,
            "seed {seed}: pipeline must be a fixpoint\n--- input ---\n{text}"
        );
        // And the fixpoint is stable: a third pass changes nothing either.
        let thrice = pipe.serve(&rewriter, &twice).to_string();
        assert_eq!(twice, thrice, "seed {seed}");
    }
}

#[test]
fn pipeline_matches_owned_type_path() {
    // The scratch pipeline and the allocating convenience path
    // (parse_query → rewrite_query → display) must produce identical text.
    let mut interner = Interner::new();
    let mut store = idempotent_rules(&mut interner);
    assert!(store.build_dense_index(interner.symbol_bound()));
    let rewriter = IndexedRewriter::new(&store);
    let mut pipe = Pipeline {
        interner: interner.clone(),
        parse: ParseScratch::new(),
        rewrite: RewriteScratch::new(),
        fresh_base: String::new(),
        out: String::new(),
    };
    for seed in 50..=70u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let text = random_group_query_text(&mut rng);
        let via_scratch = pipe.serve(&rewriter, &text).to_string();
        let parsed = sparql_rewrite_core::parse_query(&text, &mut interner).unwrap();
        let via_owned = rewriter
            .rewrite_query(&parsed)
            .display(&interner)
            .to_string();
        assert_eq!(via_scratch, via_owned, "seed {seed}\n{text}");
    }
}
