//! Ontology alignments and the hash-indexed alignment store.
//!
//! Following Correndo et al. (EDBT 2010), an alignment rule is either an
//! **entity alignment** `e1 ≡ e2` (rewrite every occurrence of `e1` to `e2`)
//! or a **predicate alignment** mapping a triple-pattern template to a
//! graph-pattern template, e.g.
//!
//! ```text
//! ?x src:authorOf ?y   ⇒   ?y tgt:author ?x
//! ?x src:name ?n       ⇒   ?x tgt:firstName ?f . ?x tgt:lastName ?l
//! ```
//!
//! The hot path is "for each query triple pattern, find the rules that could
//! apply", so the store keeps two hash indexes over the rule list:
//! entity rules keyed by the raw source term, predicate rules keyed by the
//! template's predicate symbol. Lookup is O(1) per triple pattern; the
//! [`crate::rewriter::LinearRewriter`] ignores the indexes and scans the
//! rule list instead, as the benchmark baseline.

use crate::fxhash::FxHashMap;
use crate::pattern::TriplePattern;
use crate::smallvec::SmallVec;
use crate::term::{Symbol, Term};

/// One alignment rule. Stored in a flat `Vec`; rule ids are indices into it,
/// and "first matching rule in id order wins" is the tie-break both
/// rewriters implement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `from ≡ to`: substitute `to` wherever `from` occurs (subject,
    /// predicate, or object position).
    Entity { from: Term, to: Term },
    /// Template rewrite: a query pattern that matches `lhs` is replaced by
    /// `rhs` with the lhs variable bindings applied. Variables occurring in
    /// `rhs` but not in `lhs` are existential and get fresh names at
    /// application time. The converse — an lhs variable unused in `rhs` —
    /// is deliberately legal: the paper's alignments may be lossy (the
    /// target ontology cannot always express every source binding), and the
    /// rule author owns that trade-off.
    Predicate {
        lhs: TriplePattern,
        rhs: Vec<TriplePattern>,
    },
}

/// Error adding a rule to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// Predicate templates must have a concrete (non-variable) predicate —
    /// it is the index key and the paper's alignments are per-predicate.
    VariablePredicate,
    /// Entity alignments relate concrete terms; a variable cannot be ≡ to
    /// anything.
    VariableEntity,
    /// Empty right-hand side would silently delete query patterns.
    EmptyTemplate,
    /// Rule templates must not contain rewriter-minted
    /// [`TermKind::Fresh`](crate::term::TermKind::Fresh) terms — their
    /// counters are meaningful only within one rewrite call, so a rule
    /// carrying one could capture the engine's own existentials.
    FreshTerm,
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::VariablePredicate => {
                f.write_str("predicate alignment template must have a concrete predicate")
            }
            AlignError::VariableEntity => {
                f.write_str("entity alignment endpoints must be concrete terms")
            }
            AlignError::EmptyTemplate => {
                f.write_str("predicate alignment right-hand side must be non-empty")
            }
            AlignError::FreshTerm => {
                f.write_str("alignment rules must not contain fresh (rewriter-minted) terms")
            }
        }
    }
}

impl std::error::Error for AlignError {}

/// Rule set plus hash indexes for O(1) per-pattern candidate lookup.
#[derive(Default, Debug)]
pub struct AlignmentStore {
    rules: Vec<Rule>,
    /// Raw packed source term → id of the *first* entity rule for it.
    /// Later duplicates are kept in `rules` (the linear scan also takes the
    /// first match) but never win.
    entity_idx: FxHashMap<u32, u32>,
    /// Template predicate symbol → ids of predicate rules with that
    /// predicate, in insertion (= id) order.
    predicate_idx: FxHashMap<Symbol, SmallVec<u32, 4>>,
}

impl AlignmentStore {
    pub fn new() -> AlignmentStore {
        AlignmentStore::default()
    }

    /// Register `from ≡ to`. Returns the rule id.
    pub fn add_entity(&mut self, from: Term, to: Term) -> Result<u32, AlignError> {
        if from.is_var() || to.is_var() {
            return Err(AlignError::VariableEntity);
        }
        if from.is_fresh() || to.is_fresh() {
            return Err(AlignError::FreshTerm);
        }
        let id = self.next_id();
        self.rules.push(Rule::Entity { from, to });
        self.entity_idx.entry(from.raw()).or_insert(id);
        Ok(id)
    }

    /// Register a template rewrite `lhs ⇒ rhs`. Returns the rule id.
    pub fn add_predicate(
        &mut self,
        lhs: TriplePattern,
        rhs: Vec<TriplePattern>,
    ) -> Result<u32, AlignError> {
        if lhs.p.is_var() {
            return Err(AlignError::VariablePredicate);
        }
        if rhs.is_empty() {
            return Err(AlignError::EmptyTemplate);
        }
        if lhs
            .terms()
            .into_iter()
            .chain(rhs.iter().flat_map(|tp| tp.terms()))
            .any(Term::is_fresh)
        {
            return Err(AlignError::FreshTerm);
        }
        let id = self.next_id();
        self.predicate_idx
            .entry(lhs.p.symbol())
            .or_default()
            .push(id);
        self.rules.push(Rule::Predicate { lhs, rhs });
        Ok(id)
    }

    fn next_id(&self) -> u32 {
        u32::try_from(self.rules.len()).expect("more than u32::MAX rules")
    }

    #[inline]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Indexed entity lookup: the replacement for `t`, if any entity rule
    /// rewrites it.
    #[inline]
    pub fn entity_target(&self, t: Term) -> Option<Term> {
        let &id = self.entity_idx.get(&t.raw())?;
        match &self.rules[id as usize] {
            Rule::Entity { to, .. } => Some(*to),
            _ => unreachable!("entity index points at non-entity rule"),
        }
    }

    /// Indexed predicate-rule candidates for a pattern whose predicate is
    /// `p`, in rule-id order. Variables never match (templates must have
    /// concrete predicates, so a variable predicate in the query can only be
    /// entity-rewritten, never template-expanded).
    #[inline]
    pub fn predicate_candidates(&self, p: Term) -> &[u32] {
        // A fresh predicate carries a counter, not a symbol — it must never
        // alias a real predicate symbol in the index.
        if p.is_var() || p.is_fresh() {
            return &[];
        }
        self.predicate_idx
            .get(&p.symbol())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn iri(i: &mut Interner, s: &str) -> Term {
        Term::iri(i.intern(s))
    }

    fn var(i: &mut Interner, s: &str) -> Term {
        Term::var(i.intern(s))
    }

    #[test]
    fn entity_index_first_rule_wins() {
        let mut it = Interner::new();
        let a = iri(&mut it, "http://a");
        let b = iri(&mut it, "http://b");
        let c = iri(&mut it, "http://c");
        let mut store = AlignmentStore::new();
        store.add_entity(a, b).unwrap();
        store.add_entity(a, c).unwrap();
        assert_eq!(store.entity_target(a), Some(b));
        assert_eq!(store.entity_target(b), None);
    }

    #[test]
    fn rejects_malformed_rules() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let p = iri(&mut it, "http://p");
        let mut store = AlignmentStore::new();
        assert_eq!(store.add_entity(v, p), Err(AlignError::VariableEntity));
        let lhs_varpred = TriplePattern::new(v, v, v);
        assert_eq!(
            store.add_predicate(lhs_varpred, vec![lhs_varpred]),
            Err(AlignError::VariablePredicate)
        );
        let lhs = TriplePattern::new(v, p, v);
        assert_eq!(
            store.add_predicate(lhs, vec![]),
            Err(AlignError::EmptyTemplate)
        );
    }

    #[test]
    fn predicate_candidates_in_id_order() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let p = iri(&mut it, "http://p");
        let q = iri(&mut it, "http://q");
        let mut store = AlignmentStore::new();
        let lhs = TriplePattern::new(v, p, v);
        let id0 = store.add_predicate(lhs, vec![lhs]).unwrap();
        store.add_entity(p, q).unwrap();
        let id2 = store.add_predicate(lhs, vec![lhs]).unwrap();
        assert_eq!(store.predicate_candidates(p), &[id0, id2]);
        assert_eq!(store.predicate_candidates(q), &[] as &[u32]);
        assert_eq!(store.predicate_candidates(v), &[] as &[u32]);
    }
}
