//! Ontology alignments and the alignment store with dense symbol-id
//! rule dispatch.
//!
//! Following Correndo et al. (EDBT 2010), an alignment rule is either an
//! **entity alignment** `e1 ≡ e2` (rewrite every occurrence of `e1` to `e2`)
//! or a **predicate alignment** mapping a triple-pattern template to a
//! graph-pattern template, e.g.
//!
//! ```text
//! ?x src:authorOf ?y   ⇒   ?y tgt:author ?x
//! ?x src:name ?n       ⇒   ?x tgt:firstName ?f . ?x tgt:lastName ?l
//! ```
//!
//! The hot path is "for each query triple pattern, find the rules that could
//! apply". During the build phase the store maintains two hash indexes over
//! the rule list: entity rules keyed by the raw source term, predicate rules
//! keyed by the template's predicate symbol. At freeze time,
//! [`AlignmentStore::build_dense_index`] converts both into **dense
//! direct-indexed tables** keyed by interner symbol id — the
//! dictionary-encoded dispatch columnar SPARQL engines use: interner symbols
//! are dense `u32`s, so "hash the key, probe, compare" collapses into a
//! single bounds-checked array load. Entity targets and predicate posting-list
//! offsets share one merged per-symbol dispatch record (entity targets in
//! the concrete-kind lanes, CSR offsets in the otherwise-unused variable
//! lane), and rule templates are pooled flat by rule id so applying a match
//! never chases the rule list. When the symbol space is too sparse for dense
//! tables to pay for themselves the store keeps the hash maps as the
//! fallback path — lookups are correct either way, just slower.
//!
//! The [`crate::rewriter::LinearRewriter`] ignores every index and scans the
//! rule list instead, as the benchmark baseline.

use crate::fxhash::FxHashMap;
use crate::pattern::{ExprNode, TriplePattern};
use crate::smallvec::SmallVec;
use crate::term::{Symbol, Term, TermKind, SYM_MASK, TAG_SHIFT};

/// Vacant guard slot in a [`RuleTemplate`] (and in the dense per-rule guard
/// pool): "this rule has no firing condition".
pub const NO_EXPR: u32 = u32::MAX;

/// The right-hand side of a complex correspondence ([`Rule::Complex`]): a
/// guarded group-pattern template in the same flattened index-linked form
/// [`crate::pattern::GroupPattern`] uses.
///
/// * `triples` — the body. May be a chain linked by existential variables:
///   variables (or blank nodes) not bound by the rule's lhs get fresh names
///   at application time, exactly like the flat [`Rule::Predicate`] rhs.
/// * `exprs` — one self-contained expression pool shared by the guard and
///   the emitted filters. Child indices are **template-relative** (0-based
///   into `exprs`) and must be topologically ordered — every node's
///   children sit strictly before it — so the pool survives CSR slicing in
///   the dense index and copies into a query's expression buffer with a
///   single base offset.
/// * `guard` — root (into `exprs`) of the optional firing condition, or
///   [`NO_EXPR`]. The rewriter evaluates the guard against the lhs bindings
///   of each match: statically false → the rule does not fire for that
///   pattern; statically true → it fires with no residue; undecidable
///   (e.g. a comparison over a variable the query leaves open) → it fires
///   and the instantiated guard is emitted as a `FILTER` for the endpoint
///   to decide.
/// * `filters` — roots (into `exprs`) of constraints always emitted
///   alongside the body. Value transforms live here as FILTER-equality
///   constraints relating an existential to a computed/constant term: the
///   AST deliberately has no BIND node, so computed terms lower to the
///   FILTER syntax that already round-trips through render → parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleTemplate {
    pub triples: Vec<TriplePattern>,
    pub exprs: Vec<ExprNode>,
    pub guard: u32,
    pub filters: Vec<u32>,
}

impl Default for RuleTemplate {
    fn default() -> RuleTemplate {
        RuleTemplate {
            triples: Vec::new(),
            exprs: Vec::new(),
            guard: NO_EXPR,
            filters: Vec::new(),
        }
    }
}

impl RuleTemplate {
    /// A template that is just a triple body — semantically identical to a
    /// flat [`Rule::Predicate`] rhs, useful as a starting point to hang a
    /// guard or filters on.
    pub fn from_triples(triples: Vec<TriplePattern>) -> RuleTemplate {
        RuleTemplate {
            triples,
            ..RuleTemplate::default()
        }
    }

    /// Append an expression node to the template pool; returns its
    /// (template-relative) index for use as a child, guard, or filter root.
    pub fn push_expr(&mut self, node: ExprNode) -> u32 {
        let idx = self.exprs.len() as u32;
        self.exprs.push(node);
        idx
    }

    /// Set the firing condition to the expression rooted at `root`.
    pub fn set_guard(&mut self, root: u32) {
        self.guard = root;
    }

    /// Emit the expression rooted at `root` as a FILTER constraint whenever
    /// the rule fires.
    pub fn push_filter(&mut self, root: u32) {
        self.filters.push(root);
    }
}

/// One alignment rule. Stored in a flat `Vec`; rule ids are indices into it,
/// and "first matching rule in id order wins" is the tie-break both
/// rewriters implement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `from ≡ to`: substitute `to` wherever `from` occurs (subject,
    /// predicate, or object position).
    Entity { from: Term, to: Term },
    /// Template rewrite: a query pattern that matches `lhs` is replaced by
    /// `rhs` with the lhs variable bindings applied. Variables occurring in
    /// `rhs` but not in `lhs` are existential and get fresh names at
    /// application time. The converse — an lhs variable unused in `rhs` —
    /// is deliberately legal: the paper's alignments may be lossy (the
    /// target ontology cannot always express every source binding), and the
    /// rule author owns that trade-off.
    Predicate {
        lhs: TriplePattern,
        rhs: Vec<TriplePattern>,
    },
    /// Complex correspondence: like [`Rule::Predicate`] but the replacement
    /// is a guarded group-pattern template — triple chains linked by
    /// existentials, emitted FILTER constraints / value transforms, and an
    /// optional firing condition. See [`RuleTemplate`].
    Complex {
        lhs: TriplePattern,
        tmpl: RuleTemplate,
    },
}

/// Error adding a rule to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// Predicate templates must have a concrete (non-variable) predicate —
    /// it is the index key and the paper's alignments are per-predicate.
    VariablePredicate,
    /// Entity alignments relate concrete terms; a variable cannot be ≡ to
    /// anything.
    VariableEntity,
    /// Empty right-hand side would silently delete query patterns.
    EmptyTemplate,
    /// Rule templates must not contain rewriter-minted
    /// [`TermKind::Fresh`](crate::term::TermKind::Fresh) terms — their
    /// counters are meaningful only within one rewrite call, so a rule
    /// carrying one could capture the engine's own existentials.
    FreshTerm,
    /// A template expression pool is not self-contained: a child index
    /// points at or past its own node (the pool must be topologically
    /// ordered), or a guard/filter root is out of bounds.
    MalformedTemplateExpr,
    /// A guard expression references a variable the rule's lhs does not
    /// bind. Guards are decided against lhs bindings alone, so an unbound
    /// variable could never be evaluated — nor even named consistently in
    /// the residual FILTER.
    GuardVariableUnbound,
    /// A template filter references a variable that is neither lhs-bound
    /// nor existential (occurring in the template's triples): it would
    /// dangle in the rewritten query, constraining nothing.
    TemplateVariableUnbound,
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::VariablePredicate => {
                f.write_str("predicate alignment template must have a concrete predicate")
            }
            AlignError::VariableEntity => {
                f.write_str("entity alignment endpoints must be concrete terms")
            }
            AlignError::EmptyTemplate => {
                f.write_str("predicate alignment right-hand side must be non-empty")
            }
            AlignError::FreshTerm => {
                f.write_str("alignment rules must not contain fresh (rewriter-minted) terms")
            }
            AlignError::MalformedTemplateExpr => f.write_str(
                "template expression pool must be topologically ordered and self-contained",
            ),
            AlignError::GuardVariableUnbound => {
                f.write_str("guard expression references a variable not bound by the rule lhs")
            }
            AlignError::TemplateVariableUnbound => f.write_str(
                "template filter references a variable that is neither lhs-bound nor existential",
            ),
        }
    }
}

impl std::error::Error for AlignError {}

/// Dense direct-indexed dispatch tables, built at freeze time from the hash
/// indexes. Both tables are sized by the interner's
/// [`symbol_bound`](crate::interner::Interner::symbol_bound), so a lookup is
/// a bounds-checked array load with no hashing and no key comparison.
#[derive(Debug)]
struct DenseIndex {
    /// Symbols this index was sized for. Terms carrying a later symbol (a
    /// worker-local post-freeze intern) fall outside every table and
    /// correctly resolve to "no rule".
    symbol_bound: u32,
    /// The merged dispatch table: one 16-byte record of four `u32` lanes per
    /// symbol, `table[(symbol << 2) | lane]`, with `symbol_bound + 1`
    /// records.
    ///
    /// * Lanes 0..=2 (the concrete term tags — IRI, literal, blank) hold
    ///   the raw replacement term of the first entity rule for that source
    ///   term, or [`NO_ENTITY`]. The lane is selected by the term's tag
    ///   directly, so the slot is shift+or (no multiply), and one unsigned
    ///   compare on the raw term excludes variables and fresh terms before
    ///   any memory is touched.
    /// * Lane 3 — the variable tag, which can never be an entity source —
    ///   holds the CSR offset of the symbol's predicate posting list: the
    ///   candidates for predicate symbol `s` are
    ///   `pred_ids[table[(s << 2) | 3] .. table[((s + 1) << 2) | 3]]`, in
    ///   rule-id order (hence the one extra record at the end).
    ///
    /// Packing the CSR offsets into the otherwise-wasted variable lane puts
    /// a predicate's entity target and both posting-list offsets on the
    /// same (or at worst the adjacent) cache line, so the per-pattern
    /// predicate dispatch costs one line instead of three.
    table: Box<[u32]>,
    /// CSR payload: posting lists of predicate-rule ids, indexed by lane 3
    /// of `table`.
    pred_ids: Box<[u32]>,
    /// Flat template pools indexed by **rule id**, so applying a matched
    /// rule never touches the `Vec<Rule>` enum (48-byte entries behind a
    /// pointer-chased `Vec<TriplePattern>` each): `tmpl_lhs[id]` is the
    /// template's lhs, its rhs is
    /// `rhs_pool[tmpl_rhs_off[id] .. tmpl_rhs_off[id + 1]]`. Entity-rule
    /// ids hold a placeholder lhs and an empty rhs range; candidate lookup
    /// only ever yields predicate ids.
    tmpl_lhs: Box<[TriplePattern]>,
    tmpl_rhs_off: Box<[u32]>,
    rhs_pool: Box<[TriplePattern]>,
    /// Complex-template pools in the same by-rule-id CSR layout as
    /// `rhs_pool`: `tmpl_guard[id]` is the rule's guard root ([`NO_EXPR`]
    /// when absent or for non-complex rules), its expression pool is
    /// `expr_pool[tmpl_expr_off[id] .. tmpl_expr_off[id + 1]]`, its filter
    /// roots `filter_pool[tmpl_filter_off[id] .. tmpl_filter_off[id + 1]]`.
    /// Expression child indices and the guard/filter roots are
    /// template-relative, so the CSR slice reproduces each rule's
    /// self-contained pool exactly — no index fix-up on the hot path. Flat
    /// predicate rules get empty ranges, keeping their dispatch untouched.
    tmpl_guard: Box<[u32]>,
    tmpl_expr_off: Box<[u32]>,
    expr_pool: Box<[ExprNode]>,
    tmpl_filter_off: Box<[u32]>,
    filter_pool: Box<[u32]>,
}

/// Borrowed view of one predicate/complex rule's templates, as returned by
/// [`AlignmentStore::template`]. For flat [`Rule::Predicate`] rules the
/// expression fields are empty and `guard` is [`NO_EXPR`], so a single code
/// path in the rewriter serves both rule classes.
#[derive(Clone, Copy, Debug)]
pub struct TemplateRef<'a> {
    pub lhs: TriplePattern,
    pub triples: &'a [TriplePattern],
    /// Template-relative expression pool shared by `guard` and `filters`.
    pub exprs: &'a [ExprNode],
    /// Root into `exprs`, or [`NO_EXPR`] for an unconditional rule.
    pub guard: u32,
    /// Roots into `exprs` of the always-emitted FILTER constraints.
    pub filters: &'a [u32],
}

/// Vacant entity lane in [`DenseIndex::table`]. `u32::MAX` decodes as a
/// [`crate::term::TermKind::Fresh`] term, which
/// [`AlignmentStore::add_entity`] rejects, so no rule target can ever
/// collide with the sentinel.
const NO_ENTITY: u32 = u32::MAX;

/// Number of concrete term kinds (IRI, literal, blank) the dense entity
/// table maps; their tags are `0..KINDS`.
const KINDS: usize = 3;

/// Raw values at or above this are non-concrete: variables (tag 3) and
/// fresh terms (tags 4..=7). Neither can be an entity-rule source or a
/// template-predicate key, so one unsigned compare rejects both without
/// touching memory.
const CONCRETE_TAG_CEIL: u32 = (KINDS as u32) << TAG_SHIFT;

/// Walk the expression subtree rooted at `root` (build-time only — the
/// scratch stack allocates) and check `ok` on every [`ExprNode::Term`]
/// leaf. The pool is already validated topological, so indices are in
/// bounds.
fn leaves_satisfy(exprs: &[ExprNode], root: u32, mut ok: impl FnMut(Term) -> bool) -> bool {
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        match exprs[i as usize] {
            ExprNode::Term(t) => {
                if !ok(t) {
                    return false;
                }
            }
            ExprNode::Cmp(_, l, r) | ExprNode::And(l, r) | ExprNode::Or(l, r) => {
                stack.push(l);
                stack.push(r);
            }
            ExprNode::Not(c) => stack.push(c),
        }
    }
    true
}

/// Rule set plus candidate-lookup indexes.
///
/// Build phase: hash indexes (FxHash) are maintained incrementally by
/// `add_*`. Freeze: [`AlignmentStore::build_dense_index`] lowers them into
/// direct-indexed tables keyed by interner symbol id. Lookups transparently
/// prefer the dense tables and fall back to the hash maps when they are
/// absent (never built, declined as too sparse, or invalidated by a
/// post-freeze `add_*`).
#[derive(Default, Debug)]
pub struct AlignmentStore {
    rules: Vec<Rule>,
    /// Raw packed source term → id of the *first* entity rule for it.
    /// Later duplicates are kept in `rules` (the linear scan also takes the
    /// first match) but never win.
    entity_idx: FxHashMap<u32, u32>,
    /// Template predicate symbol → ids of predicate rules with that
    /// predicate, in insertion (= id) order.
    predicate_idx: FxHashMap<Symbol, SmallVec<u32, 4>>,
    /// Frozen dense dispatch tables; `None` during the build phase and on
    /// the sparse fallback path.
    dense: Option<DenseIndex>,
    /// Monotonic rule-set revision: bumped by every `add_*`, never by
    /// `build_dense_index` (freezing changes the lookup machinery, not the
    /// rules). This is the generation tag the rewrite-result cache
    /// ([`crate::cache::RewriteCache`]) stamps entries with — a post-freeze
    /// rule load bumps it, so every cached rewrite produced under the old
    /// rule set lazily misses, mirroring how the same `add_*` invalidates
    /// the dense tables.
    revision: u64,
}

impl AlignmentStore {
    pub fn new() -> AlignmentStore {
        AlignmentStore::default()
    }

    /// Register `from ≡ to`. Returns the rule id.
    pub fn add_entity(&mut self, from: Term, to: Term) -> Result<u32, AlignError> {
        if from.is_var() || to.is_var() {
            return Err(AlignError::VariableEntity);
        }
        if from.is_fresh() || to.is_fresh() {
            return Err(AlignError::FreshTerm);
        }
        let id = self.next_id();
        self.rules.push(Rule::Entity { from, to });
        self.entity_idx.entry(from.raw()).or_insert(id);
        // The dense tables are a frozen snapshot; a post-freeze rule load
        // invalidates them and lookups revert to the hash fallback until
        // the caller re-freezes. The revision bump invalidates any
        // rewrite-result cache keyed to the old rule set the same way.
        self.dense = None;
        self.revision += 1;
        Ok(id)
    }

    /// Register a template rewrite `lhs ⇒ rhs`. Returns the rule id.
    pub fn add_predicate(
        &mut self,
        lhs: TriplePattern,
        rhs: Vec<TriplePattern>,
    ) -> Result<u32, AlignError> {
        if lhs.p.is_var() {
            return Err(AlignError::VariablePredicate);
        }
        if rhs.is_empty() {
            return Err(AlignError::EmptyTemplate);
        }
        if lhs
            .terms()
            .into_iter()
            .chain(rhs.iter().flat_map(|tp| tp.terms()))
            .any(Term::is_fresh)
        {
            return Err(AlignError::FreshTerm);
        }
        let id = self.next_id();
        self.predicate_idx
            .entry(lhs.p.symbol())
            .or_default()
            .push(id);
        self.rules.push(Rule::Predicate { lhs, rhs });
        self.dense = None;
        self.revision += 1;
        Ok(id)
    }

    /// Register a complex correspondence `lhs ⇒ tmpl` (guarded
    /// group-pattern template). Returns the rule id.
    ///
    /// Beyond the flat-rule checks, validation enforces the template's
    /// internal scoping: the expression pool must be topologically ordered
    /// with in-bounds guard/filter roots
    /// ([`AlignError::MalformedTemplateExpr`]), every variable a guard
    /// names must be lhs-bound ([`AlignError::GuardVariableUnbound`] —
    /// guards are decided from lhs bindings alone), and every variable a
    /// filter names must be lhs-bound or existential, i.e. occur in the
    /// template's triples ([`AlignError::TemplateVariableUnbound`]). That
    /// last rule is what lets instantiation run allocation-free: by the
    /// time filters are copied, every leaf already has a binding or a fresh
    /// rename recorded by the body.
    pub fn add_complex_predicate(
        &mut self,
        lhs: TriplePattern,
        tmpl: RuleTemplate,
    ) -> Result<u32, AlignError> {
        if lhs.p.is_var() {
            return Err(AlignError::VariablePredicate);
        }
        if tmpl.triples.is_empty() {
            return Err(AlignError::EmptyTemplate);
        }
        let expr_leaves = tmpl.exprs.iter().filter_map(|e| match e {
            ExprNode::Term(t) => Some(*t),
            _ => None,
        });
        if lhs
            .terms()
            .into_iter()
            .chain(tmpl.triples.iter().flat_map(|tp| tp.terms()))
            .chain(expr_leaves)
            .any(Term::is_fresh)
        {
            return Err(AlignError::FreshTerm);
        }
        // Pool topology: children strictly before parents, roots in bounds.
        let n = tmpl.exprs.len() as u32;
        for (i, e) in tmpl.exprs.iter().enumerate() {
            let i = i as u32;
            let ordered = match *e {
                ExprNode::Term(_) => true,
                ExprNode::Cmp(_, l, r) | ExprNode::And(l, r) | ExprNode::Or(l, r) => l < i && r < i,
                ExprNode::Not(c) => c < i,
            };
            if !ordered {
                return Err(AlignError::MalformedTemplateExpr);
            }
        }
        if (tmpl.guard != NO_EXPR && tmpl.guard >= n) || tmpl.filters.iter().any(|&r| r >= n) {
            return Err(AlignError::MalformedTemplateExpr);
        }
        // Variable scoping. Blank nodes follow the same existential
        // convention as variables (the rhs rename path treats them alike).
        let lhs_bound = |t: Term| t.is_var() && (t == lhs.s || t == lhs.o);
        let existential = |t: Term| {
            tmpl.triples
                .iter()
                .any(|tp| tp.s == t || tp.p == t || tp.o == t)
        };
        let needs_binding = |t: Term| t.is_var() || t.kind() == TermKind::Blank;
        if tmpl.guard != NO_EXPR
            && !leaves_satisfy(&tmpl.exprs, tmpl.guard, |t| {
                !needs_binding(t) || lhs_bound(t)
            })
        {
            return Err(AlignError::GuardVariableUnbound);
        }
        for &root in &tmpl.filters {
            if !leaves_satisfy(&tmpl.exprs, root, |t| {
                !needs_binding(t) || lhs_bound(t) || existential(t)
            }) {
                return Err(AlignError::TemplateVariableUnbound);
            }
        }
        let id = self.next_id();
        self.predicate_idx
            .entry(lhs.p.symbol())
            .or_default()
            .push(id);
        self.rules.push(Rule::Complex { lhs, tmpl });
        self.dense = None;
        self.revision += 1;
        Ok(id)
    }

    /// Freeze the candidate indexes into dense direct-indexed tables sized
    /// by `symbol_bound` (the interner's
    /// [`symbol_bound`](crate::interner::Interner::symbol_bound) at freeze
    /// time). Returns `true` when the dense tables were built, `false` when
    /// the symbol space is too sparse relative to the rule count for a
    /// direct-indexed table to pay for its memory, in which case the hash
    /// indexes stay in service as the fallback path (lookups remain
    /// correct, just hashed).
    ///
    /// Loading further rules after this call invalidates the dense tables;
    /// call `build_dense_index` again once loading is done.
    pub fn build_dense_index(&mut self, symbol_bound: usize) -> bool {
        self.dense = None;
        // Density heuristic: the tables cost ~16 bytes per symbol. Build
        // them when the symbol space is small in absolute terms or within a
        // constant factor of the rule count; a near-empty rule set over a
        // huge dictionary keeps the hash fallback.
        let worthwhile =
            symbol_bound <= (1 << 16) || symbol_bound <= self.rules.len().saturating_mul(64);
        if !worthwhile || symbol_bound > u32::MAX as usize {
            return false;
        }

        // Every rule symbol must fall inside the bound, or dense lookups
        // would silently diverge from the hash index.
        assert!(
            self.predicate_idx.keys().all(|s| s.index() < symbol_bound)
                && self
                    .entity_idx
                    .keys()
                    .all(|&raw| (Term::from_raw(raw).symbol().index()) < symbol_bound),
            "build_dense_index: symbol_bound smaller than a rule symbol \
             (freeze the interner after loading rules, not before)"
        );

        // One 4-lane record per symbol plus the end-of-CSR sentinel record.
        let mut table = vec![NO_ENTITY; 4 * (symbol_bound + 1)].into_boxed_slice();
        for (&raw, &id) in &self.entity_idx {
            let from = Term::from_raw(raw);
            debug_assert!(
                (from.kind() as usize) < KINDS,
                "entity sources are concrete"
            );
            let slot = (from.symbol().index() << 2) | from.kind() as usize;
            let Rule::Entity { to, .. } = self.rules[id as usize] else {
                unreachable!("entity index points at non-entity rule");
            };
            table[slot] = to.raw();
        }

        // CSR build into lane 3: count per symbol, prefix-sum, then fill in
        // rule-id order so each posting list preserves the hash index's
        // ordering.
        let lane3 = |sym: usize| (sym << 2) | 3;
        // Scatter per-symbol counts into lane 3 (one pass over the rule
        // index, not one hash probe per dictionary symbol), then prefix-sum
        // in place.
        for sym in 0..=symbol_bound {
            table[lane3(sym)] = 0;
        }
        for (sym, ids) in &self.predicate_idx {
            table[lane3(sym.index() + 1)] = ids.len() as u32;
        }
        for sym in 1..=symbol_bound {
            table[lane3(sym)] += table[lane3(sym - 1)];
        }
        let total = table[lane3(symbol_bound)] as usize;
        let mut pred_ids = vec![0u32; total].into_boxed_slice();
        for (sym, ids) in &self.predicate_idx {
            let start = table[lane3(sym.index())] as usize;
            pred_ids[start..start + ids.len()].copy_from_slice(ids.as_slice());
        }

        // Flat template pools by rule id. Complex rules add their guard,
        // expression, and filter-root pools in the same CSR shape; flat and
        // entity rules contribute empty ranges, so the extra pools cost
        // nothing on their dispatch path.
        let placeholder = TriplePattern::new(Term::fresh(0), Term::fresh(0), Term::fresh(0));
        let mut tmpl_lhs = vec![placeholder; self.rules.len()].into_boxed_slice();
        let mut tmpl_rhs_off = vec![0u32; self.rules.len() + 1];
        let mut rhs_pool = Vec::new();
        let mut tmpl_guard = vec![NO_EXPR; self.rules.len()].into_boxed_slice();
        let mut tmpl_expr_off = vec![0u32; self.rules.len() + 1];
        let mut expr_pool = Vec::new();
        let mut tmpl_filter_off = vec![0u32; self.rules.len() + 1];
        let mut filter_pool = Vec::new();
        for (id, rule) in self.rules.iter().enumerate() {
            match rule {
                Rule::Predicate { lhs, rhs } => {
                    tmpl_lhs[id] = *lhs;
                    rhs_pool.extend_from_slice(rhs);
                }
                Rule::Complex { lhs, tmpl } => {
                    tmpl_lhs[id] = *lhs;
                    rhs_pool.extend_from_slice(&tmpl.triples);
                    tmpl_guard[id] = tmpl.guard;
                    expr_pool.extend_from_slice(&tmpl.exprs);
                    filter_pool.extend_from_slice(&tmpl.filters);
                }
                Rule::Entity { .. } => {}
            }
            tmpl_rhs_off[id + 1] = rhs_pool.len() as u32;
            tmpl_expr_off[id + 1] = expr_pool.len() as u32;
            tmpl_filter_off[id + 1] = filter_pool.len() as u32;
        }

        self.dense = Some(DenseIndex {
            symbol_bound: symbol_bound as u32,
            table,
            pred_ids,
            tmpl_lhs,
            tmpl_rhs_off: tmpl_rhs_off.into_boxed_slice(),
            rhs_pool: rhs_pool.into_boxed_slice(),
            tmpl_guard,
            tmpl_expr_off: tmpl_expr_off.into_boxed_slice(),
            expr_pool: expr_pool.into_boxed_slice(),
            tmpl_filter_off: tmpl_filter_off.into_boxed_slice(),
            filter_pool: filter_pool.into_boxed_slice(),
        });
        true
    }

    /// The templates of predicate/complex rule `id` as a uniform
    /// [`TemplateRef`] (flat rules surface empty expression fields). Only
    /// meaningful for ids yielded by
    /// [`AlignmentStore::predicate_candidates`] (or an equivalent scan);
    /// on the dense path this reads the flat template pools and never
    /// touches the rule list.
    #[inline]
    pub fn template(&self, id: u32) -> TemplateRef<'_> {
        if let Some(dense) = &self.dense {
            let id = id as usize;
            return TemplateRef {
                lhs: dense.tmpl_lhs[id],
                triples: &dense.rhs_pool
                    [dense.tmpl_rhs_off[id] as usize..dense.tmpl_rhs_off[id + 1] as usize],
                exprs: &dense.expr_pool
                    [dense.tmpl_expr_off[id] as usize..dense.tmpl_expr_off[id + 1] as usize],
                guard: dense.tmpl_guard[id],
                filters: &dense.filter_pool
                    [dense.tmpl_filter_off[id] as usize..dense.tmpl_filter_off[id + 1] as usize],
            };
        }
        match &self.rules[id as usize] {
            Rule::Predicate { lhs, rhs } => TemplateRef {
                lhs: *lhs,
                triples: rhs,
                exprs: &[],
                guard: NO_EXPR,
                filters: &[],
            },
            Rule::Complex { lhs, tmpl } => TemplateRef {
                lhs: *lhs,
                triples: &tmpl.triples,
                exprs: &tmpl.exprs,
                guard: tmpl.guard,
                filters: &tmpl.filters,
            },
            Rule::Entity { .. } => unreachable!("template id points at a non-predicate rule"),
        }
    }

    /// Whether lookups currently run on the dense direct-indexed tables
    /// (vs. the hash fallback).
    pub fn has_dense_index(&self) -> bool {
        self.dense.is_some()
    }

    /// Monotonic rule-set revision, bumped by every successful `add_*`.
    ///
    /// Use it as the generation tag for a [`crate::cache::RewriteCache`]:
    /// stamp inserts with the revision the rewrite ran under and look up
    /// with the current one. Rewriting is deterministic per (query text,
    /// rule set), so equal revisions guarantee the cached text is still the
    /// correct rewrite — and a post-freeze `add_*` bumps the revision,
    /// making every stale entry miss without any eager scan, exactly like
    /// the dense-index invalidation above.
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    fn next_id(&self) -> u32 {
        u32::try_from(self.rules.len()).expect("more than u32::MAX rules")
    }

    #[inline]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Indexed entity lookup: the replacement for `t`, if any entity rule
    /// rewrites it. On the dense path this is a tag check plus one array
    /// load; variables and fresh terms short-circuit without touching
    /// memory, and a symbol minted after the freeze falls outside the table
    /// bounds (no rule can mention it).
    #[inline]
    pub fn entity_target(&self, t: Term) -> Option<Term> {
        if let Some(dense) = &self.dense {
            let raw = t.raw();
            // Variables and fresh terms can never be entity-rule sources:
            // one compare, no memory touched (this is the common case —
            // most subject/object positions are variables).
            if raw >= CONCRETE_TAG_CEIL {
                return None;
            }
            // slot = (symbol << 2) | tag, always an entity lane (tag ≤ 2).
            // A post-freeze symbol is rejected by the explicit bound check
            // (the sentinel record at the end means the slice check alone
            // is not tight enough).
            let sym = (raw & SYM_MASK) as usize;
            if sym >= dense.symbol_bound as usize {
                return None;
            }
            let to = dense.table[sym << 2 | (raw >> TAG_SHIFT) as usize];
            return if to != NO_ENTITY {
                Some(Term::from_raw(to))
            } else {
                None
            };
        }
        let &id = self.entity_idx.get(&t.raw())?;
        match &self.rules[id as usize] {
            Rule::Entity { to, .. } => Some(*to),
            _ => unreachable!("entity index points at non-entity rule"),
        }
    }

    /// Indexed predicate-rule candidates for a pattern whose predicate is
    /// `p`, in rule-id order. Variables never match (templates must have
    /// concrete predicates, so a variable predicate in the query can only be
    /// entity-rewritten, never template-expanded). On the dense path this is
    /// two adjacent offset loads and a slice.
    #[inline]
    pub fn predicate_candidates(&self, p: Term) -> &[u32] {
        // A variable predicate never matches a template (templates have
        // concrete predicates), and a fresh predicate carries a counter,
        // not a symbol — it must never alias a real predicate symbol in
        // the index. One compare covers both.
        if p.raw() >= CONCRETE_TAG_CEIL {
            return &[];
        }
        if let Some(dense) = &self.dense {
            let sym = p.symbol().index();
            if sym >= dense.symbol_bound as usize {
                return &[];
            }
            // CSR offsets live in lane 3 of the symbol's (and the next
            // symbol's) dispatch record — usually the same cache line the
            // entity lookup for this predicate just touched.
            let start = dense.table[sym << 2 | 3] as usize;
            let end = dense.table[(sym + 1) << 2 | 3] as usize;
            return &dense.pred_ids[start..end];
        }
        self.predicate_idx
            .get(&p.symbol())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn iri(i: &mut Interner, s: &str) -> Term {
        Term::iri(i.intern(s))
    }

    fn var(i: &mut Interner, s: &str) -> Term {
        Term::var(i.intern(s))
    }

    #[test]
    fn entity_index_first_rule_wins() {
        let mut it = Interner::new();
        let a = iri(&mut it, "http://a");
        let b = iri(&mut it, "http://b");
        let c = iri(&mut it, "http://c");
        let mut store = AlignmentStore::new();
        store.add_entity(a, b).unwrap();
        store.add_entity(a, c).unwrap();
        assert_eq!(store.entity_target(a), Some(b));
        assert_eq!(store.entity_target(b), None);
    }

    #[test]
    fn rejects_malformed_rules() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let p = iri(&mut it, "http://p");
        let mut store = AlignmentStore::new();
        assert_eq!(store.add_entity(v, p), Err(AlignError::VariableEntity));
        let lhs_varpred = TriplePattern::new(v, v, v);
        assert_eq!(
            store.add_predicate(lhs_varpred, vec![lhs_varpred]),
            Err(AlignError::VariablePredicate)
        );
        let lhs = TriplePattern::new(v, p, v);
        assert_eq!(
            store.add_predicate(lhs, vec![]),
            Err(AlignError::EmptyTemplate)
        );
    }

    #[test]
    fn complex_builder_validation() {
        use crate::pattern::CmpOp;

        let mut it = Interner::new();
        let x = var(&mut it, "x");
        let y = var(&mut it, "y");
        let z = var(&mut it, "z"); // bound nowhere
        let p = iri(&mut it, "http://p");
        let q = iri(&mut it, "http://q");
        let c = iri(&mut it, "http://c");
        let lhs = TriplePattern::new(x, p, y);
        let mut store = AlignmentStore::new();
        let eq = |t: &mut RuleTemplate, a: Term, b: Term| {
            let l = t.push_expr(ExprNode::Term(a));
            let r = t.push_expr(ExprNode::Term(b));
            t.push_expr(ExprNode::Cmp(CmpOp::Eq, l, r))
        };

        // Guard naming a variable the lhs does not bind.
        let mut t = RuleTemplate::from_triples(vec![TriplePattern::new(x, q, y)]);
        let g = eq(&mut t, z, c);
        t.set_guard(g);
        assert_eq!(
            store.add_complex_predicate(lhs, t),
            Err(AlignError::GuardVariableUnbound)
        );

        // Filter naming a variable that is neither lhs-bound nor in the
        // template body.
        let mut t = RuleTemplate::from_triples(vec![TriplePattern::new(x, q, y)]);
        let f = eq(&mut t, z, c);
        t.push_filter(f);
        assert_eq!(
            store.add_complex_predicate(lhs, t),
            Err(AlignError::TemplateVariableUnbound)
        );

        // Expression pool not topologically ordered: child at its own index.
        let mut t = RuleTemplate::from_triples(vec![TriplePattern::new(x, q, y)]);
        t.push_expr(ExprNode::Not(0));
        t.set_guard(0);
        assert_eq!(
            store.add_complex_predicate(lhs, t),
            Err(AlignError::MalformedTemplateExpr)
        );

        // Guard / filter roots out of bounds.
        let mut t = RuleTemplate::from_triples(vec![TriplePattern::new(x, q, y)]);
        t.set_guard(7);
        assert_eq!(
            store.add_complex_predicate(lhs, t),
            Err(AlignError::MalformedTemplateExpr)
        );
        let mut t = RuleTemplate::from_triples(vec![TriplePattern::new(x, q, y)]);
        t.push_filter(7);
        assert_eq!(
            store.add_complex_predicate(lhs, t),
            Err(AlignError::MalformedTemplateExpr)
        );

        // Flat-rule checks still apply: empty body, fresh terms (including
        // in expression leaves), variable predicate.
        assert_eq!(
            store.add_complex_predicate(lhs, RuleTemplate::default()),
            Err(AlignError::EmptyTemplate)
        );
        let mut t = RuleTemplate::from_triples(vec![TriplePattern::new(x, q, y)]);
        let f = eq(&mut t, y, Term::fresh(2));
        t.push_filter(f);
        assert_eq!(
            store.add_complex_predicate(lhs, t),
            Err(AlignError::FreshTerm)
        );
        assert_eq!(
            store.add_complex_predicate(
                TriplePattern::new(x, x, y),
                RuleTemplate::from_triples(vec![TriplePattern::new(x, q, y)])
            ),
            Err(AlignError::VariablePredicate)
        );
        assert!(store.is_empty(), "rejected rules must not be stored");

        // Display coverage for the new variants.
        for (err, needle) in [
            (AlignError::MalformedTemplateExpr, "topologically"),
            (AlignError::GuardVariableUnbound, "guard"),
            (AlignError::TemplateVariableUnbound, "filter"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }

        // And the happy path: guard over lhs vars, filter over an
        // existential chain variable.
        let w = var(&mut it, "w");
        let mut t = RuleTemplate::from_triples(vec![
            TriplePattern::new(x, q, w),
            TriplePattern::new(w, q, y),
        ]);
        let g = eq(&mut t, y, c);
        t.set_guard(g);
        let f = eq(&mut t, w, c);
        t.push_filter(f);
        let id = store.add_complex_predicate(lhs, t.clone()).unwrap();
        assert_eq!(store.rules()[id as usize], Rule::Complex { lhs, tmpl: t });
    }

    #[test]
    fn complex_templates_survive_dense_freeze() {
        use crate::pattern::CmpOp;

        let mut it = Interner::new();
        let x = var(&mut it, "x");
        let y = var(&mut it, "y");
        let c = iri(&mut it, "http://c");
        let mut store = AlignmentStore::new();
        // Interleave flat, complex, and entity rules so the CSR pools carry
        // non-trivial offsets.
        for i in 0..12 {
            let p = iri(&mut it, &format!("http://src/p{i}"));
            let q = iri(&mut it, &format!("http://tgt/p{i}"));
            let lhs = TriplePattern::new(x, p, y);
            match i % 3 {
                0 => {
                    store
                        .add_predicate(lhs, vec![TriplePattern::new(x, q, y)])
                        .unwrap();
                }
                1 => {
                    let w = var(&mut it, "w");
                    let mut t = RuleTemplate::from_triples(vec![
                        TriplePattern::new(x, q, w),
                        TriplePattern::new(w, q, y),
                    ]);
                    let l = t.push_expr(ExprNode::Term(y));
                    let r = t.push_expr(ExprNode::Term(c));
                    let g = t.push_expr(ExprNode::Cmp(CmpOp::Eq, l, r));
                    t.set_guard(g);
                    let fl = t.push_expr(ExprNode::Term(w));
                    let fr = t.push_expr(ExprNode::Term(c));
                    let f = t.push_expr(ExprNode::Cmp(CmpOp::Ne, fl, fr));
                    t.push_filter(f);
                    store.add_complex_predicate(lhs, t).unwrap();
                }
                _ => {
                    store.add_entity(p, q).unwrap();
                }
            }
        }
        // Snapshot every predicate/complex template on the hash path...
        let pred_ids: Vec<u32> = (0..store.len() as u32)
            .filter(|&id| !matches!(store.rules()[id as usize], Rule::Entity { .. }))
            .collect();
        type Snap = (
            TriplePattern,
            Vec<TriplePattern>,
            Vec<ExprNode>,
            u32,
            Vec<u32>,
        );
        let snap = |store: &AlignmentStore, id: u32| -> Snap {
            let t = store.template(id);
            (
                t.lhs,
                t.triples.to_vec(),
                t.exprs.to_vec(),
                t.guard,
                t.filters.to_vec(),
            )
        };
        let hash_snaps: Vec<Snap> = pred_ids.iter().map(|&id| snap(&store, id)).collect();
        // ...then freeze and require the dense pools to reproduce them.
        assert!(store.build_dense_index(it.symbol_bound()));
        for (i, &id) in pred_ids.iter().enumerate() {
            assert_eq!(snap(&store, id), hash_snaps[i], "rule {id}");
        }
    }

    #[test]
    fn dense_index_agrees_with_hash_index() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let mut store = AlignmentStore::new();
        let mut preds = Vec::new();
        let mut ents = Vec::new();
        for i in 0..40 {
            let p = iri(&mut it, &format!("http://src/p{i}"));
            let q = iri(&mut it, &format!("http://tgt/p{i}"));
            preds.push(p);
            if i % 3 == 0 {
                let lhs = TriplePattern::new(v, p, v);
                store
                    .add_predicate(lhs, vec![TriplePattern::new(v, q, v)])
                    .unwrap();
                if i % 6 == 0 {
                    // Second template on the same predicate: posting lists
                    // longer than one entry.
                    store
                        .add_predicate(lhs, vec![TriplePattern::new(v, q, v)])
                        .unwrap();
                }
            }
            if i % 4 == 0 {
                let e = iri(&mut it, &format!("http://src/e{i}"));
                let t = iri(&mut it, &format!("http://tgt/e{i}"));
                ents.push(e);
                store.add_entity(e, t).unwrap();
            }
        }
        // Snapshot every lookup on the hash path, then freeze and compare.
        let probe_terms: Vec<Term> = preds
            .iter()
            .chain(ents.iter())
            .copied()
            .chain([v, Term::literal(it.intern("\"x\"")), Term::fresh(3)])
            .collect();
        let hash_entities: Vec<Option<Term>> = probe_terms
            .iter()
            .map(|&t| store.entity_target(t))
            .collect();
        let hash_preds: Vec<Vec<u32>> = probe_terms
            .iter()
            .map(|&t| store.predicate_candidates(t).to_vec())
            .collect();

        assert!(!store.has_dense_index());
        assert!(store.build_dense_index(it.symbol_bound()));
        assert!(store.has_dense_index());
        for (i, &t) in probe_terms.iter().enumerate() {
            assert_eq!(store.entity_target(t), hash_entities[i], "term {t:?}");
            assert_eq!(
                store.predicate_candidates(t),
                &hash_preds[i][..],
                "term {t:?}"
            );
        }

        // A symbol minted after the freeze is outside every table: no rule.
        let late = iri(&mut it, "http://late/interned");
        assert_eq!(store.entity_target(late), None);
        assert_eq!(store.predicate_candidates(late), &[] as &[u32]);

        // Loading another rule invalidates the dense tables (hash fallback
        // stays correct) until the caller re-freezes.
        let lhs = TriplePattern::new(v, late, v);
        store.add_predicate(lhs, vec![lhs]).unwrap();
        assert!(!store.has_dense_index());
        assert_eq!(store.predicate_candidates(late).len(), 1);
        assert!(store.build_dense_index(it.symbol_bound()));
        assert_eq!(store.predicate_candidates(late).len(), 1);
    }

    #[test]
    fn sparse_symbol_space_keeps_hash_fallback() {
        let mut it = Interner::new();
        let a = iri(&mut it, "http://a");
        let b = iri(&mut it, "http://b");
        let mut store = AlignmentStore::new();
        store.add_entity(a, b).unwrap();
        // One rule over a pretend multi-million-symbol dictionary: the
        // density heuristic must decline and lookups keep working.
        assert!(!store.build_dense_index(50_000_000));
        assert!(!store.has_dense_index());
        assert_eq!(store.entity_target(a), Some(b));
    }

    #[test]
    fn dense_entity_kinds_do_not_alias() {
        // An IRI and a literal sharing one interner symbol must stay
        // distinct keys in the kind-major table.
        let mut it = Interner::new();
        let sym = it.intern("shared-spelling");
        let as_iri = Term::iri(sym);
        let as_lit = Term::literal(sym);
        let tgt = iri(&mut it, "http://tgt");
        let mut store = AlignmentStore::new();
        store.add_entity(as_iri, tgt).unwrap();
        assert!(store.build_dense_index(it.symbol_bound()));
        assert_eq!(store.entity_target(as_iri), Some(tgt));
        assert_eq!(store.entity_target(as_lit), None);
    }

    #[test]
    fn revision_bumps_on_rule_loads_only() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let a = iri(&mut it, "http://a");
        let b = iri(&mut it, "http://b");
        let mut store = AlignmentStore::new();
        assert_eq!(store.revision(), 0);
        store.add_entity(a, b).unwrap();
        assert_eq!(store.revision(), 1);
        // A rejected rule changes nothing, so it must not invalidate.
        assert!(store.add_entity(v, b).is_err());
        assert_eq!(store.revision(), 1);
        // Freezing changes lookup machinery, not the rule set.
        store.build_dense_index(it.symbol_bound());
        assert_eq!(store.revision(), 1);
        let lhs = TriplePattern::new(v, a, v);
        store.add_predicate(lhs, vec![lhs]).unwrap();
        assert_eq!(store.revision(), 2);
    }

    #[test]
    fn predicate_candidates_in_id_order() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let p = iri(&mut it, "http://p");
        let q = iri(&mut it, "http://q");
        let mut store = AlignmentStore::new();
        let lhs = TriplePattern::new(v, p, v);
        let id0 = store.add_predicate(lhs, vec![lhs]).unwrap();
        store.add_entity(p, q).unwrap();
        let id2 = store.add_predicate(lhs, vec![lhs]).unwrap();
        assert_eq!(store.predicate_candidates(p), &[id0, id2]);
        assert_eq!(store.predicate_candidates(q), &[] as &[u32]);
        assert_eq!(store.predicate_candidates(v), &[] as &[u32]);
    }
}
