//! Ontology alignments and the alignment store with dense symbol-id
//! rule dispatch.
//!
//! Following Correndo et al. (EDBT 2010), an alignment rule is either an
//! **entity alignment** `e1 ≡ e2` (rewrite every occurrence of `e1` to `e2`)
//! or a **predicate alignment** mapping a triple-pattern template to a
//! graph-pattern template, e.g.
//!
//! ```text
//! ?x src:authorOf ?y   ⇒   ?y tgt:author ?x
//! ?x src:name ?n       ⇒   ?x tgt:firstName ?f . ?x tgt:lastName ?l
//! ```
//!
//! The hot path is "for each query triple pattern, find the rules that could
//! apply". During the build phase the store maintains two hash indexes over
//! the rule list: entity rules keyed by the raw source term, predicate rules
//! keyed by the template's predicate symbol. At freeze time,
//! [`AlignmentStore::build_dense_index`] converts both into **dense
//! direct-indexed tables** keyed by interner symbol id — the
//! dictionary-encoded dispatch columnar SPARQL engines use: interner symbols
//! are dense `u32`s, so "hash the key, probe, compare" collapses into a
//! single bounds-checked array load. Entity targets and predicate posting-list
//! offsets share one merged per-symbol dispatch record (entity targets in
//! the concrete-kind lanes, CSR offsets in the otherwise-unused variable
//! lane), and rule templates are pooled flat by rule id so applying a match
//! never chases the rule list. When the symbol space is too sparse for dense
//! tables to pay for themselves the store keeps the hash maps as the
//! fallback path — lookups are correct either way, just slower.
//!
//! The [`crate::rewriter::LinearRewriter`] ignores every index and scans the
//! rule list instead, as the benchmark baseline.

use crate::fxhash::FxHashMap;
use crate::pattern::TriplePattern;
use crate::smallvec::SmallVec;
use crate::term::{Symbol, Term, SYM_MASK, TAG_SHIFT};

/// One alignment rule. Stored in a flat `Vec`; rule ids are indices into it,
/// and "first matching rule in id order wins" is the tie-break both
/// rewriters implement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// `from ≡ to`: substitute `to` wherever `from` occurs (subject,
    /// predicate, or object position).
    Entity { from: Term, to: Term },
    /// Template rewrite: a query pattern that matches `lhs` is replaced by
    /// `rhs` with the lhs variable bindings applied. Variables occurring in
    /// `rhs` but not in `lhs` are existential and get fresh names at
    /// application time. The converse — an lhs variable unused in `rhs` —
    /// is deliberately legal: the paper's alignments may be lossy (the
    /// target ontology cannot always express every source binding), and the
    /// rule author owns that trade-off.
    Predicate {
        lhs: TriplePattern,
        rhs: Vec<TriplePattern>,
    },
}

/// Error adding a rule to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlignError {
    /// Predicate templates must have a concrete (non-variable) predicate —
    /// it is the index key and the paper's alignments are per-predicate.
    VariablePredicate,
    /// Entity alignments relate concrete terms; a variable cannot be ≡ to
    /// anything.
    VariableEntity,
    /// Empty right-hand side would silently delete query patterns.
    EmptyTemplate,
    /// Rule templates must not contain rewriter-minted
    /// [`TermKind::Fresh`](crate::term::TermKind::Fresh) terms — their
    /// counters are meaningful only within one rewrite call, so a rule
    /// carrying one could capture the engine's own existentials.
    FreshTerm,
}

impl std::fmt::Display for AlignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlignError::VariablePredicate => {
                f.write_str("predicate alignment template must have a concrete predicate")
            }
            AlignError::VariableEntity => {
                f.write_str("entity alignment endpoints must be concrete terms")
            }
            AlignError::EmptyTemplate => {
                f.write_str("predicate alignment right-hand side must be non-empty")
            }
            AlignError::FreshTerm => {
                f.write_str("alignment rules must not contain fresh (rewriter-minted) terms")
            }
        }
    }
}

impl std::error::Error for AlignError {}

/// Dense direct-indexed dispatch tables, built at freeze time from the hash
/// indexes. Both tables are sized by the interner's
/// [`symbol_bound`](crate::interner::Interner::symbol_bound), so a lookup is
/// a bounds-checked array load with no hashing and no key comparison.
#[derive(Debug)]
struct DenseIndex {
    /// Symbols this index was sized for. Terms carrying a later symbol (a
    /// worker-local post-freeze intern) fall outside every table and
    /// correctly resolve to "no rule".
    symbol_bound: u32,
    /// The merged dispatch table: one 16-byte record of four `u32` lanes per
    /// symbol, `table[(symbol << 2) | lane]`, with `symbol_bound + 1`
    /// records.
    ///
    /// * Lanes 0..=2 (the concrete term tags — IRI, literal, blank) hold
    ///   the raw replacement term of the first entity rule for that source
    ///   term, or [`NO_ENTITY`]. The lane is selected by the term's tag
    ///   directly, so the slot is shift+or (no multiply), and one unsigned
    ///   compare on the raw term excludes variables and fresh terms before
    ///   any memory is touched.
    /// * Lane 3 — the variable tag, which can never be an entity source —
    ///   holds the CSR offset of the symbol's predicate posting list: the
    ///   candidates for predicate symbol `s` are
    ///   `pred_ids[table[(s << 2) | 3] .. table[((s + 1) << 2) | 3]]`, in
    ///   rule-id order (hence the one extra record at the end).
    ///
    /// Packing the CSR offsets into the otherwise-wasted variable lane puts
    /// a predicate's entity target and both posting-list offsets on the
    /// same (or at worst the adjacent) cache line, so the per-pattern
    /// predicate dispatch costs one line instead of three.
    table: Box<[u32]>,
    /// CSR payload: posting lists of predicate-rule ids, indexed by lane 3
    /// of `table`.
    pred_ids: Box<[u32]>,
    /// Flat template pools indexed by **rule id**, so applying a matched
    /// rule never touches the `Vec<Rule>` enum (48-byte entries behind a
    /// pointer-chased `Vec<TriplePattern>` each): `tmpl_lhs[id]` is the
    /// template's lhs, its rhs is
    /// `rhs_pool[tmpl_rhs_off[id] .. tmpl_rhs_off[id + 1]]`. Entity-rule
    /// ids hold a placeholder lhs and an empty rhs range; candidate lookup
    /// only ever yields predicate ids.
    tmpl_lhs: Box<[TriplePattern]>,
    tmpl_rhs_off: Box<[u32]>,
    rhs_pool: Box<[TriplePattern]>,
}

/// Vacant entity lane in [`DenseIndex::table`]. `u32::MAX` decodes as a
/// [`crate::term::TermKind::Fresh`] term, which
/// [`AlignmentStore::add_entity`] rejects, so no rule target can ever
/// collide with the sentinel.
const NO_ENTITY: u32 = u32::MAX;

/// Number of concrete term kinds (IRI, literal, blank) the dense entity
/// table maps; their tags are `0..KINDS`.
const KINDS: usize = 3;

/// Raw values at or above this are non-concrete: variables (tag 3) and
/// fresh terms (tags 4..=7). Neither can be an entity-rule source or a
/// template-predicate key, so one unsigned compare rejects both without
/// touching memory.
const CONCRETE_TAG_CEIL: u32 = (KINDS as u32) << TAG_SHIFT;

/// Rule set plus candidate-lookup indexes.
///
/// Build phase: hash indexes (FxHash) are maintained incrementally by
/// `add_*`. Freeze: [`AlignmentStore::build_dense_index`] lowers them into
/// direct-indexed tables keyed by interner symbol id. Lookups transparently
/// prefer the dense tables and fall back to the hash maps when they are
/// absent (never built, declined as too sparse, or invalidated by a
/// post-freeze `add_*`).
#[derive(Default, Debug)]
pub struct AlignmentStore {
    rules: Vec<Rule>,
    /// Raw packed source term → id of the *first* entity rule for it.
    /// Later duplicates are kept in `rules` (the linear scan also takes the
    /// first match) but never win.
    entity_idx: FxHashMap<u32, u32>,
    /// Template predicate symbol → ids of predicate rules with that
    /// predicate, in insertion (= id) order.
    predicate_idx: FxHashMap<Symbol, SmallVec<u32, 4>>,
    /// Frozen dense dispatch tables; `None` during the build phase and on
    /// the sparse fallback path.
    dense: Option<DenseIndex>,
    /// Monotonic rule-set revision: bumped by every `add_*`, never by
    /// `build_dense_index` (freezing changes the lookup machinery, not the
    /// rules). This is the generation tag the rewrite-result cache
    /// ([`crate::cache::RewriteCache`]) stamps entries with — a post-freeze
    /// rule load bumps it, so every cached rewrite produced under the old
    /// rule set lazily misses, mirroring how the same `add_*` invalidates
    /// the dense tables.
    revision: u64,
}

impl AlignmentStore {
    pub fn new() -> AlignmentStore {
        AlignmentStore::default()
    }

    /// Register `from ≡ to`. Returns the rule id.
    pub fn add_entity(&mut self, from: Term, to: Term) -> Result<u32, AlignError> {
        if from.is_var() || to.is_var() {
            return Err(AlignError::VariableEntity);
        }
        if from.is_fresh() || to.is_fresh() {
            return Err(AlignError::FreshTerm);
        }
        let id = self.next_id();
        self.rules.push(Rule::Entity { from, to });
        self.entity_idx.entry(from.raw()).or_insert(id);
        // The dense tables are a frozen snapshot; a post-freeze rule load
        // invalidates them and lookups revert to the hash fallback until
        // the caller re-freezes. The revision bump invalidates any
        // rewrite-result cache keyed to the old rule set the same way.
        self.dense = None;
        self.revision += 1;
        Ok(id)
    }

    /// Register a template rewrite `lhs ⇒ rhs`. Returns the rule id.
    pub fn add_predicate(
        &mut self,
        lhs: TriplePattern,
        rhs: Vec<TriplePattern>,
    ) -> Result<u32, AlignError> {
        if lhs.p.is_var() {
            return Err(AlignError::VariablePredicate);
        }
        if rhs.is_empty() {
            return Err(AlignError::EmptyTemplate);
        }
        if lhs
            .terms()
            .into_iter()
            .chain(rhs.iter().flat_map(|tp| tp.terms()))
            .any(Term::is_fresh)
        {
            return Err(AlignError::FreshTerm);
        }
        let id = self.next_id();
        self.predicate_idx
            .entry(lhs.p.symbol())
            .or_default()
            .push(id);
        self.rules.push(Rule::Predicate { lhs, rhs });
        self.dense = None;
        self.revision += 1;
        Ok(id)
    }

    /// Freeze the candidate indexes into dense direct-indexed tables sized
    /// by `symbol_bound` (the interner's
    /// [`symbol_bound`](crate::interner::Interner::symbol_bound) at freeze
    /// time). Returns `true` when the dense tables were built, `false` when
    /// the symbol space is too sparse relative to the rule count for a
    /// direct-indexed table to pay for its memory, in which case the hash
    /// indexes stay in service as the fallback path (lookups remain
    /// correct, just hashed).
    ///
    /// Loading further rules after this call invalidates the dense tables;
    /// call `build_dense_index` again once loading is done.
    pub fn build_dense_index(&mut self, symbol_bound: usize) -> bool {
        self.dense = None;
        // Density heuristic: the tables cost ~16 bytes per symbol. Build
        // them when the symbol space is small in absolute terms or within a
        // constant factor of the rule count; a near-empty rule set over a
        // huge dictionary keeps the hash fallback.
        let worthwhile =
            symbol_bound <= (1 << 16) || symbol_bound <= self.rules.len().saturating_mul(64);
        if !worthwhile || symbol_bound > u32::MAX as usize {
            return false;
        }

        // Every rule symbol must fall inside the bound, or dense lookups
        // would silently diverge from the hash index.
        assert!(
            self.predicate_idx.keys().all(|s| s.index() < symbol_bound)
                && self
                    .entity_idx
                    .keys()
                    .all(|&raw| (Term::from_raw(raw).symbol().index()) < symbol_bound),
            "build_dense_index: symbol_bound smaller than a rule symbol \
             (freeze the interner after loading rules, not before)"
        );

        // One 4-lane record per symbol plus the end-of-CSR sentinel record.
        let mut table = vec![NO_ENTITY; 4 * (symbol_bound + 1)].into_boxed_slice();
        for (&raw, &id) in &self.entity_idx {
            let from = Term::from_raw(raw);
            debug_assert!(
                (from.kind() as usize) < KINDS,
                "entity sources are concrete"
            );
            let slot = (from.symbol().index() << 2) | from.kind() as usize;
            let Rule::Entity { to, .. } = self.rules[id as usize] else {
                unreachable!("entity index points at non-entity rule");
            };
            table[slot] = to.raw();
        }

        // CSR build into lane 3: count per symbol, prefix-sum, then fill in
        // rule-id order so each posting list preserves the hash index's
        // ordering.
        let lane3 = |sym: usize| (sym << 2) | 3;
        // Scatter per-symbol counts into lane 3 (one pass over the rule
        // index, not one hash probe per dictionary symbol), then prefix-sum
        // in place.
        for sym in 0..=symbol_bound {
            table[lane3(sym)] = 0;
        }
        for (sym, ids) in &self.predicate_idx {
            table[lane3(sym.index() + 1)] = ids.len() as u32;
        }
        for sym in 1..=symbol_bound {
            table[lane3(sym)] += table[lane3(sym - 1)];
        }
        let total = table[lane3(symbol_bound)] as usize;
        let mut pred_ids = vec![0u32; total].into_boxed_slice();
        for (sym, ids) in &self.predicate_idx {
            let start = table[lane3(sym.index())] as usize;
            pred_ids[start..start + ids.len()].copy_from_slice(ids.as_slice());
        }

        // Flat template pools by rule id.
        let placeholder = TriplePattern::new(Term::fresh(0), Term::fresh(0), Term::fresh(0));
        let mut tmpl_lhs = vec![placeholder; self.rules.len()].into_boxed_slice();
        let mut tmpl_rhs_off = vec![0u32; self.rules.len() + 1];
        let mut rhs_pool = Vec::new();
        for (id, rule) in self.rules.iter().enumerate() {
            if let Rule::Predicate { lhs, rhs } = rule {
                tmpl_lhs[id] = *lhs;
                rhs_pool.extend_from_slice(rhs);
            }
            tmpl_rhs_off[id + 1] = rhs_pool.len() as u32;
        }

        self.dense = Some(DenseIndex {
            symbol_bound: symbol_bound as u32,
            table,
            pred_ids,
            tmpl_lhs,
            tmpl_rhs_off: tmpl_rhs_off.into_boxed_slice(),
            rhs_pool: rhs_pool.into_boxed_slice(),
        });
        true
    }

    /// The lhs/rhs templates of predicate rule `id`. Only meaningful for
    /// ids yielded by [`AlignmentStore::predicate_candidates`] (or an
    /// equivalent scan); on the dense path this reads the flat template
    /// pools and never touches the rule list.
    #[inline]
    pub fn template(&self, id: u32) -> (TriplePattern, &[TriplePattern]) {
        if let Some(dense) = &self.dense {
            let lhs = dense.tmpl_lhs[id as usize];
            let start = dense.tmpl_rhs_off[id as usize] as usize;
            let end = dense.tmpl_rhs_off[id as usize + 1] as usize;
            return (lhs, &dense.rhs_pool[start..end]);
        }
        match &self.rules[id as usize] {
            Rule::Predicate { lhs, rhs } => (*lhs, rhs),
            _ => unreachable!("template id points at a non-predicate rule"),
        }
    }

    /// Whether lookups currently run on the dense direct-indexed tables
    /// (vs. the hash fallback).
    pub fn has_dense_index(&self) -> bool {
        self.dense.is_some()
    }

    /// Monotonic rule-set revision, bumped by every successful `add_*`.
    ///
    /// Use it as the generation tag for a [`crate::cache::RewriteCache`]:
    /// stamp inserts with the revision the rewrite ran under and look up
    /// with the current one. Rewriting is deterministic per (query text,
    /// rule set), so equal revisions guarantee the cached text is still the
    /// correct rewrite — and a post-freeze `add_*` bumps the revision,
    /// making every stale entry miss without any eager scan, exactly like
    /// the dense-index invalidation above.
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    fn next_id(&self) -> u32 {
        u32::try_from(self.rules.len()).expect("more than u32::MAX rules")
    }

    #[inline]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Indexed entity lookup: the replacement for `t`, if any entity rule
    /// rewrites it. On the dense path this is a tag check plus one array
    /// load; variables and fresh terms short-circuit without touching
    /// memory, and a symbol minted after the freeze falls outside the table
    /// bounds (no rule can mention it).
    #[inline]
    pub fn entity_target(&self, t: Term) -> Option<Term> {
        if let Some(dense) = &self.dense {
            let raw = t.raw();
            // Variables and fresh terms can never be entity-rule sources:
            // one compare, no memory touched (this is the common case —
            // most subject/object positions are variables).
            if raw >= CONCRETE_TAG_CEIL {
                return None;
            }
            // slot = (symbol << 2) | tag, always an entity lane (tag ≤ 2).
            // A post-freeze symbol is rejected by the explicit bound check
            // (the sentinel record at the end means the slice check alone
            // is not tight enough).
            let sym = (raw & SYM_MASK) as usize;
            if sym >= dense.symbol_bound as usize {
                return None;
            }
            let to = dense.table[sym << 2 | (raw >> TAG_SHIFT) as usize];
            return if to != NO_ENTITY {
                Some(Term::from_raw(to))
            } else {
                None
            };
        }
        let &id = self.entity_idx.get(&t.raw())?;
        match &self.rules[id as usize] {
            Rule::Entity { to, .. } => Some(*to),
            _ => unreachable!("entity index points at non-entity rule"),
        }
    }

    /// Indexed predicate-rule candidates for a pattern whose predicate is
    /// `p`, in rule-id order. Variables never match (templates must have
    /// concrete predicates, so a variable predicate in the query can only be
    /// entity-rewritten, never template-expanded). On the dense path this is
    /// two adjacent offset loads and a slice.
    #[inline]
    pub fn predicate_candidates(&self, p: Term) -> &[u32] {
        // A variable predicate never matches a template (templates have
        // concrete predicates), and a fresh predicate carries a counter,
        // not a symbol — it must never alias a real predicate symbol in
        // the index. One compare covers both.
        if p.raw() >= CONCRETE_TAG_CEIL {
            return &[];
        }
        if let Some(dense) = &self.dense {
            let sym = p.symbol().index();
            if sym >= dense.symbol_bound as usize {
                return &[];
            }
            // CSR offsets live in lane 3 of the symbol's (and the next
            // symbol's) dispatch record — usually the same cache line the
            // entity lookup for this predicate just touched.
            let start = dense.table[sym << 2 | 3] as usize;
            let end = dense.table[(sym + 1) << 2 | 3] as usize;
            return &dense.pred_ids[start..end];
        }
        self.predicate_idx
            .get(&p.symbol())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn iri(i: &mut Interner, s: &str) -> Term {
        Term::iri(i.intern(s))
    }

    fn var(i: &mut Interner, s: &str) -> Term {
        Term::var(i.intern(s))
    }

    #[test]
    fn entity_index_first_rule_wins() {
        let mut it = Interner::new();
        let a = iri(&mut it, "http://a");
        let b = iri(&mut it, "http://b");
        let c = iri(&mut it, "http://c");
        let mut store = AlignmentStore::new();
        store.add_entity(a, b).unwrap();
        store.add_entity(a, c).unwrap();
        assert_eq!(store.entity_target(a), Some(b));
        assert_eq!(store.entity_target(b), None);
    }

    #[test]
    fn rejects_malformed_rules() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let p = iri(&mut it, "http://p");
        let mut store = AlignmentStore::new();
        assert_eq!(store.add_entity(v, p), Err(AlignError::VariableEntity));
        let lhs_varpred = TriplePattern::new(v, v, v);
        assert_eq!(
            store.add_predicate(lhs_varpred, vec![lhs_varpred]),
            Err(AlignError::VariablePredicate)
        );
        let lhs = TriplePattern::new(v, p, v);
        assert_eq!(
            store.add_predicate(lhs, vec![]),
            Err(AlignError::EmptyTemplate)
        );
    }

    #[test]
    fn dense_index_agrees_with_hash_index() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let mut store = AlignmentStore::new();
        let mut preds = Vec::new();
        let mut ents = Vec::new();
        for i in 0..40 {
            let p = iri(&mut it, &format!("http://src/p{i}"));
            let q = iri(&mut it, &format!("http://tgt/p{i}"));
            preds.push(p);
            if i % 3 == 0 {
                let lhs = TriplePattern::new(v, p, v);
                store
                    .add_predicate(lhs, vec![TriplePattern::new(v, q, v)])
                    .unwrap();
                if i % 6 == 0 {
                    // Second template on the same predicate: posting lists
                    // longer than one entry.
                    store
                        .add_predicate(lhs, vec![TriplePattern::new(v, q, v)])
                        .unwrap();
                }
            }
            if i % 4 == 0 {
                let e = iri(&mut it, &format!("http://src/e{i}"));
                let t = iri(&mut it, &format!("http://tgt/e{i}"));
                ents.push(e);
                store.add_entity(e, t).unwrap();
            }
        }
        // Snapshot every lookup on the hash path, then freeze and compare.
        let probe_terms: Vec<Term> = preds
            .iter()
            .chain(ents.iter())
            .copied()
            .chain([v, Term::literal(it.intern("\"x\"")), Term::fresh(3)])
            .collect();
        let hash_entities: Vec<Option<Term>> = probe_terms
            .iter()
            .map(|&t| store.entity_target(t))
            .collect();
        let hash_preds: Vec<Vec<u32>> = probe_terms
            .iter()
            .map(|&t| store.predicate_candidates(t).to_vec())
            .collect();

        assert!(!store.has_dense_index());
        assert!(store.build_dense_index(it.symbol_bound()));
        assert!(store.has_dense_index());
        for (i, &t) in probe_terms.iter().enumerate() {
            assert_eq!(store.entity_target(t), hash_entities[i], "term {t:?}");
            assert_eq!(
                store.predicate_candidates(t),
                &hash_preds[i][..],
                "term {t:?}"
            );
        }

        // A symbol minted after the freeze is outside every table: no rule.
        let late = iri(&mut it, "http://late/interned");
        assert_eq!(store.entity_target(late), None);
        assert_eq!(store.predicate_candidates(late), &[] as &[u32]);

        // Loading another rule invalidates the dense tables (hash fallback
        // stays correct) until the caller re-freezes.
        let lhs = TriplePattern::new(v, late, v);
        store.add_predicate(lhs, vec![lhs]).unwrap();
        assert!(!store.has_dense_index());
        assert_eq!(store.predicate_candidates(late).len(), 1);
        assert!(store.build_dense_index(it.symbol_bound()));
        assert_eq!(store.predicate_candidates(late).len(), 1);
    }

    #[test]
    fn sparse_symbol_space_keeps_hash_fallback() {
        let mut it = Interner::new();
        let a = iri(&mut it, "http://a");
        let b = iri(&mut it, "http://b");
        let mut store = AlignmentStore::new();
        store.add_entity(a, b).unwrap();
        // One rule over a pretend multi-million-symbol dictionary: the
        // density heuristic must decline and lookups keep working.
        assert!(!store.build_dense_index(50_000_000));
        assert!(!store.has_dense_index());
        assert_eq!(store.entity_target(a), Some(b));
    }

    #[test]
    fn dense_entity_kinds_do_not_alias() {
        // An IRI and a literal sharing one interner symbol must stay
        // distinct keys in the kind-major table.
        let mut it = Interner::new();
        let sym = it.intern("shared-spelling");
        let as_iri = Term::iri(sym);
        let as_lit = Term::literal(sym);
        let tgt = iri(&mut it, "http://tgt");
        let mut store = AlignmentStore::new();
        store.add_entity(as_iri, tgt).unwrap();
        assert!(store.build_dense_index(it.symbol_bound()));
        assert_eq!(store.entity_target(as_iri), Some(tgt));
        assert_eq!(store.entity_target(as_lit), None);
    }

    #[test]
    fn revision_bumps_on_rule_loads_only() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let a = iri(&mut it, "http://a");
        let b = iri(&mut it, "http://b");
        let mut store = AlignmentStore::new();
        assert_eq!(store.revision(), 0);
        store.add_entity(a, b).unwrap();
        assert_eq!(store.revision(), 1);
        // A rejected rule changes nothing, so it must not invalidate.
        assert!(store.add_entity(v, b).is_err());
        assert_eq!(store.revision(), 1);
        // Freezing changes lookup machinery, not the rule set.
        store.build_dense_index(it.symbol_bound());
        assert_eq!(store.revision(), 1);
        let lhs = TriplePattern::new(v, a, v);
        store.add_predicate(lhs, vec![lhs]).unwrap();
        assert_eq!(store.revision(), 2);
    }

    #[test]
    fn predicate_candidates_in_id_order() {
        let mut it = Interner::new();
        let v = var(&mut it, "x");
        let p = iri(&mut it, "http://p");
        let q = iri(&mut it, "http://q");
        let mut store = AlignmentStore::new();
        let lhs = TriplePattern::new(v, p, v);
        let id0 = store.add_predicate(lhs, vec![lhs]).unwrap();
        store.add_entity(p, q).unwrap();
        let id2 = store.add_predicate(lhs, vec![lhs]).unwrap();
        assert_eq!(store.predicate_candidates(p), &[id0, id2]);
        assert_eq!(store.predicate_candidates(q), &[] as &[u32]);
        assert_eq!(store.predicate_candidates(v), &[] as &[u32]);
    }
}
