//! String interner mapping term text to 29-bit [`Symbol`]s, and its frozen,
//! shareable counterpart for the serve phase.
//!
//! The lifecycle mirrors the engine's two phases:
//!
//! * **Build phase** — an [`Interner`] is mutable and append-only: the
//!   parser and rule loaders intern each distinct string once.
//! * **Serve phase** — [`Interner::freeze`] converts it into a
//!   [`FrozenInterner`]: immutable, `Send + Sync`, `Arc`-shareable across
//!   worker threads, with a resolve path that is a plain slice index.
//!
//! Each string is owned exactly once: the lookup table is an open-addressing
//! array of symbol indices (a raw-entry-style hash-of-index map), not a
//! `HashMap<Box<str>, u32>` that would duplicate every key. Hashing uses
//! [FxHash](crate::fxhash) — short IRIs and QName expansions dominate the
//! key distribution and Fx beats SipHash on them by a wide margin.

use std::hash::Hasher;

use crate::fxhash::FxHasher;
use crate::term::Symbol;

/// Anything that can turn a [`Symbol`] back into its text. Implemented by
/// both interner phases so rendering code is agnostic to which one it holds.
pub trait Resolve {
    fn resolve(&self, sym: Symbol) -> &str;
}

const EMPTY: u32 = u32::MAX;

#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Append-only string interner. Symbols are dense indices starting at 0.
#[derive(Default, Debug)]
pub struct Interner {
    /// The single owned copy of each interned string, indexed by symbol.
    strings: Vec<Box<str>>,
    /// Open-addressing table of symbol indices (`EMPTY` = vacant), sized to
    /// a power of two. Probing rehashes the candidate's string on compare,
    /// so no second copy of any key is stored.
    table: Vec<u32>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, returning its symbol. O(1) amortized; allocates only the
    /// first time a string is seen — and then exactly one owned copy.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if self.strings.len() * 4 >= self.table.len() * 3 {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut i = hash_str(s) as usize & mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                let id = u32::try_from(self.strings.len()).expect("interner overflow");
                assert!(id <= Symbol::MAX, "interner exceeded 2^29 symbols");
                self.strings.push(s.into());
                self.table[i] = id;
                return Symbol(id);
            }
            if &*self.strings[slot as usize] == s {
                return Symbol(slot);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.table.len() * 2).max(16);
        let mask = new_cap - 1;
        let mut table = vec![EMPTY; new_cap];
        for (id, s) in self.strings.iter().enumerate() {
            let mut i = hash_str(s) as usize & mask;
            while table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            table[i] = id as u32;
        }
        self.table = table;
    }

    /// Look up a symbol minted by this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Symbol for `s` if it has already been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        lookup(&self.table, &self.strings, s)
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// End the build phase: convert into an immutable, `Send + Sync`
    /// interner that worker threads can share behind an `Arc`. Symbols
    /// minted by `self` resolve identically in the frozen form.
    pub fn freeze(self) -> FrozenInterner {
        FrozenInterner {
            strings: self.strings.into_boxed_slice(),
            table: self.table.into_boxed_slice(),
        }
    }
}

fn lookup(table: &[u32], strings: &[Box<str>], s: &str) -> Option<Symbol> {
    if table.is_empty() {
        return None;
    }
    let mask = table.len() - 1;
    let mut i = hash_str(s) as usize & mask;
    loop {
        let slot = table[i];
        if slot == EMPTY {
            return None;
        }
        if &*strings[slot as usize] == s {
            return Some(Symbol(slot));
        }
        i = (i + 1) & mask;
    }
}

/// The serve-phase interner: frozen symbol table shared read-only by every
/// worker thread. Resolution is a bounds-checked slice index; there is no
/// interior mutability, so `FrozenInterner` is `Send + Sync` by
/// construction.
#[derive(Debug)]
pub struct FrozenInterner {
    strings: Box<[Box<str>]>,
    table: Box<[u32]>,
}

impl FrozenInterner {
    /// Look up a symbol minted during the build phase.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Symbol for `s` if it was interned before the freeze.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        lookup(&self.table, &self.strings, s)
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Re-enter the build phase (e.g. to load an additional rule set),
    /// preserving every existing symbol.
    pub fn thaw(self) -> Interner {
        Interner {
            strings: self.strings.into_vec(),
            table: self.table.into_vec(),
        }
    }
}

impl Resolve for Interner {
    #[inline]
    fn resolve(&self, sym: Symbol) -> &str {
        Interner::resolve(self, sym)
    }
}

impl Resolve for FrozenInterner {
    #[inline]
    fn resolve(&self, sym: Symbol) -> &str {
        FrozenInterner::resolve(self, sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("http://example.org/a");
        let b = i.intern("http://example.org/b");
        let a2 = i.intern("http://example.org/a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "http://example.org/a");
        assert_eq!(i.resolve(b), "http://example.org/b");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("http://example.org/b"), Some(b));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn survives_table_growth() {
        let mut it = Interner::new();
        let syms: Vec<Symbol> = (0..10_000)
            .map(|n| it.intern(&format!("http://example.org/resource/{n}")))
            .collect();
        assert_eq!(it.len(), 10_000);
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(it.resolve(*sym), format!("http://example.org/resource/{n}"));
            assert_eq!(
                it.get(&format!("http://example.org/resource/{n}")),
                Some(*sym)
            );
        }
        // Re-interning after growth still dedups.
        assert_eq!(it.intern("http://example.org/resource/123"), syms[123]);
        assert_eq!(it.len(), 10_000);
    }

    #[test]
    fn freeze_preserves_symbols_and_thaw_round_trips() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        let frozen = it.freeze();
        assert_eq!(frozen.resolve(a), "alpha");
        assert_eq!(frozen.resolve(b), "beta");
        assert_eq!(frozen.get("beta"), Some(b));
        assert_eq!(frozen.get("gamma"), None);
        assert_eq!(frozen.len(), 2);

        let mut thawed = frozen.thaw();
        assert_eq!(thawed.intern("alpha"), a, "thaw must keep old symbols");
        let c = thawed.intern("gamma");
        assert_ne!(c, a);
        assert_eq!(thawed.resolve(c), "gamma");
    }

    #[test]
    fn frozen_interner_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenInterner>();
    }

    #[test]
    fn empty_interner_get_is_none() {
        let it = Interner::new();
        assert_eq!(it.get("anything"), None);
        assert!(it.freeze().is_empty());
    }
}
