//! String interner mapping term text to 29-bit [`Symbol`]s, and its frozen,
//! shareable counterpart for the serve phase.
//!
//! The lifecycle mirrors the engine's two phases:
//!
//! * **Build phase** — an [`Interner`] is mutable and append-only: the
//!   parser and rule loaders intern each distinct string once.
//! * **Serve phase** — [`Interner::freeze`] converts it into a
//!   [`FrozenInterner`]: immutable, `Send + Sync`, `Arc`-shareable across
//!   worker threads, with a resolve path that is a plain slice index.
//!
//! Each string is owned exactly once: the lookup table is an open-addressing
//! array of symbol indices (a raw-entry-style hash-of-index map), not a
//! `HashMap<Box<str>, u32>` that would duplicate every key. Hashing uses
//! [FxHash](crate::fxhash) — short IRIs and QName expansions dominate the
//! key distribution and Fx beats SipHash on them by a wide margin.

use std::hash::Hasher;

use crate::fxhash::FxHasher;
use crate::term::Symbol;

/// Anything that can turn a [`Symbol`] back into its text. Implemented by
/// both interner phases so rendering code is agnostic to which one it holds.
pub trait Resolve {
    fn resolve(&self, sym: Symbol) -> &str;
}

/// Vacant table slot. Slots pack `(hash_tag << 32) | symbol_id`; a symbol
/// id of `u32::MAX` is unreachable (the interner asserts ids ≤ 2^29), so
/// `u64::MAX` cannot collide with a live entry.
const EMPTY: u64 = u64::MAX;

/// Pack a table slot: the top 32 bits of the (folded) hash as a tag, the
/// symbol id below. Probes compare the tag before touching the candidate's
/// string, so a probe chain costs one cache line per step instead of a
/// string comparison per step.
#[inline]
fn slot_entry(hash: u64, id: u32) -> u64 {
    (hash & 0xffff_ffff_0000_0000) | id as u64
}

#[inline]
fn slot_id(entry: u64) -> u32 {
    entry as u32
}

#[inline]
fn slot_tag_matches(entry: u64, hash: u64) -> bool {
    (entry ^ hash) & 0xffff_ffff_0000_0000 == 0
}

#[inline]
fn hash_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    let h = h.finish();
    // Fx's final step is a multiply, which drives its entropy into the
    // *high* bits; this table indexes with the *low* bits (`& mask`).
    // Without folding the halves together, IRI sets that differ only in a
    // short suffix (p0..pN vocabularies — exactly what alignment workloads
    // look like) cluster into long linear-probe chains and a warm intern
    // hit costs ~25 probes instead of ~1.
    h ^ (h >> 32)
}

/// Append-only string interner. Symbols are dense indices starting at 0.
///
/// `Clone` is deliberate: a serve-phase worker that must parse *new* query
/// text (which can mention strings the build phase never saw) clones the
/// build-phase interner once and interns worker-locally. Every pre-existing
/// symbol keeps its id in the clone, so terms stay comparable against the
/// shared rule set, while post-clone symbols (ids ≥ the clone point's
/// [`Interner::symbol_bound`]) are private to that worker and can never
/// alias a rule symbol.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    /// The single owned copy of each interned string, indexed by symbol.
    strings: Vec<Box<str>>,
    /// Open-addressing table of `(hash_tag, symbol_id)` slots (`EMPTY` =
    /// vacant), sized to a power of two. A probe compares the 32-bit hash
    /// tag first and only rehashes the candidate's string on a tag match,
    /// so no second copy of any key is stored and false probes never touch
    /// the string heap.
    table: Vec<u64>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, returning its symbol. O(1) amortized; allocates only the
    /// first time a string is seen — and then exactly one owned copy.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if self.strings.len() * 4 >= self.table.len() * 3 {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let hash = hash_str(s);
        let mut i = hash as usize & mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                let id = u32::try_from(self.strings.len()).expect("interner overflow");
                assert!(id <= Symbol::MAX, "interner exceeded 2^29 symbols");
                self.strings.push(s.into());
                self.table[i] = slot_entry(hash, id);
                return Symbol(id);
            }
            if slot_tag_matches(slot, hash) && &*self.strings[slot_id(slot) as usize] == s {
                return Symbol(slot_id(slot));
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.table.len() * 2).max(16);
        let mask = new_cap - 1;
        let mut table = vec![EMPTY; new_cap];
        for (id, s) in self.strings.iter().enumerate() {
            let hash = hash_str(s);
            let mut i = hash as usize & mask;
            while table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            table[i] = slot_entry(hash, id as u32);
        }
        self.table = table;
    }

    /// Look up a symbol minted by this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Symbol for `s` if it has already been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        lookup(&self.table, &self.strings, s)
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Exclusive upper bound on every symbol id minted so far: symbols are
    /// dense indices `0..symbol_bound()`. This is the size a direct-indexed
    /// (dense) table keyed by symbol id needs — see
    /// [`crate::align::AlignmentStore::build_dense_index`].
    #[inline]
    pub fn symbol_bound(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// End the build phase: convert into an immutable, `Send + Sync`
    /// interner that worker threads can share behind an `Arc`. Symbols
    /// minted by `self` resolve identically in the frozen form.
    pub fn freeze(self) -> FrozenInterner {
        FrozenInterner {
            strings: self.strings.into_boxed_slice(),
            table: self.table.into_boxed_slice(),
        }
    }
}

fn lookup(table: &[u64], strings: &[Box<str>], s: &str) -> Option<Symbol> {
    if table.is_empty() {
        return None;
    }
    let mask = table.len() - 1;
    let hash = hash_str(s);
    let mut i = hash as usize & mask;
    loop {
        let slot = table[i];
        if slot == EMPTY {
            return None;
        }
        if slot_tag_matches(slot, hash) && &*strings[slot_id(slot) as usize] == s {
            return Some(Symbol(slot_id(slot)));
        }
        i = (i + 1) & mask;
    }
}

/// The serve-phase interner: frozen symbol table shared read-only by every
/// worker thread. Resolution is a bounds-checked slice index; there is no
/// interior mutability, so `FrozenInterner` is `Send + Sync` by
/// construction.
#[derive(Debug)]
pub struct FrozenInterner {
    strings: Box<[Box<str>]>,
    table: Box<[u64]>,
}

impl FrozenInterner {
    /// Look up a symbol minted during the build phase.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Symbol for `s` if it was interned before the freeze.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        lookup(&self.table, &self.strings, s)
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Exclusive upper bound on every symbol id this interner can resolve;
    /// see [`Interner::symbol_bound`].
    #[inline]
    pub fn symbol_bound(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Re-enter the build phase (e.g. to load an additional rule set),
    /// preserving every existing symbol.
    pub fn thaw(self) -> Interner {
        Interner {
            strings: self.strings.into_vec(),
            table: self.table.into_vec(),
        }
    }
}

impl Resolve for Interner {
    #[inline]
    fn resolve(&self, sym: Symbol) -> &str {
        Interner::resolve(self, sym)
    }
}

impl Resolve for FrozenInterner {
    #[inline]
    fn resolve(&self, sym: Symbol) -> &str {
        FrozenInterner::resolve(self, sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("http://example.org/a");
        let b = i.intern("http://example.org/b");
        let a2 = i.intern("http://example.org/a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "http://example.org/a");
        assert_eq!(i.resolve(b), "http://example.org/b");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("http://example.org/b"), Some(b));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn survives_table_growth() {
        let mut it = Interner::new();
        let syms: Vec<Symbol> = (0..10_000)
            .map(|n| it.intern(&format!("http://example.org/resource/{n}")))
            .collect();
        assert_eq!(it.len(), 10_000);
        for (n, sym) in syms.iter().enumerate() {
            assert_eq!(it.resolve(*sym), format!("http://example.org/resource/{n}"));
            assert_eq!(
                it.get(&format!("http://example.org/resource/{n}")),
                Some(*sym)
            );
        }
        // Re-interning after growth still dedups.
        assert_eq!(it.intern("http://example.org/resource/123"), syms[123]);
        assert_eq!(it.len(), 10_000);
    }

    #[test]
    fn freeze_preserves_symbols_and_thaw_round_trips() {
        let mut it = Interner::new();
        let a = it.intern("alpha");
        let b = it.intern("beta");
        let frozen = it.freeze();
        assert_eq!(frozen.resolve(a), "alpha");
        assert_eq!(frozen.resolve(b), "beta");
        assert_eq!(frozen.get("beta"), Some(b));
        assert_eq!(frozen.get("gamma"), None);
        assert_eq!(frozen.len(), 2);

        let mut thawed = frozen.thaw();
        assert_eq!(thawed.intern("alpha"), a, "thaw must keep old symbols");
        let c = thawed.intern("gamma");
        assert_ne!(c, a);
        assert_eq!(thawed.resolve(c), "gamma");
    }

    #[test]
    fn frozen_interner_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrozenInterner>();
    }

    #[test]
    fn empty_interner_get_is_none() {
        let it = Interner::new();
        assert_eq!(it.get("anything"), None);
        assert!(it.freeze().is_empty());
    }
}
