//! String interner mapping term text to 30-bit [`Symbol`]s.
//!
//! Interning happens once per distinct string at parse/load time; the hot
//! rewrite path never touches strings, only `u32` symbols. Lookup uses the
//! [FxHash](crate::fxhash) hasher — short IRIs and QName expansions dominate
//! the key distribution and Fx beats SipHash on them by a wide margin.

use crate::fxhash::FxHashMap;
use crate::term::Symbol;

/// Append-only string interner. Symbols are dense indices starting at 0.
#[derive(Default, Debug)]
pub struct Interner {
    map: FxHashMap<Box<str>, u32>,
    // Owned copies of the keys, indexed by symbol. Strings are stored twice
    // (map key + vec slot); this doubles intern-time allocation but keeps the
    // implementation safe and the resolve path a plain slice index.
    strings: Vec<Box<str>>,
}

impl Interner {
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `s`, returning its symbol. O(1) amortized; allocates only the
    /// first time a string is seen.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(self.strings.len()).expect("interner overflow");
        assert!(id <= Symbol::MAX, "interner exceeded 2^30 symbols");
        let owned: Box<str> = s.into();
        self.strings.push(owned.clone());
        self.map.insert(owned, id);
        Symbol(id)
    }

    /// Look up a symbol minted by this interner.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Symbol for `s` if it has already been interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).map(|&id| Symbol(id))
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedups_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("http://example.org/a");
        let b = i.intern("http://example.org/b");
        let a2 = i.intern("http://example.org/a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "http://example.org/a");
        assert_eq!(i.resolve(b), "http://example.org/b");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("http://example.org/b"), Some(b));
        assert_eq!(i.get("missing"), None);
    }
}
