//! BGP rewriting: apply an [`AlignmentStore`] to a query.
//!
//! Both rewriters implement the same semantics; they differ only in how rule
//! candidates are found per triple pattern:
//!
//! * [`IndexedRewriter`] — O(1) hash lookups against the store's entity and
//!   predicate indexes. This is the production path.
//! * [`LinearRewriter`] — scans the full rule list per pattern, the way a
//!   naive implementation would. Kept behind the same [`Rewriter`] trait as
//!   the benchmark baseline.
//!
//! Semantics (single pass, in pattern order):
//! 1. Entity alignments are applied to the subject, predicate, and object of
//!    the pattern. The first rule in id order for a given source term wins.
//! 2. The (possibly substituted) pattern is matched against predicate
//!    templates; the first matching rule in id order replaces the pattern
//!    with its instantiated right-hand side. Variables introduced by the
//!    template (present in rhs, absent from lhs) are renamed to fresh
//!    variables that cannot capture any variable of the query.
//!
//! Rewriting is not run to a fixpoint: rule sets are assumed to be composed
//! offline (paper §4), so output vocabulary is never itself rewritten.

use crate::align::{AlignmentStore, Rule};
use crate::fxhash::FxHashSet;
use crate::interner::Interner;
use crate::pattern::{Bgp, Query, SelectList, TriplePattern};
use crate::term::{Symbol, Term, TermKind};

/// A BGP rewriting strategy. Object-safe so benchmarks can treat strategies
/// uniformly.
pub trait Rewriter {
    /// Human-readable strategy name for benchmark output.
    fn name(&self) -> &'static str;

    /// Rewrite a bare BGP. `interner` must be the one the BGP's terms were
    /// minted into; it is mutable because template expansion may intern
    /// fresh variable names.
    fn rewrite_bgp(&self, bgp: &Bgp, interner: &mut Interner) -> Bgp;

    /// Rewrite a full query: the projection is preserved, the BGP is
    /// rewritten. Projection variables are reserved so fresh variables can
    /// never collide with them even if they do not occur in the BGP.
    fn rewrite_query(&self, query: &Query, interner: &mut Interner) -> Query;
}

/// Production rewriter: hash-indexed candidate lookup.
pub struct IndexedRewriter<'s> {
    store: &'s AlignmentStore,
}

impl<'s> IndexedRewriter<'s> {
    pub fn new(store: &'s AlignmentStore) -> Self {
        IndexedRewriter { store }
    }
}

/// Baseline rewriter: full rule-list scan per lookup.
pub struct LinearRewriter<'s> {
    store: &'s AlignmentStore,
}

impl<'s> LinearRewriter<'s> {
    pub fn new(store: &'s AlignmentStore) -> Self {
        LinearRewriter { store }
    }
}

/// How a strategy finds rule candidates. The surrounding engine
/// ([`rewrite_bgp_with`]) is shared, which is what guarantees the two
/// rewriters are semantically identical.
trait RuleLookup {
    fn entity_target(&self, t: Term) -> Option<Term>;
    /// First predicate rule (in id order) whose lhs matches `tp`.
    fn matching_template(&self, tp: TriplePattern) -> Option<(TriplePattern, &[TriplePattern])>;
}

impl RuleLookup for IndexedRewriter<'_> {
    #[inline]
    fn entity_target(&self, t: Term) -> Option<Term> {
        self.store.entity_target(t)
    }

    #[inline]
    fn matching_template(&self, tp: TriplePattern) -> Option<(TriplePattern, &[TriplePattern])> {
        let rules = self.store.rules();
        for &id in self.store.predicate_candidates(tp.p) {
            if let Rule::Predicate { lhs, rhs } = &rules[id as usize] {
                if lhs_matches(*lhs, tp) {
                    return Some((*lhs, rhs));
                }
            }
        }
        None
    }
}

impl RuleLookup for LinearRewriter<'_> {
    fn entity_target(&self, t: Term) -> Option<Term> {
        for rule in self.store.rules() {
            if let Rule::Entity { from, to } = rule {
                if *from == t {
                    return Some(*to);
                }
            }
        }
        None
    }

    fn matching_template(&self, tp: TriplePattern) -> Option<(TriplePattern, &[TriplePattern])> {
        for rule in self.store.rules() {
            if let Rule::Predicate { lhs, rhs } = rule {
                if lhs_matches(*lhs, tp) {
                    return Some((*lhs, rhs));
                }
            }
        }
        None
    }
}

/// Does template lhs match the query pattern? Template variables match
/// anything (consistently — a repeated lhs variable must bind one term);
/// concrete template terms require equality.
#[inline]
fn lhs_matches(lhs: TriplePattern, tp: TriplePattern) -> bool {
    if lhs.p != tp.p && !lhs.p.is_var() {
        return false;
    }
    for (l, q) in [(lhs.s, tp.s), (lhs.o, tp.o)] {
        if !l.is_var() && l != q {
            return false;
        }
    }
    // Repeated-variable consistency across the three positions.
    let pairs = [(lhs.s, tp.s), (lhs.p, tp.p), (lhs.o, tp.o)];
    for i in 0..3 {
        for j in (i + 1)..3 {
            let (li, qi) = pairs[i];
            let (lj, qj) = pairs[j];
            if li.is_var() && li == lj && qi != qj {
                return false;
            }
        }
    }
    true
}

/// Fresh-variable generator for template-introduced variables. Names are
/// `g0, g1, …`, skipping any symbol already used as a variable name in the
/// query (or by an earlier fresh variable), so capture is impossible.
struct FreshVars {
    counter: u32,
    used: FxHashSet<Symbol>,
}

impl FreshVars {
    fn reserve_bgp(&mut self, bgp: &Bgp) {
        for tp in &bgp.patterns {
            for t in tp.terms() {
                if t.is_var() {
                    self.used.insert(t.symbol());
                }
            }
        }
    }

    fn next(&mut self, interner: &mut Interner) -> Term {
        use std::fmt::Write;
        let mut name = String::with_capacity(8);
        loop {
            name.clear();
            write!(name, "g{}", self.counter).unwrap();
            self.counter += 1;
            let sym = interner.intern(&name);
            if self.used.insert(sym) {
                return Term::var(sym);
            }
        }
    }
}

/// Instantiate a matched template: rhs with lhs-bound variables replaced by
/// the query pattern's terms and unbound rhs variables replaced by fresh
/// variables (consistently within this application).
fn instantiate_template(
    lhs: TriplePattern,
    rhs: &[TriplePattern],
    tp: TriplePattern,
    fresh: &mut FreshVars,
    interner: &mut Interner,
    out: &mut Vec<TriplePattern>,
) {
    // Bindings from lhs variables to the query pattern's terms. At most
    // three entries, so a flat array beats a hash map.
    let mut bindings: [(Symbol, Term); 3] = [(Symbol(u32::MAX), tp.s); 3];
    let mut n_bindings = 0;
    for (l, q) in [(lhs.s, tp.s), (lhs.p, tp.p), (lhs.o, tp.o)] {
        if l.is_var() {
            bindings[n_bindings] = (l.symbol(), q);
            n_bindings += 1;
        }
    }
    // Fresh renames for rhs-introduced existentials, consistent across the
    // rhs of this one application. Keyed by whole Term (not Symbol) because
    // a blank `_:b` and a variable `?b` share an interned string but must
    // rename independently.
    let mut renames: Vec<(Term, Term)> = Vec::new();
    let mut subst = |t: Term, fresh: &mut FreshVars, interner: &mut Interner| -> Term {
        match t.kind() {
            TermKind::Var => {
                let sym = t.symbol();
                for &(s, replacement) in &bindings[..n_bindings] {
                    if s == sym {
                        return replacement;
                    }
                }
            }
            // A blank node in a BGP is a non-distinguished variable, so a
            // template blank is an existential too: it must be freshened
            // per application (sharing one label across expansions would
            // force unrelated solutions to co-bind) and must never capture
            // a blank the query itself uses. Renaming it to a fresh
            // variable is semantically equivalent.
            TermKind::Blank => {}
            _ => return t,
        }
        for &(s, replacement) in &renames {
            if s == t {
                return replacement;
            }
        }
        let f = fresh.next(interner);
        renames.push((t, f));
        f
    };
    for template in rhs {
        out.push(TriplePattern::new(
            subst(template.s, fresh, interner),
            subst(template.p, fresh, interner),
            subst(template.o, fresh, interner),
        ));
    }
}

/// The shared rewrite engine: entity substitution then template expansion,
/// per pattern, in order. `reserved` seeds the fresh-variable exclusion set
/// (e.g. projection variables not occurring in the BGP).
fn rewrite_bgp_with<L: RuleLookup>(
    lookup: &L,
    bgp: &Bgp,
    reserved: &[Term],
    interner: &mut Interner,
) -> Bgp {
    let mut fresh = FreshVars {
        counter: 0,
        used: FxHashSet::default(),
    };
    fresh.reserve_bgp(bgp);
    for t in reserved {
        if t.is_var() {
            fresh.used.insert(t.symbol());
        }
    }
    let mut out = Vec::with_capacity(bgp.patterns.len());
    for &tp in &bgp.patterns {
        let substituted = TriplePattern::new(
            lookup.entity_target(tp.s).unwrap_or(tp.s),
            lookup.entity_target(tp.p).unwrap_or(tp.p),
            lookup.entity_target(tp.o).unwrap_or(tp.o),
        );
        match lookup.matching_template(substituted) {
            Some((lhs, rhs)) => {
                instantiate_template(lhs, rhs, substituted, &mut fresh, interner, &mut out)
            }
            None => out.push(substituted),
        }
    }
    Bgp::new(out)
}

fn rewrite_query_with<L: RuleLookup>(lookup: &L, query: &Query, interner: &mut Interner) -> Query {
    let reserved: &[Term] = match &query.select {
        SelectList::Star => &[],
        SelectList::Vars(vars) => vars,
    };
    Query {
        select: query.select.clone(),
        bgp: rewrite_bgp_with(lookup, &query.bgp, reserved, interner),
    }
}

impl Rewriter for IndexedRewriter<'_> {
    fn name(&self) -> &'static str {
        "indexed"
    }

    fn rewrite_bgp(&self, bgp: &Bgp, interner: &mut Interner) -> Bgp {
        rewrite_bgp_with(self, bgp, &[], interner)
    }

    fn rewrite_query(&self, query: &Query, interner: &mut Interner) -> Query {
        rewrite_query_with(self, query, interner)
    }
}

impl Rewriter for LinearRewriter<'_> {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn rewrite_bgp(&self, bgp: &Bgp, interner: &mut Interner) -> Bgp {
        rewrite_bgp_with(self, bgp, &[], interner)
    }

    fn rewrite_query(&self, query: &Query, interner: &mut Interner) -> Query {
        rewrite_query_with(self, query, interner)
    }
}
