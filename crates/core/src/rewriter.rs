//! Group-graph-pattern rewriting: apply an [`AlignmentStore`] to a query.
//!
//! Both rewriters implement the same semantics; they differ only in how rule
//! candidates are found per triple pattern:
//!
//! * [`IndexedRewriter`] — O(1) lookups against the store's entity and
//!   predicate indexes: dense direct-indexed dispatch tables after
//!   [`AlignmentStore::build_dense_index`], hash maps before. This is the
//!   production path.
//! * [`LinearRewriter`] — scans the full rule list per pattern, the way a
//!   naive implementation would. Kept behind the same [`Rewriter`] trait as
//!   the benchmark baseline.
//!
//! # Semantics
//!
//! The query's [`GroupPattern`] tree is rewritten **recursively**: nested
//! groups, `OPTIONAL` bodies, and every `UNION` branch are rewritten in
//! place with the same rules, and `FILTER` expressions get entity
//! substitution applied to their IRI/literal operands. Per triple pattern
//! (in pattern order):
//!
//! 1. Entity alignments are applied to the subject, predicate, and object.
//!    The first entity rule in id order for a given source term wins.
//! 2. The (possibly substituted) pattern is matched against **all**
//!    predicate templates, in rule-id order:
//!    * no match — the pattern passes through unchanged;
//!    * exactly one match — the instantiated right-hand side replaces the
//!      pattern inline, extending the current triples run;
//!    * two or more matches — the paper's union semantics (Correndo et al.
//!      EDBT 2010, §4): the pattern becomes a `UNION` whose branches are
//!      the instantiated templates, **one branch per matching rule, in rule
//!      id order**. Nothing is silently dropped.
//!
//!    Complex rules ([`Rule::Complex`]) take one extra step: each
//!    candidate's guard is statically evaluated against the lhs bindings
//!    **before** the arity above is decided (three-valued — a statically
//!    false guard removes the rule from the candidate set, possibly
//!    collapsing a would-be UNION to a single match or a pass-through; an
//!    undecidable guard lets the rule fire and emits the instantiated
//!    guard as a residual `FILTER` for the endpoint to decide). A firing
//!    complex rule appends its body chain exactly like a flat rhs and
//!    emits its template FILTER constraints — the value-transform carriers
//!    — alongside the instantiated triples.
//!
//!    Variables introduced by a template (present in rhs, absent from lhs)
//!    become [`TermKind::Fresh`](crate::term::TermKind::Fresh) terms
//!    numbered by a per-rewrite counter — no string is interned and no name
//!    lookup happens, because a fresh term is structurally unequal to every
//!    parsed variable. Counters are minted left-to-right across the whole
//!    tree, so branch contents are deterministic and independent of thread
//!    scheduling.
//!
//! Rewriting is not run to a fixpoint: rule sets are assumed to be composed
//! offline (paper §4), so output vocabulary is never itself rewritten.
//!
//! # Concurrency and allocation
//!
//! Steady-state rewriting needs only `&self` over shared immutable state:
//! the [`Rewriter`] methods take no interner, [`AlignmentStore`] and the
//! rewriters are `Send + Sync`, and the `*_into` entry points write into a
//! caller-owned [`RewriteScratch`] whose buffers are reused across calls.
//! The rewritten group tree itself lives in the scratch as a flattened,
//! index-linked buffer ([`GroupPattern`]'s four flat `Vec`s of `Copy`
//! nodes — no per-node boxing), so after warm-up a `rewrite_query_into`
//! call performs **zero heap allocations** even when it expands UNION
//! branches and copies FILTER trees (asserted by `tests/alloc_free.rs`).
//!
//! Sharing one rule set across worker threads is an `Arc` away:
//!
//! ```
//! use std::sync::Arc;
//! use std::thread;
//! use sparql_rewrite_core::*;
//!
//! let mut interner = Interner::new();
//! let query = parse_query("SELECT * WHERE { ?s <http://src/p> ?o }", &mut interner).unwrap();
//! let mut store = AlignmentStore::new();
//! let lhs = parse_bgp("?a <http://src/p> ?b", &mut interner).unwrap().patterns[0];
//! let rhs = parse_bgp("?a <http://tgt/p> ?m . ?m <http://tgt/q> ?b", &mut interner)
//!     .unwrap()
//!     .patterns;
//! store.add_predicate(lhs, rhs).unwrap();
//!
//! // Build phase over: freeze the interner, share everything read-only.
//! let rewriter: Arc<IndexedRewriter> = Arc::new(IndexedRewriter::new(Arc::new(store)));
//! let frozen: Arc<FrozenInterner> = Arc::new(interner.freeze());
//!
//! let rendered: Vec<String> = thread::scope(|scope| {
//!     (0..4)
//!         .map(|_| {
//!             let rewriter = Arc::clone(&rewriter);
//!             let frozen = Arc::clone(&frozen);
//!             let query = &query;
//!             scope.spawn(move || {
//!                 let mut scratch = RewriteScratch::new();
//!                 rewriter.rewrite_query_into(query, &mut scratch);
//!                 scratch.to_query().display(&*frozen).to_string()
//!             })
//!         })
//!         .collect::<Vec<_>>()
//!         .into_iter()
//!         .map(|h| h.join().unwrap())
//!         .collect()
//! });
//! assert!(rendered.iter().all(|r| r == &rendered[0]));
//! assert!(rendered[0].contains("<http://tgt/q>"));
//! ```

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use crate::align::{AlignmentStore, Rule, TemplateRef, NO_EXPR};
use crate::pattern::{
    Bgp, ChainBuilder, CmpOp, ExprNode, GroupPattern, PatternNode, Query, QueryRef, SelectList,
    TriplePattern,
};
use crate::term::{Symbol, Term, TermKind};

/// Structured failure of a capped rewrite. The infallible [`Rewriter`]
/// methods run uncapped and can never observe one; the `try_*` entry points
/// surface it instead of letting a hostile or pathological query grow the
/// scratch without bound.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// Template expansion would emit more UNION branches than
    /// [`RewriteLimits::max_union_branches`] allows. `required` is the
    /// branch count at the moment the cap was crossed (counting only
    /// branches minted by multi-template expansion, not UNIONs the input
    /// already contained).
    UnionBranchesExceeded { cap: u32, required: u32 },
    /// Instantiating the templates that fire for one source pattern would
    /// emit more output (triples plus FILTER constraints, residual guard
    /// included) than [`RewriteLimits::max_template_size`] allows —
    /// chain-rule bodies multiply with UNION arity, and this bounds the
    /// product per pattern. `required` is the total the firing candidate
    /// set would have emitted.
    TemplateSizeExceeded { cap: u32, required: u32 },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::UnionBranchesExceeded { cap, required } => write!(
                f,
                "rewrite expansion exceeds the UNION branch cap: {required} branches needed, cap is {cap}"
            ),
            RewriteError::TemplateSizeExceeded { cap, required } => write!(
                f,
                "template instantiation exceeds the per-pattern size cap: {required} nodes needed, cap is {cap}"
            ),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Resource limits for one rewrite call, enforced by the `try_*` entry
/// points of [`Rewriter`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct RewriteLimits {
    /// Maximum number of UNION branches multi-template expansion may mint
    /// across one whole rewrite (paper-§4 expansion is one branch per
    /// matching rule per pattern, so a query whose patterns each match many
    /// templates grows multiplicatively in output size; this bounds it).
    pub max_union_branches: u32,
    /// Maximum output size (instantiated triples + emitted FILTER
    /// constraints, residual guard included) the templates firing for one
    /// source pattern may produce. Chain rules multiply their body length
    /// into every UNION branch, so this caps the per-pattern product that
    /// `max_union_branches` (which only counts branches) cannot see.
    pub max_template_size: u32,
}

impl RewriteLimits {
    /// No limits — the behavior of the infallible entry points.
    #[inline]
    pub fn unbounded() -> RewriteLimits {
        RewriteLimits {
            max_union_branches: u32::MAX,
            max_template_size: u32::MAX,
        }
    }

    /// Cap expansion-minted UNION branches at `cap`.
    #[inline]
    pub fn with_union_branch_cap(cap: u32) -> RewriteLimits {
        RewriteLimits {
            max_union_branches: cap,
            ..RewriteLimits::unbounded()
        }
    }

    /// Cap per-pattern instantiated template size at `cap`.
    #[inline]
    pub fn with_template_size_cap(cap: u32) -> RewriteLimits {
        RewriteLimits {
            max_template_size: cap,
            ..RewriteLimits::unbounded()
        }
    }
}

impl Default for RewriteLimits {
    fn default() -> RewriteLimits {
        RewriteLimits::unbounded()
    }
}

/// Caller-owned scratch space for allocation-free rewriting.
///
/// Holds the output buffers and the per-rewrite rename state. Every
/// `rewrite_*_into` call clears and refills it; buffer capacity is retained,
/// so repeated calls with a warmed scratch never touch the allocator. The
/// rewritten group tree is stored flattened ([`GroupPattern`]) — nodes,
/// sibling links, triples, and filter expressions in four flat `Vec`s.
#[derive(Default, Debug)]
pub struct RewriteScratch {
    /// Rewritten group pattern of the last call.
    pattern: GroupPattern,
    /// Projection of the last `rewrite_query_into` call (empty for `*`).
    select: Vec<Term>,
    select_star: bool,
    /// Existential renames of the template application in progress. Keyed by
    /// whole `Term` (not `Symbol`) because a blank `_:b` and a variable `?b`
    /// share an interned string but must rename independently.
    renames: Vec<(Term, Term)>,
    /// Ids of the predicate rules matching the triple pattern in progress,
    /// in rule-id order — the future UNION branches.
    match_ids: Vec<u32>,
    /// Next fresh-variable counter for this rewrite call.
    fresh_next: u32,
    /// Counter value after the pre-pass over the input (i.e. one past the
    /// largest fresh counter the input already carried); newly minted
    /// existentials are `fresh_start..fresh_next`.
    fresh_start: u32,
    /// UNION branches minted by multi-template expansion so far this call.
    branches_emitted: u32,
    /// Cap on `branches_emitted` for this call (set from [`RewriteLimits`]
    /// at entry; `u32::MAX` on the infallible paths).
    branch_limit: u32,
    /// Per-pattern instantiated-template-size cap for this call (from
    /// [`RewriteLimits::max_template_size`]; `u32::MAX` when infallible).
    tmpl_size_limit: u32,
}

impl RewriteScratch {
    pub fn new() -> RewriteScratch {
        RewriteScratch::default()
    }

    /// The rewritten group pattern of the last `rewrite_*_into` call.
    #[inline]
    pub fn pattern(&self) -> &GroupPattern {
        &self.pattern
    }

    /// All rewritten triple patterns of the last call, in rendering order
    /// across the whole tree (UNION branches included).
    #[inline]
    pub fn patterns(&self) -> &[TriplePattern] {
        &self.pattern.triples
    }

    /// Projection of the last `rewrite_query_into` call: `None` for
    /// `SELECT *`, otherwise the projected variables.
    #[inline]
    pub fn select(&self) -> Option<&[Term]> {
        if self.select_star {
            None
        } else {
            Some(&self.select)
        }
    }

    /// Number of fresh variables the last call introduced — fresh terms the
    /// input already carried (when re-rewriting a prior output) are not
    /// counted.
    #[inline]
    pub fn fresh_count(&self) -> u32 {
        self.fresh_next - self.fresh_start
    }

    /// Copy the last result out as an owned [`GroupPattern`] (allocates).
    pub fn to_pattern(&self) -> GroupPattern {
        self.pattern.clone()
    }

    /// Copy the last result out as an owned [`Query`] (allocates). Only
    /// meaningful after `rewrite_query_into`.
    pub fn to_query(&self) -> Query {
        Query {
            select: if self.select_star {
                SelectList::Star
            } else {
                SelectList::Vars(self.select.clone())
            },
            pattern: self.to_pattern(),
        }
    }
}

/// A rewriting strategy. Object-safe so benchmarks can treat strategies
/// uniformly. All methods take `&self` and no interner: fresh variables are
/// structural ([`TermKind::Fresh`](crate::term::TermKind::Fresh)), so the
/// hot path never mints strings.
pub trait Rewriter {
    /// Human-readable strategy name for benchmark output.
    fn name(&self) -> &'static str;

    /// Fallible core of [`Rewriter::rewrite_bgp_into`]: enforce `limits`,
    /// returning a [`RewriteError`] (scratch contents unspecified but safe)
    /// when expansion would cross a cap.
    fn try_rewrite_bgp_into(
        &self,
        bgp: &Bgp,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError>;

    /// Fallible core of [`Rewriter::rewrite_pattern_into`].
    fn try_rewrite_pattern_into(
        &self,
        pattern: &GroupPattern,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError>;

    /// Fallible core of [`Rewriter::rewrite_ref_into`].
    fn try_rewrite_ref_into(
        &self,
        query: QueryRef<'_>,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError>;

    /// Rewrite a bare BGP into `scratch` (allocation-free once warm). The
    /// result is a group pattern: multi-template matches expand to UNION
    /// nodes even when the input was flat.
    fn rewrite_bgp_into(&self, bgp: &Bgp, scratch: &mut RewriteScratch) {
        self.try_rewrite_bgp_into(bgp, scratch, RewriteLimits::unbounded())
            .expect("unbounded rewrite cannot fail");
    }

    /// Rewrite a full group graph pattern into `scratch`, recursively
    /// (allocation-free once warm).
    fn rewrite_pattern_into(&self, pattern: &GroupPattern, scratch: &mut RewriteScratch) {
        self.try_rewrite_pattern_into(pattern, scratch, RewriteLimits::unbounded())
            .expect("unbounded rewrite cannot fail");
    }

    /// Rewrite a borrowed query view into `scratch`: the projection is
    /// copied into the scratch, the pattern is rewritten (allocation-free
    /// once warm). This is the serve-pipeline entry point — the view can
    /// borrow straight out of a [`crate::parser::ParseScratch`], so no owned
    /// [`Query`] is ever assembled between parse and rewrite.
    fn rewrite_ref_into(&self, query: QueryRef<'_>, scratch: &mut RewriteScratch) {
        self.try_rewrite_ref_into(query, scratch, RewriteLimits::unbounded())
            .expect("unbounded rewrite cannot fail");
    }

    /// Rewrite a full query into `scratch` (allocation-free once warm).
    fn rewrite_query_into(&self, query: &Query, scratch: &mut RewriteScratch) {
        self.rewrite_ref_into(query.as_ref(), scratch);
    }

    /// Convenience wrapper allocating a fresh output pattern.
    fn rewrite_bgp(&self, bgp: &Bgp) -> GroupPattern {
        let mut scratch = RewriteScratch::new();
        self.rewrite_bgp_into(bgp, &mut scratch);
        scratch.pattern
    }

    /// Convenience wrapper allocating a fresh output pattern.
    fn rewrite_pattern(&self, pattern: &GroupPattern) -> GroupPattern {
        let mut scratch = RewriteScratch::new();
        self.rewrite_pattern_into(pattern, &mut scratch);
        scratch.pattern
    }

    /// Convenience wrapper allocating a fresh output query.
    fn rewrite_query(&self, query: &Query) -> Query {
        let mut scratch = RewriteScratch::new();
        self.rewrite_query_into(query, &mut scratch);
        scratch.to_query()
    }
}

/// Production rewriter: hash-indexed candidate lookup.
///
/// Generic over how it holds the store so both phases are cheap to express:
/// borrow for single-threaded use (`IndexedRewriter::new(&store)`), or an
/// [`Arc`] for the shared serve phase (`IndexedRewriter::new(Arc::new(store))`
/// — the default type parameter). `Send + Sync` whenever the holder is.
pub struct IndexedRewriter<S = Arc<AlignmentStore>> {
    store: S,
}

impl<S: Borrow<AlignmentStore>> IndexedRewriter<S> {
    pub fn new(store: S) -> Self {
        IndexedRewriter { store }
    }

    #[inline]
    fn store(&self) -> &AlignmentStore {
        self.store.borrow()
    }
}

/// Baseline rewriter: full rule-list scan per lookup.
pub struct LinearRewriter<S = Arc<AlignmentStore>> {
    store: S,
}

impl<S: Borrow<AlignmentStore>> LinearRewriter<S> {
    pub fn new(store: S) -> Self {
        LinearRewriter { store }
    }

    #[inline]
    fn store(&self) -> &AlignmentStore {
        self.store.borrow()
    }
}

/// How a strategy finds rule candidates. The surrounding engine
/// ([`rewrite_pattern_with`]) is shared, which is what guarantees the two
/// rewriters are semantically identical.
trait RuleLookup {
    fn entity_target(&self, t: Term) -> Option<Term>;

    /// The rule set, for resolving matched rule ids to their templates.
    fn rules(&self) -> &AlignmentStore;

    /// Append the ids of **every** predicate rule whose lhs matches `tp`,
    /// in rule-id order.
    fn collect_matching_templates(&self, tp: TriplePattern, out: &mut Vec<u32>);
}

impl<S: Borrow<AlignmentStore>> RuleLookup for IndexedRewriter<S> {
    #[inline]
    fn entity_target(&self, t: Term) -> Option<Term> {
        self.store().entity_target(t)
    }

    #[inline]
    fn rules(&self) -> &AlignmentStore {
        self.store()
    }

    #[inline]
    fn collect_matching_templates(&self, tp: TriplePattern, out: &mut Vec<u32>) {
        let store = self.store();
        for &id in store.predicate_candidates(tp.p) {
            // `template` reads the dense flat lhs pool when the store is
            // frozen — no `Vec<Rule>` enum chase per candidate.
            if lhs_matches(store.template(id).lhs, tp) {
                out.push(id);
            }
        }
    }
}

impl<S: Borrow<AlignmentStore>> RuleLookup for LinearRewriter<S> {
    fn entity_target(&self, t: Term) -> Option<Term> {
        for rule in self.store().rules() {
            if let Rule::Entity { from, to } = rule {
                if *from == t {
                    return Some(*to);
                }
            }
        }
        None
    }

    #[inline]
    fn rules(&self) -> &AlignmentStore {
        self.store()
    }

    fn collect_matching_templates(&self, tp: TriplePattern, out: &mut Vec<u32>) {
        for (id, rule) in self.store().rules().iter().enumerate() {
            let (Rule::Predicate { lhs, .. } | Rule::Complex { lhs, .. }) = rule else {
                continue;
            };
            if lhs_matches(*lhs, tp) {
                out.push(id as u32);
            }
        }
    }
}

/// Does template lhs match the query pattern? Template variables match
/// anything (consistently — a repeated lhs variable must bind one term);
/// concrete template terms require equality. One pass over the three
/// positions: each is either compared for equality (concrete) or, if it is a
/// variable, checked for consistency against the *later* positions that
/// repeat it — so no position is examined twice.
#[inline]
fn lhs_matches(lhs: TriplePattern, tp: TriplePattern) -> bool {
    let l = lhs.terms();
    let q = tp.terms();
    for i in 0..3 {
        if l[i].is_var() {
            for j in (i + 1)..3 {
                if l[j] == l[i] && q[j] != q[i] {
                    return false;
                }
            }
        } else if l[i] != q[i] {
            return false;
        }
    }
    true
}

/// Bindings from lhs variables to the query pattern's terms. At most three
/// entries, so a flat array beats a hash map.
#[inline]
fn bind_lhs(lhs: TriplePattern, tp: TriplePattern) -> ([(Symbol, Term); 3], usize) {
    let mut bindings: [(Symbol, Term); 3] = [(Symbol(u32::MAX), tp.s); 3];
    let mut n_bindings = 0;
    for (l, q) in [(lhs.s, tp.s), (lhs.p, tp.p), (lhs.o, tp.o)] {
        if l.is_var() {
            bindings[n_bindings] = (l.symbol(), q);
            n_bindings += 1;
        }
    }
    (bindings, n_bindings)
}

/// Apply one template application's substitution to a term: lhs-bound
/// variables resolve through `bindings`; everything else variable-like
/// (unbound template variables and blank nodes) takes the rename path.
///
/// A blank node in a BGP is a non-distinguished variable, so a template
/// blank is an existential too: it must be freshened per application
/// (sharing one label across expansions would force unrelated solutions to
/// co-bind) and must never capture a blank the query itself uses. Renaming
/// it to a fresh variable is semantically equivalent.
fn subst(
    t: Term,
    bindings: &[(Symbol, Term)],
    renames: &mut Vec<(Term, Term)>,
    fresh_next: &mut u32,
) -> Term {
    match t.kind() {
        TermKind::Var => {
            let sym = t.symbol();
            for &(s, replacement) in bindings {
                if s == sym {
                    return replacement;
                }
            }
        }
        TermKind::Blank => {}
        _ => return t,
    }
    for &(s, replacement) in renames.iter() {
        if s == t {
            return replacement;
        }
    }
    let f = Term::fresh(*fresh_next);
    *fresh_next += 1;
    renames.push((t, f));
    f
}

/// Instantiate a matched template's triple body: lhs-bound variables
/// replaced by the query pattern's terms, unbound variables (and blank
/// nodes) replaced by fresh terms, consistently within this application.
/// Clears `renames` first — the rename map it leaves behind is what keeps a
/// subsequent [`instantiate_residuals`] for the *same* application
/// consistent with the body.
fn instantiate_triples(
    bindings: &[(Symbol, Term)],
    triples: &[TriplePattern],
    out: &mut Vec<TriplePattern>,
    renames: &mut Vec<(Term, Term)>,
    fresh_next: &mut u32,
) {
    // Renames are per-application: consistent across this body, reset for
    // the next expansion (the buffer's capacity is what the scratch
    // retains).
    renames.clear();
    for template in triples {
        out.push(TriplePattern::new(
            subst(template.s, bindings, renames, fresh_next),
            subst(template.p, bindings, renames, fresh_next),
            subst(template.o, bindings, renames, fresh_next),
        ));
    }
}

/// Three-valued result of deciding a guard statically.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Truth {
    True,
    False,
    Unknown,
}

/// Statically evaluate a template guard against the lhs bindings (Kleene
/// three-valued logic). `=` / `!=` over two operands that resolve to
/// concrete IRI/literal terms is decided by term identity — the engine's
/// equality is syntactic, the same notion BGP matching uses. Ordered
/// comparisons, unresolved variables, and bare term operands are `Unknown`:
/// the rule still fires and the instantiated guard rides along as a
/// residual `FILTER` for the endpoint, which owns value semantics. A pure
/// function of the pattern's terms, so rewriting stays deterministic and
/// cache-safe.
fn eval_guard(exprs: &[ExprNode], root: u32, bindings: &[(Symbol, Term)]) -> Truth {
    // Resolve a comparison operand to a concrete term, if statically known.
    let resolve = |e: u32| -> Option<Term> {
        let ExprNode::Term(mut t) = exprs[e as usize] else {
            return None;
        };
        if t.kind() == TermKind::Var {
            let sym = t.symbol();
            t = bindings.iter().find(|&&(s, _)| s == sym).map(|&(_, r)| r)?;
        }
        matches!(t.kind(), TermKind::Iri | TermKind::Literal).then_some(t)
    };
    match exprs[root as usize] {
        ExprNode::Term(_) => Truth::Unknown,
        ExprNode::Cmp(op, l, r) => {
            if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                return Truth::Unknown;
            }
            match (resolve(l), resolve(r)) {
                (Some(a), Some(b)) => {
                    if (a == b) == matches!(op, CmpOp::Eq) {
                        Truth::True
                    } else {
                        Truth::False
                    }
                }
                _ => Truth::Unknown,
            }
        }
        ExprNode::And(l, r) => match (
            eval_guard(exprs, l, bindings),
            eval_guard(exprs, r, bindings),
        ) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        },
        ExprNode::Or(l, r) => match (
            eval_guard(exprs, l, bindings),
            eval_guard(exprs, r, bindings),
        ) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        },
        ExprNode::Not(c) => match eval_guard(exprs, c, bindings) {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        },
    }
}

/// The guard verdict for one candidate template against one query pattern.
/// Unconditional templates (flat rules, or complex rules without a guard)
/// are trivially `True`.
#[inline]
fn template_truth(tmpl: &TemplateRef<'_>, bindings: &[(Symbol, Term)]) -> Truth {
    if tmpl.guard == NO_EXPR {
        Truth::True
    } else {
        eval_guard(tmpl.exprs, tmpl.guard, bindings)
    }
}

/// Number of residual FILTER constraints this application will emit: the
/// template's own filters, plus the guard when it could not be decided.
#[inline]
fn residual_count(tmpl: &TemplateRef<'_>, truth: Truth) -> u32 {
    tmpl.filters.len() as u32 + (truth == Truth::Unknown) as u32
}

/// Instantiate a firing template's residual FILTER constraints: import the
/// template expression pool into the output (one pass, child indices
/// rebased, leaves substituted with the same bindings/renames the body
/// used) and chain one `FILTER` node per residual root. Call only when
/// `residual_count > 0`, and only after [`instantiate_triples`] for the
/// same application — the body's renames are what name the existentials the
/// filters constrain.
fn instantiate_residuals(
    tmpl: &TemplateRef<'_>,
    truth: Truth,
    bindings: &[(Symbol, Term)],
    pattern: &mut GroupPattern,
    renames: &mut Vec<(Term, Term)>,
    fresh_next: &mut u32,
    chain: &mut ChainBuilder,
) {
    let base = pattern.import_exprs(tmpl.exprs, |t| subst(t, bindings, renames, fresh_next));
    if truth == Truth::Unknown {
        let node = pattern.push_node(PatternNode::Filter {
            expr: base + tmpl.guard,
        });
        chain.push(pattern, node);
    }
    for &f in tmpl.filters {
        let node = pattern.push_node(PatternNode::Filter { expr: base + f });
        chain.push(pattern, node);
    }
}

/// Rewrite one run of triple patterns, emitting output nodes into `chain`:
/// maximal triples runs, interrupted by a UNION node for every pattern that
/// matched two or more templates (one branch per template, rule-id order).
fn rewrite_run<L: RuleLookup>(
    lookup: &L,
    triples: &[TriplePattern],
    scratch: &mut RewriteScratch,
    chain: &mut ChainBuilder,
) -> Result<(), RewriteError> {
    let mut run_start = scratch.pattern.triples.len() as u32;
    // Close the triples run accumulated since `run_start`, if non-empty.
    fn flush(run_start: u32, scratch: &mut RewriteScratch, chain: &mut ChainBuilder) {
        let end = scratch.pattern.triples.len() as u32;
        if end > run_start {
            let node = scratch.pattern.push_node(PatternNode::Triples {
                start: run_start,
                len: end - run_start,
            });
            chain.push(&mut scratch.pattern, node);
        }
    }
    // `match_ids` is moved out of the scratch for the duration of the
    // borrow-heavy loop below; `mem::take` leaves an unallocated empty Vec
    // behind and the capacity-bearing buffer is put back afterwards, so the
    // steady state still allocates nothing.
    let mut ids = std::mem::take(&mut scratch.match_ids);
    for &tp in triples {
        let substituted = TriplePattern::new(
            lookup.entity_target(tp.s).unwrap_or(tp.s),
            lookup.entity_target(tp.p).unwrap_or(tp.p),
            lookup.entity_target(tp.o).unwrap_or(tp.o),
        );
        ids.clear();
        lookup.collect_matching_templates(substituted, &mut ids);
        // Guard pre-pass: drop candidates whose guard is statically false
        // *before* match arity is decided — a guard miss can collapse a
        // would-be UNION into a single inline expansion, or into a plain
        // pass-through. The same pass sums what the survivors will emit,
        // enforcing the per-pattern template-size cap.
        let mut tmpl_size: u32 = 0;
        ids.retain(|&id| {
            let tmpl = lookup.rules().template(id);
            let (bindings, nb) = bind_lhs(tmpl.lhs, substituted);
            let truth = template_truth(&tmpl, &bindings[..nb]);
            if truth == Truth::False {
                return false;
            }
            tmpl_size = tmpl_size
                .saturating_add(tmpl.triples.len() as u32)
                .saturating_add(residual_count(&tmpl, truth));
            true
        });
        if tmpl_size > scratch.tmpl_size_limit {
            // Put the id buffer back before bailing so the scratch keeps
            // its capacity for the next (possibly uncapped) call.
            scratch.match_ids = ids;
            return Err(RewriteError::TemplateSizeExceeded {
                cap: scratch.tmpl_size_limit,
                required: tmpl_size,
            });
        }
        match ids.as_slice() {
            [] => scratch.pattern.triples.push(substituted),
            [id] => {
                let tmpl = lookup.rules().template(*id);
                let (bindings, nb) = bind_lhs(tmpl.lhs, substituted);
                let truth = template_truth(&tmpl, &bindings[..nb]);
                instantiate_triples(
                    &bindings[..nb],
                    tmpl.triples,
                    &mut scratch.pattern.triples,
                    &mut scratch.renames,
                    &mut scratch.fresh_next,
                );
                if residual_count(&tmpl, truth) > 0 {
                    // The instantiated body extended the current run; close
                    // it (body included), chain the FILTER nodes as
                    // siblings, and start a fresh run after them.
                    flush(run_start, scratch, chain);
                    let RewriteScratch {
                        pattern,
                        renames,
                        fresh_next,
                        ..
                    } = scratch;
                    instantiate_residuals(
                        &tmpl,
                        truth,
                        &bindings[..nb],
                        pattern,
                        renames,
                        fresh_next,
                        chain,
                    );
                    run_start = scratch.pattern.triples.len() as u32;
                }
            }
            many => {
                // Paper §4: several applicable alignments ⇒ the union of
                // the instantiated templates, in rule-id order.
                let required = scratch.branches_emitted.saturating_add(many.len() as u32);
                if required > scratch.branch_limit {
                    // Put the id buffer back before bailing so the scratch
                    // keeps its capacity for the next (possibly uncapped)
                    // call.
                    scratch.match_ids = ids;
                    return Err(RewriteError::UnionBranchesExceeded {
                        cap: scratch.branch_limit,
                        required,
                    });
                }
                scratch.branches_emitted = required;
                flush(run_start, scratch, chain);
                let mut branches = ChainBuilder::new();
                for &id in many {
                    let tmpl = lookup.rules().template(id);
                    let (bindings, nb) = bind_lhs(tmpl.lhs, substituted);
                    let truth = template_truth(&tmpl, &bindings[..nb]);
                    let branch_start = scratch.pattern.triples.len() as u32;
                    instantiate_triples(
                        &bindings[..nb],
                        tmpl.triples,
                        &mut scratch.pattern.triples,
                        &mut scratch.renames,
                        &mut scratch.fresh_next,
                    );
                    let branch_len = scratch.pattern.triples.len() as u32 - branch_start;
                    let run = scratch.pattern.push_node(PatternNode::Triples {
                        start: branch_start,
                        len: branch_len,
                    });
                    let mut inner = ChainBuilder::new();
                    inner.push(&mut scratch.pattern, run);
                    if residual_count(&tmpl, truth) > 0 {
                        let RewriteScratch {
                            pattern,
                            renames,
                            fresh_next,
                            ..
                        } = scratch;
                        instantiate_residuals(
                            &tmpl,
                            truth,
                            &bindings[..nb],
                            pattern,
                            renames,
                            fresh_next,
                            &mut inner,
                        );
                    }
                    let group = scratch.pattern.push_node(PatternNode::Group {
                        first: inner.first(),
                    });
                    branches.push(&mut scratch.pattern, group);
                }
                let union = scratch.pattern.push_node(PatternNode::Union {
                    first: branches.first(),
                });
                chain.push(&mut scratch.pattern, union);
                run_start = scratch.pattern.triples.len() as u32;
            }
        }
    }
    scratch.match_ids = ids;
    flush(run_start, scratch, chain);
    Ok(())
}

/// Copy a FILTER expression tree into the scratch, applying entity
/// substitution to IRI/literal operands (Ondo et al.: complex alignments
/// need FILTER-level substitution). Variables pass through: BGP rewriting
/// preserves query-variable identity, so filter references stay valid.
fn rewrite_expr<L: RuleLookup>(
    lookup: &L,
    src: &GroupPattern,
    e: u32,
    scratch: &mut RewriteScratch,
) -> u32 {
    let node = match src.exprs[e as usize] {
        ExprNode::Term(t) => ExprNode::Term(lookup.entity_target(t).unwrap_or(t)),
        ExprNode::Cmp(op, l, r) => {
            let l = rewrite_expr(lookup, src, l, scratch);
            let r = rewrite_expr(lookup, src, r, scratch);
            ExprNode::Cmp(op, l, r)
        }
        ExprNode::And(l, r) => {
            let l = rewrite_expr(lookup, src, l, scratch);
            let r = rewrite_expr(lookup, src, r, scratch);
            ExprNode::And(l, r)
        }
        ExprNode::Or(l, r) => {
            let l = rewrite_expr(lookup, src, l, scratch);
            let r = rewrite_expr(lookup, src, r, scratch);
            ExprNode::Or(l, r)
        }
        ExprNode::Not(c) => ExprNode::Not(rewrite_expr(lookup, src, c, scratch)),
    };
    scratch.pattern.push_expr(node)
}

/// Rewrite one non-triples node, returning the output node index.
fn rewrite_node<L: RuleLookup>(
    lookup: &L,
    src: &GroupPattern,
    idx: u32,
    scratch: &mut RewriteScratch,
) -> Result<u32, RewriteError> {
    Ok(match src.nodes[idx as usize] {
        PatternNode::Group { first } => {
            let first = rewrite_children(lookup, src, first, scratch)?;
            scratch.pattern.push_node(PatternNode::Group { first })
        }
        PatternNode::Optional { first } => {
            let first = rewrite_children(lookup, src, first, scratch)?;
            scratch.pattern.push_node(PatternNode::Optional { first })
        }
        PatternNode::Union { first } => {
            let mut branches = ChainBuilder::new();
            for b in src.children_from(first) {
                let out = rewrite_node(lookup, src, b, scratch)?;
                branches.push(&mut scratch.pattern, out);
            }
            scratch.pattern.push_node(PatternNode::Union {
                first: branches.first(),
            })
        }
        PatternNode::Filter { expr } => {
            let expr = rewrite_expr(lookup, src, expr, scratch);
            scratch.pattern.push_node(PatternNode::Filter { expr })
        }
        // A SERVICE body is rewritten with the *same* rule set (the
        // federation layer builds per-endpoint subqueries by rewriting each
        // partition against that endpoint's own store); the endpoint term
        // itself gets entity substitution so an alignment can redirect a
        // federation member.
        PatternNode::Service { endpoint, first } => {
            let first = rewrite_children(lookup, src, first, scratch)?;
            let endpoint = lookup.entity_target(endpoint).unwrap_or(endpoint);
            scratch
                .pattern
                .push_node(PatternNode::Service { endpoint, first })
        }
        // Unreachable from parser output (union branches are groups), but a
        // programmatically built pattern may put a bare run here; wrap its
        // rewrite — which can fan out into run/UNION siblings — in a group.
        PatternNode::Triples { .. } => {
            let mut chain = ChainBuilder::new();
            rewrite_run(lookup, src.run(idx), scratch, &mut chain)?;
            scratch.pattern.push_node(PatternNode::Group {
                first: chain.first(),
            })
        }
    })
}

/// Rewrite a sibling chain, returning the head of the output chain.
fn rewrite_children<L: RuleLookup>(
    lookup: &L,
    src: &GroupPattern,
    first: u32,
    scratch: &mut RewriteScratch,
) -> Result<u32, RewriteError> {
    let mut chain = ChainBuilder::new();
    for ci in src.children_from(first) {
        if matches!(src.nodes[ci as usize], PatternNode::Triples { .. }) {
            rewrite_run(lookup, src.run(ci), scratch, &mut chain)?;
        } else {
            let out = rewrite_node(lookup, src, ci, scratch)?;
            chain.push(&mut scratch.pattern, out);
        }
    }
    Ok(chain.first())
}

/// Reset the scratch and run the fresh-counter pre-pass: newly minted
/// existentials must sit above any fresh counter the input already carries
/// (e.g. when re-rewriting a prior output).
fn begin_rewrite(
    terms: impl Iterator<Item = Term>,
    scratch: &mut RewriteScratch,
    limits: RewriteLimits,
) {
    scratch.pattern.clear();
    scratch.fresh_next = 0;
    scratch.branches_emitted = 0;
    scratch.branch_limit = limits.max_union_branches;
    scratch.tmpl_size_limit = limits.max_template_size;
    for t in terms {
        if t.is_fresh() {
            scratch.fresh_next = scratch.fresh_next.max(t.fresh_index() + 1);
        }
    }
    scratch.fresh_start = scratch.fresh_next;
}

/// The shared recursive rewrite engine over a full group pattern.
fn rewrite_pattern_with<L: RuleLookup>(
    lookup: &L,
    pattern: &GroupPattern,
    scratch: &mut RewriteScratch,
    limits: RewriteLimits,
) -> Result<(), RewriteError> {
    begin_rewrite(pattern.terms(), scratch, limits);
    scratch.pattern.nodes.reserve(pattern.nodes.len());
    scratch.pattern.next.reserve(pattern.next.len());
    scratch.pattern.triples.reserve(pattern.triples.len());
    scratch.pattern.exprs.reserve(pattern.exprs.len());
    let mut chain = ChainBuilder::new();
    for ci in pattern.root_children() {
        if matches!(pattern.nodes[ci as usize], PatternNode::Triples { .. }) {
            rewrite_run(lookup, pattern.run(ci), scratch, &mut chain)?;
        } else {
            let out = rewrite_node(lookup, pattern, ci, scratch)?;
            chain.push(&mut scratch.pattern, out);
        }
    }
    scratch.pattern.root = scratch.pattern.push_node(PatternNode::Group {
        first: chain.first(),
    });
    Ok(())
}

/// Flat-BGP entry point: the input is a single triples run under the root.
fn rewrite_bgp_with<L: RuleLookup>(
    lookup: &L,
    bgp: &Bgp,
    scratch: &mut RewriteScratch,
    limits: RewriteLimits,
) -> Result<(), RewriteError> {
    begin_rewrite(
        bgp.patterns.iter().flat_map(|tp| tp.terms()),
        scratch,
        limits,
    );
    scratch.pattern.triples.reserve(bgp.patterns.len());
    let mut chain = ChainBuilder::new();
    rewrite_run(lookup, &bgp.patterns, scratch, &mut chain)?;
    scratch.pattern.root = scratch.pattern.push_node(PatternNode::Group {
        first: chain.first(),
    });
    Ok(())
}

fn rewrite_query_with<L: RuleLookup>(
    lookup: &L,
    query: QueryRef<'_>,
    scratch: &mut RewriteScratch,
    limits: RewriteLimits,
) -> Result<(), RewriteError> {
    scratch.select.clear();
    match query.select {
        None => scratch.select_star = true,
        Some(vars) => {
            scratch.select_star = false;
            scratch.select.extend_from_slice(vars);
        }
    }
    rewrite_pattern_with(lookup, query.pattern, scratch, limits)
}

impl<S: Borrow<AlignmentStore>> Rewriter for IndexedRewriter<S> {
    fn name(&self) -> &'static str {
        "indexed"
    }

    fn try_rewrite_bgp_into(
        &self,
        bgp: &Bgp,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError> {
        rewrite_bgp_with(self, bgp, scratch, limits)
    }

    fn try_rewrite_pattern_into(
        &self,
        pattern: &GroupPattern,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError> {
        rewrite_pattern_with(self, pattern, scratch, limits)
    }

    fn try_rewrite_ref_into(
        &self,
        query: QueryRef<'_>,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError> {
        rewrite_query_with(self, query, scratch, limits)
    }
}

impl<S: Borrow<AlignmentStore>> Rewriter for LinearRewriter<S> {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn try_rewrite_bgp_into(
        &self,
        bgp: &Bgp,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError> {
        rewrite_bgp_with(self, bgp, scratch, limits)
    }

    fn try_rewrite_pattern_into(
        &self,
        pattern: &GroupPattern,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError> {
        rewrite_pattern_with(self, pattern, scratch, limits)
    }

    fn try_rewrite_ref_into(
        &self,
        query: QueryRef<'_>,
        scratch: &mut RewriteScratch,
        limits: RewriteLimits,
    ) -> Result<(), RewriteError> {
        rewrite_query_with(self, query, scratch, limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_branch_cap_boundary() {
        use crate::interner::Interner;
        use crate::parser::{parse_bgp, parse_query};

        let mut it = Interner::new();
        let mut store = AlignmentStore::new();
        // One source predicate matched by three templates: each occurrence
        // expands into a 3-branch UNION.
        let lhs = parse_bgp("?a <http://src/p> ?b", &mut it).unwrap().patterns[0];
        for n in 0..3 {
            let rhs = parse_bgp(&format!("?a <http://tgt/p{n}> ?b"), &mut it)
                .unwrap()
                .patterns;
            store.add_predicate(lhs, rhs).unwrap();
        }
        let query = parse_query(
            "SELECT * WHERE { ?x <http://src/p> ?y . ?y <http://src/p> ?z }",
            &mut it,
        )
        .unwrap();
        let rw = IndexedRewriter::new(&store);
        let mut scratch = RewriteScratch::new();
        // Two patterns × 3 branches = 6 branches required: a cap of exactly
        // 6 succeeds (boundary), 5 fails with the structured error.
        rw.try_rewrite_ref_into(
            query.as_ref(),
            &mut scratch,
            RewriteLimits::with_union_branch_cap(6),
        )
        .expect("cap == required must succeed");
        let at_cap = scratch.to_query();
        let err = rw
            .try_rewrite_ref_into(
                query.as_ref(),
                &mut scratch,
                RewriteLimits::with_union_branch_cap(5),
            )
            .unwrap_err();
        assert_eq!(
            err,
            RewriteError::UnionBranchesExceeded {
                cap: 5,
                required: 6
            }
        );
        assert!(err.to_string().contains("6 branches"), "{err}");
        // A failed capped call must not poison the scratch: the next
        // unbounded call produces the same result as the successful one.
        rw.rewrite_query_into(&query, &mut scratch);
        assert_eq!(scratch.to_query(), at_cap);
        // Infallible path == unbounded fallible path.
        assert_eq!(rw.rewrite_query(&query), at_cap);
    }

    #[test]
    fn guarded_rule_three_valued_semantics() {
        use crate::align::RuleTemplate;
        use crate::interner::Interner;
        use crate::parser::{parse_bgp, parse_query};

        let mut it = Interner::new();
        let mut store = AlignmentStore::new();
        // ?a <src/p> ?b ⇒ ?a <tgt/p> ?b  WHEN ?b = <http://val/yes>
        let lhs = parse_bgp("?a <http://src/p> ?b", &mut it).unwrap().patterns[0];
        let body = parse_bgp("?a <http://tgt/p> ?b", &mut it).unwrap().patterns;
        let yes = crate::Term::iri(it.intern("http://val/yes"));
        let mut tmpl = RuleTemplate::from_triples(body);
        let l = tmpl.push_expr(ExprNode::Term(lhs.o));
        let r = tmpl.push_expr(ExprNode::Term(yes));
        let g = tmpl.push_expr(ExprNode::Cmp(CmpOp::Eq, l, r));
        tmpl.set_guard(g);
        store.add_complex_predicate(lhs, tmpl).unwrap();

        let q_true = parse_query(
            "SELECT * WHERE { ?x <http://src/p> <http://val/yes> }",
            &mut it,
        )
        .unwrap();
        let q_false = parse_query(
            "SELECT * WHERE { ?x <http://src/p> <http://val/no> }",
            &mut it,
        )
        .unwrap();
        let q_open = parse_query("SELECT * WHERE { ?x <http://src/p> ?y }", &mut it).unwrap();
        let render = |store: &AlignmentStore, q: &crate::Query| {
            IndexedRewriter::new(store)
                .rewrite_query(q)
                .display(&it)
                .to_string()
        };
        for dense in [false, true] {
            if dense {
                assert!(store.build_dense_index(it.symbol_bound()));
            }
            // Statically true: fires cleanly, no residual FILTER.
            let out = render(&store, &q_true);
            assert!(out.contains("<http://tgt/p>"), "{out}");
            assert!(!out.contains("FILTER"), "{out}");
            // Statically false: the rule does not fire — pass-through.
            let out = render(&store, &q_false);
            assert!(out.contains("<http://src/p>"), "{out}");
            assert!(!out.contains("<http://tgt/p>"), "{out}");
            // Undecidable (object is an open variable): fires with the
            // instantiated guard as a residual FILTER.
            let out = render(&store, &q_open);
            assert!(out.contains("<http://tgt/p>"), "{out}");
            assert!(
                out.contains("FILTER(?y = <http://val/yes>)"),
                "residual guard: {out}"
            );
        }
    }

    #[test]
    fn guard_miss_collapses_union_and_chain_emits_transform_filter() {
        use crate::align::RuleTemplate;
        use crate::interner::Interner;
        use crate::parser::{parse_bgp, parse_query};

        let mut it = Interner::new();
        let mut store = AlignmentStore::new();
        let lhs = parse_bgp("?a <http://src/len> ?v", &mut it)
            .unwrap()
            .patterns[0];
        // Rule 0, guarded on <u/cm>: 2-triple chain through an existential
        // ?n, plus a value-transform filter ?n != ?v.
        let chain = parse_bgp(
            "?a <http://tgt/len> ?n . ?n <http://tgt/unit> <http://u/m>",
            &mut it,
        )
        .unwrap()
        .patterns;
        let n = chain[0].o;
        let cm = crate::Term::iri(it.intern("http://u/cm"));
        let mut tmpl = RuleTemplate::from_triples(chain);
        let l = tmpl.push_expr(ExprNode::Term(lhs.o));
        let r = tmpl.push_expr(ExprNode::Term(cm));
        let g = tmpl.push_expr(ExprNode::Cmp(CmpOp::Eq, l, r));
        tmpl.set_guard(g);
        let fl = tmpl.push_expr(ExprNode::Term(n));
        let fr = tmpl.push_expr(ExprNode::Term(lhs.o));
        let f = tmpl.push_expr(ExprNode::Cmp(CmpOp::Ne, fl, fr));
        tmpl.push_filter(f);
        store.add_complex_predicate(lhs, tmpl).unwrap();
        // Rule 1, unguarded flat fallback on the same predicate.
        let rhs = parse_bgp("?a <http://tgt/len0> ?v", &mut it)
            .unwrap()
            .patterns;
        store.add_predicate(lhs, rhs).unwrap();

        let query = parse_query(
            "SELECT * WHERE { ?x <http://src/len> <http://u/in> }",
            &mut it,
        )
        .unwrap();
        let rw = IndexedRewriter::new(&store);
        // Guard statically false for <http://u/in>: of the two candidates
        // only the flat rule fires, so the would-be 2-branch UNION
        // collapses to an inline single-match expansion.
        let out = rw.rewrite_query(&query).display(&it).to_string();
        assert!(!out.contains("UNION"), "{out}");
        assert!(out.contains("<http://tgt/len0>"), "{out}");

        // Guard statically true: both rules fire — a UNION whose guarded
        // branch carries the chain and its transform FILTER (rendered with
        // a fresh ?g existential), with no residual guard.
        let query = parse_query(
            "SELECT * WHERE { ?x <http://src/len> <http://u/cm> }",
            &mut it,
        )
        .unwrap();
        let out = rw.rewrite_query(&query).display(&it).to_string();
        assert!(out.contains("UNION"), "{out}");
        assert!(out.contains("<http://tgt/unit> <http://u/m>"), "{out}");
        assert!(out.contains("FILTER(?g0 != <http://u/cm>)"), "{out}");
        assert!(!out.contains("http://u/cm> = "), "no residual guard: {out}");

        // Indexed and linear agree on all of it, dense or hash.
        let linear_out = LinearRewriter::new(&store)
            .rewrite_query(&query)
            .display(&it)
            .to_string();
        assert_eq!(out, linear_out);
        let bound = it.symbol_bound();
        assert!(store.build_dense_index(bound));
        let dense_out = IndexedRewriter::new(&store)
            .rewrite_query(&query)
            .display(&it)
            .to_string();
        assert_eq!(out, dense_out);
    }

    #[test]
    fn template_size_cap_boundary() {
        use crate::align::RuleTemplate;
        use crate::interner::Interner;
        use crate::parser::{parse_bgp, parse_query};

        let mut it = Interner::new();
        let mut store = AlignmentStore::new();
        let lhs = parse_bgp("?a <http://src/p> ?b", &mut it).unwrap().patterns[0];
        // 3-triple chain + 1 transform filter = 4 output nodes per firing.
        let chain = parse_bgp(
            "?a <http://t/p1> ?m . ?m <http://t/p2> ?n . ?n <http://t/p3> ?b",
            &mut it,
        )
        .unwrap()
        .patterns;
        let m = chain[0].o;
        let mut tmpl = RuleTemplate::from_triples(chain);
        let fl = tmpl.push_expr(ExprNode::Term(m));
        let fr = tmpl.push_expr(ExprNode::Term(lhs.o));
        let f = tmpl.push_expr(ExprNode::Cmp(CmpOp::Ne, fl, fr));
        tmpl.push_filter(f);
        store.add_complex_predicate(lhs, tmpl).unwrap();

        let query = parse_query("SELECT * WHERE { ?x <http://src/p> ?y }", &mut it).unwrap();
        let rw = IndexedRewriter::new(&store);
        let mut scratch = RewriteScratch::new();
        rw.try_rewrite_ref_into(
            query.as_ref(),
            &mut scratch,
            RewriteLimits::with_template_size_cap(4),
        )
        .expect("cap == required must succeed");
        let at_cap = scratch.to_query();
        let err = rw
            .try_rewrite_ref_into(
                query.as_ref(),
                &mut scratch,
                RewriteLimits::with_template_size_cap(3),
            )
            .unwrap_err();
        assert_eq!(
            err,
            RewriteError::TemplateSizeExceeded {
                cap: 3,
                required: 4
            }
        );
        assert!(err.to_string().contains("4 nodes"), "{err}");
        // A failed capped call must not poison the scratch.
        rw.rewrite_query_into(&query, &mut scratch);
        assert_eq!(scratch.to_query(), at_cap);
        assert_eq!(rw.rewrite_query(&query), at_cap);
    }

    #[test]
    fn rewriters_over_arc_are_send_sync_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<IndexedRewriter<Arc<AlignmentStore>>>();
        assert_send_sync::<LinearRewriter<Arc<AlignmentStore>>>();
        assert_send_sync::<AlignmentStore>();
        // The default type parameter is the Arc form.
        assert_send_sync::<IndexedRewriter>();
    }
}
