//! BGP rewriting: apply an [`AlignmentStore`] to a query.
//!
//! Both rewriters implement the same semantics; they differ only in how rule
//! candidates are found per triple pattern:
//!
//! * [`IndexedRewriter`] — O(1) hash lookups against the store's entity and
//!   predicate indexes. This is the production path.
//! * [`LinearRewriter`] — scans the full rule list per pattern, the way a
//!   naive implementation would. Kept behind the same [`Rewriter`] trait as
//!   the benchmark baseline.
//!
//! Semantics (single pass, in pattern order):
//! 1. Entity alignments are applied to the subject, predicate, and object of
//!    the pattern. The first rule in id order for a given source term wins.
//! 2. The (possibly substituted) pattern is matched against predicate
//!    templates; the first matching rule in id order replaces the pattern
//!    with its instantiated right-hand side. Variables introduced by the
//!    template (present in rhs, absent from lhs) become
//!    [`TermKind::Fresh`](crate::term::TermKind::Fresh) terms numbered by a
//!    per-rewrite counter — no string is interned and no name lookup
//!    happens, because a fresh term is structurally unequal to every parsed
//!    variable.
//!
//! Rewriting is not run to a fixpoint: rule sets are assumed to be composed
//! offline (paper §4), so output vocabulary is never itself rewritten.
//!
//! # Concurrency and allocation
//!
//! Steady-state rewriting needs only `&self` over shared immutable state:
//! the [`Rewriter`] methods take no interner, [`AlignmentStore`] and the
//! rewriters are `Send + Sync`, and the `*_into` entry points write into a
//! caller-owned [`RewriteScratch`] whose buffers are reused across calls —
//! after warm-up, a `rewrite_query_into` call performs **zero heap
//! allocations** (asserted by `tests/alloc_free.rs`).
//!
//! Sharing one rule set across worker threads is an `Arc` away:
//!
//! ```
//! use std::sync::Arc;
//! use std::thread;
//! use sparql_rewrite_core::*;
//!
//! let mut interner = Interner::new();
//! let query = parse_query("SELECT * WHERE { ?s <http://src/p> ?o }", &mut interner).unwrap();
//! let mut store = AlignmentStore::new();
//! let lhs = parse_bgp("?a <http://src/p> ?b", &mut interner).unwrap().patterns[0];
//! let rhs = parse_bgp("?a <http://tgt/p> ?m . ?m <http://tgt/q> ?b", &mut interner)
//!     .unwrap()
//!     .patterns;
//! store.add_predicate(lhs, rhs).unwrap();
//!
//! // Build phase over: freeze the interner, share everything read-only.
//! let rewriter: Arc<IndexedRewriter> = Arc::new(IndexedRewriter::new(Arc::new(store)));
//! let frozen: Arc<FrozenInterner> = Arc::new(interner.freeze());
//!
//! let rendered: Vec<String> = thread::scope(|scope| {
//!     (0..4)
//!         .map(|_| {
//!             let rewriter = Arc::clone(&rewriter);
//!             let frozen = Arc::clone(&frozen);
//!             let query = &query;
//!             scope.spawn(move || {
//!                 let mut scratch = RewriteScratch::new();
//!                 rewriter.rewrite_query_into(query, &mut scratch);
//!                 scratch.to_query().display(&*frozen).to_string()
//!             })
//!         })
//!         .collect::<Vec<_>>()
//!         .into_iter()
//!         .map(|h| h.join().unwrap())
//!         .collect()
//! });
//! assert!(rendered.iter().all(|r| r == &rendered[0]));
//! assert!(rendered[0].contains("<http://tgt/q>"));
//! ```

use std::borrow::Borrow;
use std::sync::Arc;

use crate::align::{AlignmentStore, Rule};
use crate::pattern::{Bgp, Query, SelectList, TriplePattern};
use crate::term::{Symbol, Term, TermKind};

/// Caller-owned scratch space for allocation-free rewriting.
///
/// Holds the output buffers and the per-rewrite rename state. Every
/// `rewrite_*_into` call clears and refills it; buffer capacity is retained,
/// so repeated calls with a warmed scratch never touch the allocator.
#[derive(Default, Debug)]
pub struct RewriteScratch {
    /// Rewritten triple patterns of the last call.
    out: Vec<TriplePattern>,
    /// Projection of the last `rewrite_query_into` call (empty for `*`).
    select: Vec<Term>,
    select_star: bool,
    /// Existential renames of the template application in progress. Keyed by
    /// whole `Term` (not `Symbol`) because a blank `_:b` and a variable `?b`
    /// share an interned string but must rename independently.
    renames: Vec<(Term, Term)>,
    /// Next fresh-variable counter for this rewrite call.
    fresh_next: u32,
    /// Counter value after the pre-pass over the input (i.e. one past the
    /// largest fresh counter the input already carried); newly minted
    /// existentials are `fresh_start..fresh_next`.
    fresh_start: u32,
}

impl RewriteScratch {
    pub fn new() -> RewriteScratch {
        RewriteScratch::default()
    }

    /// Rewritten patterns of the last `rewrite_*_into` call.
    #[inline]
    pub fn patterns(&self) -> &[TriplePattern] {
        &self.out
    }

    /// Projection of the last `rewrite_query_into` call: `None` for
    /// `SELECT *`, otherwise the projected variables.
    #[inline]
    pub fn select(&self) -> Option<&[Term]> {
        if self.select_star {
            None
        } else {
            Some(&self.select)
        }
    }

    /// Number of fresh variables the last call introduced — fresh terms the
    /// input already carried (when re-rewriting a prior output) are not
    /// counted.
    #[inline]
    pub fn fresh_count(&self) -> u32 {
        self.fresh_next - self.fresh_start
    }

    /// Copy the last result out as an owned [`Bgp`] (allocates).
    pub fn to_bgp(&self) -> Bgp {
        Bgp::new(self.out.clone())
    }

    /// Copy the last result out as an owned [`Query`] (allocates). Only
    /// meaningful after `rewrite_query_into`.
    pub fn to_query(&self) -> Query {
        Query {
            select: if self.select_star {
                SelectList::Star
            } else {
                SelectList::Vars(self.select.clone())
            },
            bgp: self.to_bgp(),
        }
    }
}

/// A BGP rewriting strategy. Object-safe so benchmarks can treat strategies
/// uniformly. All methods take `&self` and no interner: fresh variables are
/// structural ([`TermKind::Fresh`](crate::term::TermKind::Fresh)), so the
/// hot path never mints strings.
pub trait Rewriter {
    /// Human-readable strategy name for benchmark output.
    fn name(&self) -> &'static str;

    /// Rewrite a bare BGP into `scratch` (allocation-free once warm).
    fn rewrite_bgp_into(&self, bgp: &Bgp, scratch: &mut RewriteScratch);

    /// Rewrite a full query into `scratch`: the projection is copied into
    /// the scratch, the BGP is rewritten (allocation-free once warm).
    fn rewrite_query_into(&self, query: &Query, scratch: &mut RewriteScratch);

    /// Convenience wrapper allocating a fresh output BGP.
    fn rewrite_bgp(&self, bgp: &Bgp) -> Bgp {
        let mut scratch = RewriteScratch::new();
        self.rewrite_bgp_into(bgp, &mut scratch);
        Bgp {
            patterns: scratch.out,
        }
    }

    /// Convenience wrapper allocating a fresh output query.
    fn rewrite_query(&self, query: &Query) -> Query {
        let mut scratch = RewriteScratch::new();
        self.rewrite_query_into(query, &mut scratch);
        scratch.to_query()
    }
}

/// Production rewriter: hash-indexed candidate lookup.
///
/// Generic over how it holds the store so both phases are cheap to express:
/// borrow for single-threaded use (`IndexedRewriter::new(&store)`), or an
/// [`Arc`] for the shared serve phase (`IndexedRewriter::new(Arc::new(store))`
/// — the default type parameter). `Send + Sync` whenever the holder is.
pub struct IndexedRewriter<S = Arc<AlignmentStore>> {
    store: S,
}

impl<S: Borrow<AlignmentStore>> IndexedRewriter<S> {
    pub fn new(store: S) -> Self {
        IndexedRewriter { store }
    }

    #[inline]
    fn store(&self) -> &AlignmentStore {
        self.store.borrow()
    }
}

/// Baseline rewriter: full rule-list scan per lookup.
pub struct LinearRewriter<S = Arc<AlignmentStore>> {
    store: S,
}

impl<S: Borrow<AlignmentStore>> LinearRewriter<S> {
    pub fn new(store: S) -> Self {
        LinearRewriter { store }
    }

    #[inline]
    fn store(&self) -> &AlignmentStore {
        self.store.borrow()
    }
}

/// How a strategy finds rule candidates. The surrounding engine
/// ([`rewrite_bgp_with`]) is shared, which is what guarantees the two
/// rewriters are semantically identical.
trait RuleLookup {
    fn entity_target(&self, t: Term) -> Option<Term>;
    /// First predicate rule (in id order) whose lhs matches `tp`.
    fn matching_template(&self, tp: TriplePattern) -> Option<(TriplePattern, &[TriplePattern])>;
}

impl<S: Borrow<AlignmentStore>> RuleLookup for IndexedRewriter<S> {
    #[inline]
    fn entity_target(&self, t: Term) -> Option<Term> {
        self.store().entity_target(t)
    }

    #[inline]
    fn matching_template(&self, tp: TriplePattern) -> Option<(TriplePattern, &[TriplePattern])> {
        let store = self.store();
        let rules = store.rules();
        for &id in store.predicate_candidates(tp.p) {
            if let Rule::Predicate { lhs, rhs } = &rules[id as usize] {
                if lhs_matches(*lhs, tp) {
                    return Some((*lhs, rhs));
                }
            }
        }
        None
    }
}

impl<S: Borrow<AlignmentStore>> RuleLookup for LinearRewriter<S> {
    fn entity_target(&self, t: Term) -> Option<Term> {
        for rule in self.store().rules() {
            if let Rule::Entity { from, to } = rule {
                if *from == t {
                    return Some(*to);
                }
            }
        }
        None
    }

    fn matching_template(&self, tp: TriplePattern) -> Option<(TriplePattern, &[TriplePattern])> {
        for rule in self.store().rules() {
            if let Rule::Predicate { lhs, rhs } = rule {
                if lhs_matches(*lhs, tp) {
                    return Some((*lhs, rhs));
                }
            }
        }
        None
    }
}

/// Does template lhs match the query pattern? Template variables match
/// anything (consistently — a repeated lhs variable must bind one term);
/// concrete template terms require equality. One pass over the three
/// positions: each is either compared for equality (concrete) or, if it is a
/// variable, checked for consistency against the *later* positions that
/// repeat it — so no position is examined twice.
#[inline]
fn lhs_matches(lhs: TriplePattern, tp: TriplePattern) -> bool {
    let l = lhs.terms();
    let q = tp.terms();
    for i in 0..3 {
        if l[i].is_var() {
            for j in (i + 1)..3 {
                if l[j] == l[i] && q[j] != q[i] {
                    return false;
                }
            }
        } else if l[i] != q[i] {
            return false;
        }
    }
    true
}

/// Instantiate a matched template: rhs with lhs-bound variables replaced by
/// the query pattern's terms and unbound rhs variables (and rhs blank
/// nodes) replaced by fresh terms, consistently within this application.
fn instantiate_template(
    lhs: TriplePattern,
    rhs: &[TriplePattern],
    tp: TriplePattern,
    out: &mut Vec<TriplePattern>,
    renames: &mut Vec<(Term, Term)>,
    fresh_next: &mut u32,
) {
    // Bindings from lhs variables to the query pattern's terms. At most
    // three entries, so a flat array beats a hash map.
    let mut bindings: [(Symbol, Term); 3] = [(Symbol(u32::MAX), tp.s); 3];
    let mut n_bindings = 0;
    for (l, q) in [(lhs.s, tp.s), (lhs.p, tp.p), (lhs.o, tp.o)] {
        if l.is_var() {
            bindings[n_bindings] = (l.symbol(), q);
            n_bindings += 1;
        }
    }
    // Renames are per-application: consistent across this rhs, reset for the
    // next expansion (the buffer's capacity is what the scratch retains).
    renames.clear();
    let subst = |t: Term, renames: &mut Vec<(Term, Term)>, fresh_next: &mut u32| -> Term {
        match t.kind() {
            TermKind::Var => {
                let sym = t.symbol();
                for &(s, replacement) in &bindings[..n_bindings] {
                    if s == sym {
                        return replacement;
                    }
                }
            }
            // A blank node in a BGP is a non-distinguished variable, so a
            // template blank is an existential too: it must be freshened
            // per application (sharing one label across expansions would
            // force unrelated solutions to co-bind) and must never capture
            // a blank the query itself uses. Renaming it to a fresh
            // variable is semantically equivalent.
            TermKind::Blank => {}
            _ => return t,
        }
        for &(s, replacement) in renames.iter() {
            if s == t {
                return replacement;
            }
        }
        let f = Term::fresh(*fresh_next);
        *fresh_next += 1;
        renames.push((t, f));
        f
    };
    for template in rhs {
        out.push(TriplePattern::new(
            subst(template.s, renames, fresh_next),
            subst(template.p, renames, fresh_next),
            subst(template.o, renames, fresh_next),
        ));
    }
}

/// The shared rewrite engine: entity substitution then template expansion,
/// per pattern, in order. Fresh variables are structural, so no name
/// reservation is needed — the only pre-pass skips past any fresh counters
/// already present in the input (e.g. when re-rewriting a prior output), so
/// newly minted existentials can never collide with them.
fn rewrite_bgp_with<L: RuleLookup>(lookup: &L, bgp: &Bgp, scratch: &mut RewriteScratch) {
    scratch.out.clear();
    scratch.out.reserve(bgp.patterns.len());
    scratch.fresh_next = 0;
    for tp in &bgp.patterns {
        for t in tp.terms() {
            if t.is_fresh() {
                scratch.fresh_next = scratch.fresh_next.max(t.fresh_index() + 1);
            }
        }
    }
    scratch.fresh_start = scratch.fresh_next;
    for &tp in &bgp.patterns {
        let substituted = TriplePattern::new(
            lookup.entity_target(tp.s).unwrap_or(tp.s),
            lookup.entity_target(tp.p).unwrap_or(tp.p),
            lookup.entity_target(tp.o).unwrap_or(tp.o),
        );
        match lookup.matching_template(substituted) {
            Some((lhs, rhs)) => instantiate_template(
                lhs,
                rhs,
                substituted,
                &mut scratch.out,
                &mut scratch.renames,
                &mut scratch.fresh_next,
            ),
            None => scratch.out.push(substituted),
        }
    }
}

fn rewrite_query_with<L: RuleLookup>(lookup: &L, query: &Query, scratch: &mut RewriteScratch) {
    scratch.select.clear();
    match &query.select {
        SelectList::Star => scratch.select_star = true,
        SelectList::Vars(vars) => {
            scratch.select_star = false;
            scratch.select.extend_from_slice(vars);
        }
    }
    rewrite_bgp_with(lookup, &query.bgp, scratch);
}

impl<S: Borrow<AlignmentStore>> Rewriter for IndexedRewriter<S> {
    fn name(&self) -> &'static str {
        "indexed"
    }

    fn rewrite_bgp_into(&self, bgp: &Bgp, scratch: &mut RewriteScratch) {
        rewrite_bgp_with(self, bgp, scratch);
    }

    fn rewrite_query_into(&self, query: &Query, scratch: &mut RewriteScratch) {
        rewrite_query_with(self, query, scratch);
    }
}

impl<S: Borrow<AlignmentStore>> Rewriter for LinearRewriter<S> {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn rewrite_bgp_into(&self, bgp: &Bgp, scratch: &mut RewriteScratch) {
        rewrite_bgp_with(self, bgp, scratch);
    }

    fn rewrite_query_into(&self, query: &Query, scratch: &mut RewriteScratch) {
        rewrite_query_with(self, query, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewriters_over_arc_are_send_sync_static() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<IndexedRewriter<Arc<AlignmentStore>>>();
        assert_send_sync::<LinearRewriter<Arc<AlignmentStore>>>();
        assert_send_sync::<AlignmentStore>();
        // The default type parameter is the Arc form.
        assert_send_sync::<IndexedRewriter>();
    }
}
