//! Triple patterns, basic graph patterns, group graph patterns, and queries
//! — plus `Display` rendering back to valid SPARQL text.
//!
//! A query's `WHERE` clause is a [`GroupPattern`]: a *flattened,
//! index-linked* tree of [`PatternNode`]s covering basic graph patterns,
//! nested groups, `OPTIONAL`, `UNION`, and `FILTER`. There is no per-node
//! boxing: nodes, sibling links, triple patterns, and filter-expression
//! nodes live in four flat `Vec`s of `Copy` values, so a
//! [`crate::rewriter::RewriteScratch`] can hold a whole rewritten tree in
//! reusable buffers and steady-state rewriting stays allocation-free.
//!
//! Parsed terms are interner symbols, so rendering needs a resolver
//! implementing [`Resolve`] — either the build-phase
//! [`Interner`](crate::interner::Interner) or the frozen serve-phase
//! [`FrozenInterner`](crate::interner::FrozenInterner);
//! `display(&resolver)` pairs a value with its resolver and the pair
//! implements [`std::fmt::Display`].
//!
//! # Fresh-variable rendering
//!
//! [`TermKind::Fresh`] terms carry a counter, not a string; their `g{n}`
//! names are materialized here, lazily. To keep the rendered text
//! capture-free even though the *structural* guarantee (fresh ≠ any parsed
//! var) does not survive textual round-trips, the display adapters scan the
//! value being rendered for parsed variables already named `g{k}` and offset
//! every fresh counter past the largest such `k`. Distinct counters map to
//! distinct names and no name collides with a query variable, so rendered
//! output re-parses to a query with identical solutions.

use std::fmt::{self, Write as _};

use crate::interner::Resolve;
use crate::term::{Term, TermKind};

/// One SPARQL triple pattern. 12 bytes, `Copy`: equality and hashing are
/// three integer comparisons, and a BGP is a cache-friendly flat `Vec`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TriplePattern {
    pub s: Term,
    pub p: Term,
    pub o: Term,
}

impl TriplePattern {
    #[inline]
    pub fn new(s: Term, p: Term, o: Term) -> TriplePattern {
        TriplePattern { s, p, o }
    }

    #[inline]
    pub fn terms(&self) -> [Term; 3] {
        [self.s, self.p, self.o]
    }

    /// Render this triple in isolation.
    ///
    /// Fresh-term naming is computed from *this triple's* terms only: the
    /// same `Fresh` counter may render under different `g{n}` names in
    /// different triples of one BGP, and may collide with `g`-named
    /// variables that appear only in *other* triples. To render part of a
    /// rewritten pattern with consistent, capture-free existential names,
    /// use [`Bgp::display`] / [`GroupPattern::display`] /
    /// [`Query::display`] on the whole value instead.
    pub fn display<'a, R: Resolve>(&'a self, resolver: &'a R) -> DisplayTriple<'a, R> {
        let mut fresh_base = String::new();
        fresh_render_base_into(self.terms().into_iter(), resolver, &mut fresh_base);
        DisplayTriple {
            tp: self,
            resolver,
            fresh_base,
        }
    }
}

/// A basic graph pattern: a conjunction of triple patterns. Used for
/// alignment-rule templates (which are flat by construction) and as the
/// seed for [`GroupPattern::from_bgp`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bgp {
    pub patterns: Vec<TriplePattern>,
}

impl Bgp {
    pub fn new(patterns: Vec<TriplePattern>) -> Bgp {
        Bgp { patterns }
    }

    /// Render this BGP in isolation.
    ///
    /// Fresh-term naming is computed from the BGP's terms only. A `g`-named
    /// variable that exists solely in a surrounding context (e.g. a
    /// projection variable absent from the BGP) is not seen here, so
    /// splicing this rendering into other query text can capture an
    /// existential. To render a rewritten query with its projection taken
    /// into account, use [`Query::display`] instead.
    pub fn display<'a, R: Resolve>(&'a self, resolver: &'a R) -> DisplayBgp<'a, R> {
        let mut fresh_base = String::new();
        fresh_render_base_into(
            self.patterns.iter().flat_map(|tp| tp.terms()),
            resolver,
            &mut fresh_base,
        );
        DisplayBgp {
            bgp: self,
            resolver,
            fresh_base,
        }
    }
}

/// Sentinel "no node" index for [`GroupPattern`] links.
pub const NO_NODE: u32 = u32::MAX;

/// Comparison operators of FILTER expressions.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// One node of a flattened FILTER expression tree. Children are indices
/// into the owning [`GroupPattern::exprs`] buffer, so the whole tree is
/// `Copy` values in one flat `Vec`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExprNode {
    /// A variable, IRI, or literal operand.
    Term(Term),
    /// `lhs op rhs` comparison.
    Cmp(CmpOp, u32, u32),
    /// `lhs && rhs`.
    And(u32, u32),
    /// `lhs || rhs`.
    Or(u32, u32),
    /// `!child`.
    Not(u32),
}

/// One node of a flattened group-graph-pattern tree. Child lists are
/// singly linked through [`GroupPattern::next`]; triple runs are ranges
/// into [`GroupPattern::triples`]; filter expressions are roots into
/// [`GroupPattern::exprs`]. Every variant is a few integers — no boxing.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PatternNode {
    /// A run of triple patterns: `triples[start .. start + len]`.
    Triples { start: u32, len: u32 },
    /// `{ ... }` — children chained from `first` (or [`NO_NODE`] if empty).
    Group { first: u32 },
    /// `OPTIONAL { ... }` — the inner group's children chained from `first`.
    Optional { first: u32 },
    /// `{...} UNION {...} [UNION {...}]*` — two or more branches chained
    /// from `first`; every branch is a [`PatternNode::Group`].
    Union { first: u32 },
    /// `FILTER( expr )` — `expr` is the root index into `exprs`.
    Filter { expr: u32 },
    /// `SERVICE <endpoint> { ... }` — a federated subquery dispatched to
    /// `endpoint` (an IRI or a variable), children chained from `first`.
    Service { endpoint: Term, first: u32 },
}

/// A group graph pattern as a flattened, index-linked tree.
///
/// # Representation
///
/// * `nodes[i]` is a tree node; `next[i]` is its next sibling (or
///   [`NO_NODE`]). The two vectors always have equal length.
/// * `root` indexes the top-level [`PatternNode::Group`]; [`NO_NODE`]
///   denotes the empty group `{ }` (the state of a cleared scratch).
/// * Triple patterns and expression nodes are pooled in `triples` /
///   `exprs`; nodes reference them by range / index. A [`PatternNode::
///   Triples`] run is always a contiguous range, and `triples` holds the
///   runs in rendering order, so `triples` doubles as "all triple patterns
///   of the query, in order".
///
/// Equality is **structural**: two patterns are equal when their trees
/// (walked from `root`) match node for node, regardless of how the nodes
/// are laid out in the buffers. Note that structure distinguishes two
/// adjacent [`PatternNode::Triples`] runs from one merged run even though
/// they denote the same conjunction; the parser and the rewriter both emit
/// maximal runs, so values produced by them compare as expected.
#[derive(Clone, Debug)]
pub struct GroupPattern {
    pub nodes: Vec<PatternNode>,
    /// `next[i]` = index of the next sibling of `nodes[i]`, or [`NO_NODE`].
    pub next: Vec<u32>,
    pub triples: Vec<TriplePattern>,
    pub exprs: Vec<ExprNode>,
    /// Index of the root [`PatternNode::Group`], or [`NO_NODE`] when empty.
    pub root: u32,
}

impl Default for GroupPattern {
    fn default() -> GroupPattern {
        GroupPattern {
            nodes: Vec::new(),
            next: Vec::new(),
            triples: Vec::new(),
            exprs: Vec::new(),
            root: NO_NODE,
        }
    }
}

impl GroupPattern {
    pub fn new() -> GroupPattern {
        GroupPattern::default()
    }

    /// Wrap a flat BGP as a group pattern: one triples run under the root
    /// group (or an empty root group for an empty BGP).
    pub fn from_bgp(bgp: &Bgp) -> GroupPattern {
        let mut p = GroupPattern::new();
        let first = if bgp.patterns.is_empty() {
            NO_NODE
        } else {
            p.triples.extend_from_slice(&bgp.patterns);
            p.push_node(PatternNode::Triples {
                start: 0,
                len: bgp.patterns.len() as u32,
            })
        };
        p.root = p.push_node(PatternNode::Group { first });
        p
    }

    /// Append a node with no sibling yet; returns its index. Link it into a
    /// child chain afterwards via [`ChainBuilder`] (or by writing `next`).
    #[inline]
    pub fn push_node(&mut self, node: PatternNode) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        self.next.push(NO_NODE);
        idx
    }

    /// Append an expression node; returns its index.
    #[inline]
    pub fn push_expr(&mut self, node: ExprNode) -> u32 {
        let idx = self.exprs.len() as u32;
        self.exprs.push(node);
        idx
    }

    /// Append a self-contained expression pool (child indices relative to
    /// `exprs` itself), rebasing every child index onto this pattern's
    /// buffer and mapping each leaf term through `map`. Returns the base
    /// index of the copied block: node `i` of the source pool lands at
    /// `base + i`. This is how rule templates instantiate their guard and
    /// FILTER-constraint trees in place — one pass, no intermediate tree.
    pub fn import_exprs(&mut self, exprs: &[ExprNode], mut map: impl FnMut(Term) -> Term) -> u32 {
        let base = self.exprs.len() as u32;
        for &e in exprs {
            self.exprs.push(match e {
                ExprNode::Term(t) => ExprNode::Term(map(t)),
                ExprNode::Cmp(op, l, r) => ExprNode::Cmp(op, base + l, base + r),
                ExprNode::And(l, r) => ExprNode::And(base + l, base + r),
                ExprNode::Or(l, r) => ExprNode::Or(base + l, base + r),
                ExprNode::Not(c) => ExprNode::Not(base + c),
            });
        }
        base
    }

    /// Clear all buffers (capacity retained) back to the empty group.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.next.clear();
        self.triples.clear();
        self.exprs.clear();
        self.root = NO_NODE;
    }

    /// Iterate a sibling chain starting at `first`.
    #[inline]
    pub fn children_from(&self, first: u32) -> Children<'_> {
        Children {
            next: &self.next,
            cur: first,
        }
    }

    /// Head of the root group's child chain ([`NO_NODE`] when empty).
    #[inline]
    fn root_first(&self) -> u32 {
        match self.root {
            NO_NODE => NO_NODE,
            r => match self.nodes[r as usize] {
                PatternNode::Group { first } => first,
                _ => unreachable!("root must be a Group node"),
            },
        }
    }

    /// The root group's child chain (empty for an empty pattern).
    #[inline]
    pub fn root_children(&self) -> Children<'_> {
        self.children_from(self.root_first())
    }

    /// The triple patterns of the run node at `idx`.
    #[inline]
    pub fn run(&self, idx: u32) -> &[TriplePattern] {
        match self.nodes[idx as usize] {
            PatternNode::Triples { start, len } => {
                &self.triples[start as usize..(start + len) as usize]
            }
            _ => &[],
        }
    }

    /// True when the pattern is a single flat BGP: root-group children are
    /// triples runs only (the pre-group-pattern query shape).
    pub fn is_flat(&self) -> bool {
        self.root_children()
            .all(|c| matches!(self.nodes[c as usize], PatternNode::Triples { .. }))
    }

    /// Every [`Term`] the pattern mentions: triple terms, FILTER
    /// expression operands, and SERVICE endpoint terms.
    pub fn terms(&self) -> impl Iterator<Item = Term> + '_ {
        self.triples
            .iter()
            .flat_map(|tp| tp.terms())
            .chain(self.exprs.iter().filter_map(|e| match e {
                ExprNode::Term(t) => Some(*t),
                _ => None,
            }))
            .chain(self.nodes.iter().filter_map(|n| match n {
                PatternNode::Service { endpoint, .. } => Some(*endpoint),
                _ => None,
            }))
    }

    /// Render as `{ ... }` SPARQL text. Fresh-term naming is computed from
    /// this pattern's terms only; see [`Query::display`] for the caveat
    /// about projection variables.
    pub fn display<'a, R: Resolve>(&'a self, resolver: &'a R) -> DisplayPattern<'a, R> {
        let mut fresh_base = String::new();
        fresh_render_base_into(self.terms(), resolver, &mut fresh_base);
        DisplayPattern {
            pattern: self,
            resolver,
            fresh_base,
        }
    }

    fn node_eq(&self, a: u32, other: &GroupPattern, b: u32) -> bool {
        match (self.nodes[a as usize], other.nodes[b as usize]) {
            (PatternNode::Triples { .. }, PatternNode::Triples { .. }) => {
                self.run(a) == other.run(b)
            }
            (PatternNode::Group { first: fa }, PatternNode::Group { first: fb })
            | (PatternNode::Optional { first: fa }, PatternNode::Optional { first: fb })
            | (PatternNode::Union { first: fa }, PatternNode::Union { first: fb }) => {
                self.chain_eq(fa, other, fb)
            }
            (PatternNode::Filter { expr: ea }, PatternNode::Filter { expr: eb }) => {
                self.expr_eq(ea, other, eb)
            }
            (
                PatternNode::Service {
                    endpoint: ea,
                    first: fa,
                },
                PatternNode::Service {
                    endpoint: eb,
                    first: fb,
                },
            ) => ea == eb && self.chain_eq(fa, other, fb),
            _ => false,
        }
    }

    fn chain_eq(&self, a_first: u32, other: &GroupPattern, b_first: u32) -> bool {
        let mut a_it = self.children_from(a_first);
        let mut b_it = other.children_from(b_first);
        loop {
            match (a_it.next(), b_it.next()) {
                (None, None) => return true,
                (Some(a), Some(b)) if self.node_eq(a, other, b) => {}
                _ => return false,
            }
        }
    }

    fn expr_eq(&self, a: u32, other: &GroupPattern, b: u32) -> bool {
        match (self.exprs[a as usize], other.exprs[b as usize]) {
            (ExprNode::Term(x), ExprNode::Term(y)) => x == y,
            (ExprNode::Cmp(opa, la, ra), ExprNode::Cmp(opb, lb, rb)) => {
                opa == opb && self.expr_eq(la, other, lb) && self.expr_eq(ra, other, rb)
            }
            (ExprNode::And(la, ra), ExprNode::And(lb, rb))
            | (ExprNode::Or(la, ra), ExprNode::Or(lb, rb)) => {
                self.expr_eq(la, other, lb) && self.expr_eq(ra, other, rb)
            }
            (ExprNode::Not(ca), ExprNode::Not(cb)) => self.expr_eq(ca, other, cb),
            _ => false,
        }
    }
}

/// Structural equality: trees walked from the roots must match; buffer
/// layout is irrelevant.
impl PartialEq for GroupPattern {
    fn eq(&self, other: &GroupPattern) -> bool {
        self.chain_eq(self.root_first(), other, other.root_first())
    }
}

impl Eq for GroupPattern {}

/// Iterator over a sibling chain of a [`GroupPattern`].
pub struct Children<'a> {
    next: &'a [u32],
    cur: u32,
}

impl Iterator for Children<'_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.cur == NO_NODE {
            return None;
        }
        let idx = self.cur;
        self.cur = self.next[idx as usize];
        Some(idx)
    }
}

/// Incrementally links nodes into a sibling chain.
#[derive(Copy, Clone)]
pub struct ChainBuilder {
    first: u32,
    last: u32,
}

impl ChainBuilder {
    pub fn new() -> ChainBuilder {
        ChainBuilder {
            first: NO_NODE,
            last: NO_NODE,
        }
    }

    /// Append `idx` (a node already pushed into `p`) to the chain.
    pub fn push(&mut self, p: &mut GroupPattern, idx: u32) {
        if self.first == NO_NODE {
            self.first = idx;
        } else {
            p.next[self.last as usize] = idx;
        }
        self.last = idx;
    }

    /// Head of the chain ([`NO_NODE`] if nothing was pushed).
    pub fn first(&self) -> u32 {
        self.first
    }
}

impl Default for ChainBuilder {
    fn default() -> ChainBuilder {
        ChainBuilder::new()
    }
}

/// Projection of a SELECT query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// `SELECT ?a ?b …` — terms are guaranteed to be variables by the parser.
    Vars(Vec<Term>),
}

/// A parsed SELECT query: projection plus one group graph pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    pub select: SelectList,
    pub pattern: GroupPattern,
}

impl Query {
    pub fn display<'a, R: Resolve>(&'a self, resolver: &'a R) -> DisplayQuery<'a, R> {
        let q = self.as_ref();
        let mut fresh_base = String::new();
        fresh_render_base_into(q.terms(), resolver, &mut fresh_base);
        DisplayQuery {
            query: self,
            resolver,
            fresh_base,
        }
    }

    /// Borrowed view of this query; the shape the scratch-based serve
    /// pipeline passes between stages.
    #[inline]
    pub fn as_ref(&self) -> QueryRef<'_> {
        QueryRef {
            select: match &self.select {
                SelectList::Star => None,
                SelectList::Vars(vars) => Some(vars),
            },
            pattern: &self.pattern,
        }
    }
}

/// A borrowed SELECT query: projection (`None` = `SELECT *`) plus pattern.
///
/// The serve pipeline's stages each own their buffers (a
/// [`crate::parser::ParseScratch`], a [`crate::rewriter::RewriteScratch`]),
/// so handing a query from one stage to the next must not require
/// assembling an owned [`Query`]. `QueryRef` is that hand-off: `Copy`,
/// borrowing both halves from whichever scratch produced them.
#[derive(Copy, Clone)]
pub struct QueryRef<'a> {
    /// Projected variables, or `None` for `SELECT *`.
    pub select: Option<&'a [Term]>,
    pub pattern: &'a GroupPattern,
}

impl<'a> QueryRef<'a> {
    /// Every term the query mentions: pattern terms plus the projection.
    fn terms(&self) -> impl Iterator<Item = Term> + 'a {
        let select = self.select.unwrap_or(&[]);
        self.pattern.terms().chain(select.iter().copied())
    }
}

/// Render `query` as SPARQL text into `out` (cleared first), reusing
/// `fresh_base` as the fresh-name offset buffer. This is the zero-alloc
/// render path: with both buffers warm (capacity from a previous call) a
/// call performs no heap allocations unless the query uses `g{k}` variable
/// names with more than 19 digits (the arbitrary-precision fallback).
pub fn render_query_into<R: Resolve>(
    query: QueryRef<'_>,
    resolver: &R,
    fresh_base: &mut String,
    out: &mut String,
) {
    fresh_render_base_into(query.terms(), resolver, fresh_base);
    out.clear();
    write_query(out, query, resolver, fresh_base).expect("writing to String cannot fail");
}

/// Is `s` a canonical decimal numeral (no sign, no leading zero except "0"
/// itself)? Rendered fresh names are always canonical, so only canonical
/// parsed `g{k}` names can ever collide with them; non-canonical ones
/// (`g007`, `gx`) are textually unreachable and ignored.
fn is_canonical_decimal(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) && (s.len() == 1 || !s.starts_with('0'))
}

/// Arbitrary-precision `digits + n` over a canonical decimal numeral.
/// Fresh-name arithmetic runs on decimal strings rather than a fixed-width
/// integer so there is no width at which the offset scheme can overflow or
/// saturate into a collision, no matter how large a `g{k}` variable name the
/// query uses.
fn decimal_add(digits: &str, n: u32) -> String {
    let mut out: Vec<u8> = digits.bytes().rev().collect();
    let mut carry = n as u64;
    for b in out.iter_mut() {
        if carry == 0 {
            break;
        }
        let sum = (*b - b'0') as u64 + carry;
        *b = b'0' + (sum % 10) as u8;
        carry = sum / 10;
    }
    while carry > 0 {
        out.push(b'0' + (carry % 10) as u8);
        carry /= 10;
    }
    out.reverse();
    String::from_utf8(out).expect("decimal digits are valid UTF-8")
}

/// Compute the smallest counter offset (as a canonical decimal string, into
/// `out`, cleared first) such that no rendered fresh name `g{base + n}`
/// collides with a parsed variable of the rendered value: one past the
/// largest `k` of any variable literally named `g{k}`. Canonical decimals
/// compare numerically by (length, lexicographic). Allocation-free once
/// `out` has capacity, except for the >19-digit arbitrary-precision
/// fallback.
fn fresh_render_base_into<R: Resolve>(
    terms: impl Iterator<Item = Term>,
    resolver: &R,
    out: &mut String,
) {
    let mut max: Option<&str> = None;
    for t in terms {
        if t.kind() != TermKind::Var {
            continue;
        }
        let name = resolver.resolve(t.symbol());
        if let Some(digits) = name.strip_prefix('g') {
            if is_canonical_decimal(digits)
                && max.is_none_or(|m| (digits.len(), digits) > (m.len(), m))
            {
                max = Some(digits);
            }
        }
    }
    out.clear();
    match max {
        None => out.push('0'),
        // ≤19 decimal digits always fits u64; +1 in u128 cannot overflow.
        Some(m) if m.len() <= 19 => {
            let n: u64 = m.parse().expect("canonical decimal fits u64");
            let _ = write!(out, "{}", n as u128 + 1);
        }
        Some(m) => out.push_str(&decimal_add(m, 1)),
    }
}

fn write_term<W: fmt::Write + ?Sized, R: Resolve>(
    f: &mut W,
    t: Term,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    if t.kind() == TermKind::Fresh {
        // Fast path: a base of ≤19 digits fits u64, so the offset is plain
        // integer arithmetic — no allocation. The decimal-string fallback
        // only triggers for queries using `g{k}` names past 19 digits.
        return if fresh_base.len() <= 19 {
            let base: u64 = fresh_base.parse().expect("canonical decimal fits u64");
            write!(f, "?g{}", base as u128 + t.fresh_index() as u128)
        } else {
            write!(f, "?g{}", decimal_add(fresh_base, t.fresh_index()))
        };
    }
    let text = resolver.resolve(t.symbol());
    match t.kind() {
        TermKind::Iri => write!(f, "<{text}>"),
        // Literals are interned with their full surface form (quotes,
        // @lang / ^^datatype suffix) so they render verbatim.
        TermKind::Literal => f.write_str(text),
        TermKind::Blank => write!(f, "_:{text}"),
        TermKind::Var => write!(f, "?{text}"),
        TermKind::Fresh => unreachable!("handled above"),
    }
}

pub struct DisplayTriple<'a, R: Resolve> {
    tp: &'a TriplePattern,
    resolver: &'a R,
    fresh_base: String,
}

impl<R: Resolve> fmt::Display for DisplayTriple<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_triple(f, self.tp, self.resolver, &self.fresh_base)
    }
}

fn write_triple<W: fmt::Write + ?Sized, R: Resolve>(
    f: &mut W,
    tp: &TriplePattern,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    write_term(f, tp.s, resolver, fresh_base)?;
    f.write_str(" ")?;
    write_term(f, tp.p, resolver, fresh_base)?;
    f.write_str(" ")?;
    write_term(f, tp.o, resolver, fresh_base)?;
    f.write_str(" .")
}

pub struct DisplayBgp<'a, R: Resolve> {
    bgp: &'a Bgp,
    resolver: &'a R,
    fresh_base: String,
}

impl<R: Resolve> fmt::Display for DisplayBgp<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_bgp(f, self.bgp, self.resolver, &self.fresh_base)
    }
}

fn write_bgp<W: fmt::Write + ?Sized, R: Resolve>(
    f: &mut W,
    bgp: &Bgp,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    f.write_str("{\n")?;
    for tp in &bgp.patterns {
        f.write_str("  ")?;
        write_triple(f, tp, resolver, fresh_base)?;
        f.write_str("\n")?;
    }
    f.write_str("}")
}

fn write_indent<W: fmt::Write + ?Sized>(f: &mut W, depth: usize) -> fmt::Result {
    for _ in 0..depth {
        f.write_str("  ")?;
    }
    Ok(())
}

/// Render a filter expression. Non-leaf operands are parenthesized
/// unconditionally, which keeps rendering deterministic and makes
/// `render → parse → render` a fixpoint (parentheses do not create nodes).
fn write_expr<W: fmt::Write + ?Sized, R: Resolve>(
    f: &mut W,
    p: &GroupPattern,
    e: u32,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    let operand = |f: &mut W, c: u32| -> fmt::Result {
        if let ExprNode::Term(t) = p.exprs[c as usize] {
            write_term(f, t, resolver, fresh_base)
        } else {
            f.write_str("(")?;
            write_expr(f, p, c, resolver, fresh_base)?;
            f.write_str(")")
        }
    };
    match p.exprs[e as usize] {
        ExprNode::Term(t) => write_term(f, t, resolver, fresh_base),
        ExprNode::Cmp(op, l, r) => {
            operand(f, l)?;
            write!(f, " {} ", op.as_str())?;
            operand(f, r)
        }
        ExprNode::And(l, r) => {
            operand(f, l)?;
            f.write_str(" && ")?;
            operand(f, r)
        }
        ExprNode::Or(l, r) => {
            operand(f, l)?;
            f.write_str(" || ")?;
            operand(f, r)
        }
        ExprNode::Not(c) => {
            f.write_str("!")?;
            operand(f, c)
        }
    }
}

/// Render one pattern node (and its subtree) at `depth`, each line
/// indented and newline-terminated.
fn write_node<W: fmt::Write + ?Sized, R: Resolve>(
    f: &mut W,
    p: &GroupPattern,
    idx: u32,
    resolver: &R,
    fresh_base: &str,
    depth: usize,
) -> fmt::Result {
    match p.nodes[idx as usize] {
        PatternNode::Triples { .. } => {
            for tp in p.run(idx) {
                write_indent(f, depth)?;
                write_triple(f, tp, resolver, fresh_base)?;
                f.write_str("\n")?;
            }
            Ok(())
        }
        PatternNode::Group { first } => {
            write_indent(f, depth)?;
            f.write_str("{\n")?;
            for c in p.children_from(first) {
                write_node(f, p, c, resolver, fresh_base, depth + 1)?;
            }
            write_indent(f, depth)?;
            f.write_str("}\n")
        }
        PatternNode::Optional { first } => {
            write_indent(f, depth)?;
            f.write_str("OPTIONAL {\n")?;
            for c in p.children_from(first) {
                write_node(f, p, c, resolver, fresh_base, depth + 1)?;
            }
            write_indent(f, depth)?;
            f.write_str("}\n")
        }
        PatternNode::Union { first } => {
            for (i, branch) in p.children_from(first).enumerate() {
                if i > 0 {
                    write_indent(f, depth)?;
                    f.write_str("UNION\n")?;
                }
                write_node(f, p, branch, resolver, fresh_base, depth)?;
            }
            Ok(())
        }
        PatternNode::Filter { expr } => {
            write_indent(f, depth)?;
            f.write_str("FILTER(")?;
            write_expr(f, p, expr, resolver, fresh_base)?;
            f.write_str(")\n")
        }
        PatternNode::Service { endpoint, first } => {
            write_indent(f, depth)?;
            f.write_str("SERVICE ")?;
            write_term(f, endpoint, resolver, fresh_base)?;
            f.write_str(" {\n")?;
            for c in p.children_from(first) {
                write_node(f, p, c, resolver, fresh_base, depth + 1)?;
            }
            write_indent(f, depth)?;
            f.write_str("}\n")
        }
    }
}

/// Render the whole pattern as `{ ... }` (no trailing newline).
fn write_pattern<W: fmt::Write + ?Sized, R: Resolve>(
    f: &mut W,
    p: &GroupPattern,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    f.write_str("{\n")?;
    for c in p.root_children() {
        write_node(f, p, c, resolver, fresh_base, 1)?;
    }
    f.write_str("}")
}

pub struct DisplayPattern<'a, R: Resolve> {
    pattern: &'a GroupPattern,
    resolver: &'a R,
    fresh_base: String,
}

impl<R: Resolve> fmt::Display for DisplayPattern<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_pattern(f, self.pattern, self.resolver, &self.fresh_base)
    }
}

pub struct DisplayQuery<'a, R: Resolve> {
    query: &'a Query,
    resolver: &'a R,
    fresh_base: String,
}

impl<R: Resolve> fmt::Display for DisplayQuery<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_query(f, self.query.as_ref(), self.resolver, &self.fresh_base)
    }
}

/// Render a full query (projection + pattern) to any writer.
fn write_query<W: fmt::Write + ?Sized, R: Resolve>(
    f: &mut W,
    q: QueryRef<'_>,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    f.write_str("SELECT")?;
    match q.select {
        None => f.write_str(" *")?,
        Some(vars) => {
            for v in vars {
                f.write_str(" ")?;
                write_term(f, *v, resolver, fresh_base)?;
            }
        }
    }
    f.write_str(" WHERE ")?;
    write_pattern(f, q.pattern, resolver, fresh_base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn triple_pattern_is_twelve_bytes_and_copy() {
        assert_eq!(std::mem::size_of::<TriplePattern>(), 12);
        fn assert_copy<T: Copy>() {}
        assert_copy::<TriplePattern>();
        assert_copy::<PatternNode>();
        assert_copy::<ExprNode>();
    }

    #[test]
    fn renders_all_term_kinds() {
        let mut i = Interner::new();
        let tp = TriplePattern::new(
            Term::var(i.intern("s")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::literal(i.intern("\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>")),
        );
        assert_eq!(
            tp.display(&i).to_string(),
            "?s <http://ex.org/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> ."
        );
        let tp2 = TriplePattern::new(
            Term::blank(i.intern("b0")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::literal(i.intern("\"hi\"@en")),
        );
        assert_eq!(
            tp2.display(&i).to_string(),
            "_:b0 <http://ex.org/p> \"hi\"@en ."
        );
    }

    #[test]
    fn renders_fresh_terms_with_lazy_names() {
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let tp = TriplePattern::new(Term::fresh(0), p, Term::fresh(1));
        assert_eq!(tp.display(&i).to_string(), "?g0 <http://ex.org/p> ?g1 .");
    }

    #[test]
    fn fresh_rendering_dodges_query_g_vars() {
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let g0 = Term::var(i.intern("g0"));
        let g3 = Term::var(i.intern("g3"));
        // Query uses parsed ?g0 and ?g3; fresh 0 and 1 must render past g3.
        let bgp = Bgp::new(vec![
            TriplePattern::new(g0, p, g3),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(text.contains("?g0 <http://ex.org/p> ?g3"), "{text}");
        assert!(text.contains("?g4 <http://ex.org/p> ?g5"), "{text}");
    }

    #[test]
    fn fresh_rendering_ignores_non_canonical_g_names() {
        // "gx" and "g1x" are not canonical g{digits} names.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gx = Term::var(i.intern("gx"));
        let g1x = Term::var(i.intern("g1x"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gx, p, g1x),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(text.contains("?g0 <http://ex.org/p> ?g1"), "{text}");
    }

    #[test]
    fn fresh_rendering_survives_u32_max_g_var() {
        // A parsed variable named g4294967295 (k = u32::MAX) must push the
        // base past u32 entirely — no collision, no overflow.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gmax = Term::var(i.intern("g4294967295"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gmax, p, gmax),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(
            text.contains("?g4294967296 <http://ex.org/p> ?g4294967297"),
            "{text}"
        );
    }

    #[test]
    fn fresh_rendering_survives_u64_max_g_var() {
        // Decimal-string arithmetic: no integer width to overflow.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gmax = Term::var(i.intern("g18446744073709551615"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gmax, p, Term::fresh(0)),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(text.contains("?g18446744073709551616"), "{text}");
        assert!(text.contains("?g18446744073709551617"), "{text}");
        assert!(!text.contains("?g18446744073709551615 <http://ex.org/p> ?g18446744073709551615"));
    }

    #[test]
    fn fresh_rendering_survives_u128_max_g_var() {
        // The former fixed-width worst case: a variable named g{u128::MAX}.
        // String arithmetic carries into a 40th digit; no panic, no wrap,
        // no collision.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gmax = Term::var(i.intern("g340282366920938463463374607431768211455"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gmax, p, Term::fresh(0)),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(
            text.contains("?g340282366920938463463374607431768211456"),
            "{text}"
        );
        assert!(
            text.contains("?g340282366920938463463374607431768211457"),
            "{text}"
        );
    }

    #[test]
    fn decimal_add_carries_correctly() {
        assert_eq!(decimal_add("0", 0), "0");
        assert_eq!(decimal_add("0", 7), "7");
        assert_eq!(decimal_add("9", 1), "10");
        assert_eq!(decimal_add("99", 1), "100");
        assert_eq!(decimal_add("123", 877), "1000");
        assert_eq!(
            decimal_add("18446744073709551615", u32::MAX),
            "18446744078004518910"
        );
    }

    #[test]
    fn renders_with_frozen_interner() {
        let mut i = Interner::new();
        let tp = TriplePattern::new(
            Term::var(i.intern("s")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::fresh(2),
        );
        let frozen = i.freeze();
        assert_eq!(
            tp.display(&frozen).to_string(),
            "?s <http://ex.org/p> ?g2 ."
        );
    }

    fn sample_triple(i: &mut Interner, n: usize) -> TriplePattern {
        TriplePattern::new(
            Term::var(i.intern(&format!("s{n}"))),
            Term::iri(i.intern(&format!("http://ex.org/p{n}"))),
            Term::var(i.intern(&format!("o{n}"))),
        )
    }

    /// Build `{ t0 . OPTIONAL { t1 } { t2 } UNION { t3 } FILTER(?s0 < lit) }`.
    fn sample_group(i: &mut Interner) -> GroupPattern {
        let mut p = GroupPattern::new();
        let mut chain = ChainBuilder::new();
        let t = [
            sample_triple(i, 0),
            sample_triple(i, 1),
            sample_triple(i, 2),
            sample_triple(i, 3),
        ];
        p.triples.push(t[0]);
        let run0 = p.push_node(PatternNode::Triples { start: 0, len: 1 });
        chain.push(&mut p, run0);

        p.triples.push(t[1]);
        let run1 = p.push_node(PatternNode::Triples { start: 1, len: 1 });
        let opt = p.push_node(PatternNode::Optional { first: run1 });
        chain.push(&mut p, opt);

        let mut branches = ChainBuilder::new();
        for (k, tp) in t.iter().enumerate().skip(2) {
            p.triples.push(*tp);
            let run = p.push_node(PatternNode::Triples {
                start: k as u32,
                len: 1,
            });
            let g = p.push_node(PatternNode::Group { first: run });
            branches.push(&mut p, g);
        }
        let union = p.push_node(PatternNode::Union {
            first: branches.first(),
        });
        chain.push(&mut p, union);

        let lhs = p.push_expr(ExprNode::Term(Term::var(i.intern("s0"))));
        let rhs = p.push_expr(ExprNode::Term(Term::literal(
            i.intern("\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>"),
        )));
        let cmp = p.push_expr(ExprNode::Cmp(CmpOp::Lt, lhs, rhs));
        let filter = p.push_node(PatternNode::Filter { expr: cmp });
        chain.push(&mut p, filter);

        p.root = p.push_node(PatternNode::Group {
            first: chain.first(),
        });
        p
    }

    #[test]
    fn group_pattern_renders_all_shapes() {
        let mut i = Interner::new();
        let p = sample_group(&mut i);
        let text = p.display(&i).to_string();
        assert_eq!(
            text,
            "{\n  ?s0 <http://ex.org/p0> ?o0 .\n  OPTIONAL {\n    ?s1 <http://ex.org/p1> ?o1 .\n  }\n  \
             {\n    ?s2 <http://ex.org/p2> ?o2 .\n  }\n  UNION\n  {\n    ?s3 <http://ex.org/p3> ?o3 .\n  }\n  \
             FILTER(?s0 < \"3\"^^<http://www.w3.org/2001/XMLSchema#integer>)\n}"
        );
    }

    #[test]
    fn service_node_renders_and_compares_structurally() {
        let mut i = Interner::new();
        let build = |i: &mut Interner, ep: Term| {
            let mut p = GroupPattern::new();
            let t = sample_triple(i, 0);
            p.triples.push(t);
            let run = p.push_node(PatternNode::Triples { start: 0, len: 1 });
            let svc = p.push_node(PatternNode::Service {
                endpoint: ep,
                first: run,
            });
            p.root = p.push_node(PatternNode::Group { first: svc });
            p
        };
        let ep = Term::iri(i.intern("http://fed.example.org/sparql"));
        let p = build(&mut i, ep);
        assert_eq!(
            p.display(&i).to_string(),
            "{\n  SERVICE <http://fed.example.org/sparql> {\n    ?s0 <http://ex.org/p0> ?o0 .\n  }\n}"
        );
        // Same tree, same endpoint: equal. Different endpoint: unequal.
        assert_eq!(p, build(&mut i, ep));
        let other = Term::iri(i.intern("http://fed.example.org/other"));
        assert_ne!(p, build(&mut i, other));
        // Endpoint terms participate in fresh-base computation: a service
        // endpoint variable named g5 pushes fresh names past it.
        let gvar = Term::var(i.intern("g5"));
        let mut q = build(&mut i, gvar);
        q.triples.push(TriplePattern::new(
            Term::fresh(0),
            Term::iri(i.intern("http://ex.org/p")),
            Term::fresh(1),
        ));
        let run = q.push_node(PatternNode::Triples { start: 1, len: 1 });
        let PatternNode::Group { first } = q.nodes[q.root as usize] else {
            unreachable!()
        };
        q.next[first as usize] = run;
        let text = q.display(&i).to_string();
        assert!(text.contains("SERVICE ?g5 {"), "{text}");
        assert!(text.contains("?g6 <http://ex.org/p> ?g7 ."), "{text}");
    }

    #[test]
    fn structural_equality_ignores_buffer_layout() {
        let mut i = Interner::new();
        let a = sample_group(&mut i);
        // Same tree, different layout: build in a different node order by
        // round-tripping through a second build that prepends junk triples
        // to the pool (referenced by no run) and re-creates the tree.
        let mut b = sample_group(&mut i);
        b.triples.push(sample_triple(&mut i, 9)); // unreachable from any run
        assert_eq!(a, b, "unreachable pool entries must not affect equality");

        // A genuinely different tree is unequal.
        let mut c = sample_group(&mut i);
        let extra = c.triples.len() as u32;
        c.triples.push(sample_triple(&mut i, 5));
        let run = c.push_node(PatternNode::Triples {
            start: extra,
            len: 1,
        });
        let root = c.root;
        // Append the run to the root group's chain.
        let PatternNode::Group { first } = c.nodes[root as usize] else {
            unreachable!()
        };
        let mut last = first;
        while c.next[last as usize] != NO_NODE {
            last = c.next[last as usize];
        }
        c.next[last as usize] = run;
        assert_ne!(a, c);
    }

    #[test]
    fn from_bgp_is_flat_and_empty_pattern_renders() {
        let mut i = Interner::new();
        let bgp = Bgp::new(vec![sample_triple(&mut i, 0)]);
        let p = GroupPattern::from_bgp(&bgp);
        assert!(p.is_flat());
        assert_eq!(p.triples, bgp.patterns);
        let empty = GroupPattern::new();
        assert_eq!(empty.display(&i).to_string(), "{\n}");
        assert_eq!(empty, GroupPattern::from_bgp(&Bgp::default()));
    }
}
