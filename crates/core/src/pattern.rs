//! Triple patterns, basic graph patterns, and queries — plus `Display`
//! rendering back to valid SPARQL text.
//!
//! Terms are interner symbols, so rendering needs the [`Interner`] that
//! minted them; `display(&interner)` pairs a value with its interner and the
//! pair implements [`std::fmt::Display`].

use std::fmt;

use crate::interner::Interner;
use crate::term::{Term, TermKind};

/// One SPARQL triple pattern. 12 bytes, `Copy`: equality and hashing are
/// three integer comparisons, and a BGP is a cache-friendly flat `Vec`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TriplePattern {
    pub s: Term,
    pub p: Term,
    pub o: Term,
}

impl TriplePattern {
    #[inline]
    pub fn new(s: Term, p: Term, o: Term) -> TriplePattern {
        TriplePattern { s, p, o }
    }

    #[inline]
    pub fn terms(&self) -> [Term; 3] {
        [self.s, self.p, self.o]
    }

    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayTriple<'a> {
        DisplayTriple { tp: self, interner }
    }
}

/// A basic graph pattern: a conjunction of triple patterns.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bgp {
    pub patterns: Vec<TriplePattern>,
}

impl Bgp {
    pub fn new(patterns: Vec<TriplePattern>) -> Bgp {
        Bgp { patterns }
    }

    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayBgp<'a> {
        DisplayBgp {
            bgp: self,
            interner,
        }
    }
}

/// Projection of a SELECT query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// `SELECT ?a ?b …` — terms are guaranteed to be variables by the parser.
    Vars(Vec<Term>),
}

/// A parsed SELECT query restricted to the fragment the rewriter handles:
/// projection plus one basic graph pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    pub select: SelectList,
    pub bgp: Bgp,
}

impl Query {
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayQuery<'a> {
        DisplayQuery {
            query: self,
            interner,
        }
    }
}

fn write_term(f: &mut fmt::Formatter<'_>, t: Term, interner: &Interner) -> fmt::Result {
    let text = interner.resolve(t.symbol());
    match t.kind() {
        TermKind::Iri => write!(f, "<{text}>"),
        // Literals are interned with their full surface form (quotes,
        // @lang / ^^datatype suffix) so they render verbatim.
        TermKind::Literal => f.write_str(text),
        TermKind::Blank => write!(f, "_:{text}"),
        TermKind::Var => write!(f, "?{text}"),
    }
}

pub struct DisplayTriple<'a> {
    tp: &'a TriplePattern,
    interner: &'a Interner,
}

impl fmt::Display for DisplayTriple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(f, self.tp.s, self.interner)?;
        f.write_str(" ")?;
        write_term(f, self.tp.p, self.interner)?;
        f.write_str(" ")?;
        write_term(f, self.tp.o, self.interner)?;
        f.write_str(" .")
    }
}

pub struct DisplayBgp<'a> {
    bgp: &'a Bgp,
    interner: &'a Interner,
}

impl fmt::Display for DisplayBgp<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{\n")?;
        for tp in &self.bgp.patterns {
            writeln!(f, "  {}", tp.display(self.interner))?;
        }
        f.write_str("}")
    }
}

pub struct DisplayQuery<'a> {
    query: &'a Query,
    interner: &'a Interner,
}

impl fmt::Display for DisplayQuery<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT")?;
        match &self.query.select {
            SelectList::Star => f.write_str(" *")?,
            SelectList::Vars(vars) => {
                for v in vars {
                    f.write_str(" ")?;
                    write_term(f, *v, self.interner)?;
                }
            }
        }
        write!(f, " WHERE {}", self.query.bgp.display(self.interner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triple_pattern_is_twelve_bytes_and_copy() {
        assert_eq!(std::mem::size_of::<TriplePattern>(), 12);
        fn assert_copy<T: Copy>() {}
        assert_copy::<TriplePattern>();
    }

    #[test]
    fn renders_all_term_kinds() {
        let mut i = Interner::new();
        let tp = TriplePattern::new(
            Term::var(i.intern("s")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::literal(i.intern("\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>")),
        );
        assert_eq!(
            tp.display(&i).to_string(),
            "?s <http://ex.org/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> ."
        );
        let tp2 = TriplePattern::new(
            Term::blank(i.intern("b0")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::literal(i.intern("\"hi\"@en")),
        );
        assert_eq!(
            tp2.display(&i).to_string(),
            "_:b0 <http://ex.org/p> \"hi\"@en ."
        );
    }
}
