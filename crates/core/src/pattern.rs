//! Triple patterns, basic graph patterns, and queries — plus `Display`
//! rendering back to valid SPARQL text.
//!
//! Parsed terms are interner symbols, so rendering needs a resolver
//! implementing [`Resolve`] — either the build-phase
//! [`Interner`](crate::interner::Interner) or the frozen serve-phase
//! [`FrozenInterner`](crate::interner::FrozenInterner);
//! `display(&resolver)` pairs a value with its resolver and the pair
//! implements [`std::fmt::Display`].
//!
//! # Fresh-variable rendering
//!
//! [`TermKind::Fresh`] terms carry a counter, not a string; their `g{n}`
//! names are materialized here, lazily. To keep the rendered text
//! capture-free even though the *structural* guarantee (fresh ≠ any parsed
//! var) does not survive textual round-trips, the display adapters scan the
//! value being rendered for parsed variables already named `g{k}` and offset
//! every fresh counter past the largest such `k`. Distinct counters map to
//! distinct names and no name collides with a query variable, so rendered
//! output re-parses to a query with identical solutions.

use std::fmt;

use crate::interner::Resolve;
use crate::term::{Term, TermKind};

/// One SPARQL triple pattern. 12 bytes, `Copy`: equality and hashing are
/// three integer comparisons, and a BGP is a cache-friendly flat `Vec`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct TriplePattern {
    pub s: Term,
    pub p: Term,
    pub o: Term,
}

impl TriplePattern {
    #[inline]
    pub fn new(s: Term, p: Term, o: Term) -> TriplePattern {
        TriplePattern { s, p, o }
    }

    #[inline]
    pub fn terms(&self) -> [Term; 3] {
        [self.s, self.p, self.o]
    }

    /// Render this triple in isolation.
    ///
    /// Fresh-term naming is computed from *this triple's* terms only: the
    /// same `Fresh` counter may render under different `g{n}` names in
    /// different triples of one BGP, and may collide with `g`-named
    /// variables that appear only in *other* triples. To render part of a
    /// rewritten BGP with consistent, capture-free existential names, use
    /// [`Bgp::display`] / [`Query::display`] on the whole value instead.
    pub fn display<'a, R: Resolve>(&'a self, resolver: &'a R) -> DisplayTriple<'a, R> {
        let fresh_base = fresh_render_base(self.terms().into_iter(), resolver);
        DisplayTriple {
            tp: self,
            resolver,
            fresh_base,
        }
    }
}

/// A basic graph pattern: a conjunction of triple patterns.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bgp {
    pub patterns: Vec<TriplePattern>,
}

impl Bgp {
    pub fn new(patterns: Vec<TriplePattern>) -> Bgp {
        Bgp { patterns }
    }

    /// Render this BGP in isolation.
    ///
    /// Fresh-term naming is computed from the BGP's terms only. A `g`-named
    /// variable that exists solely in a surrounding context (e.g. a
    /// projection variable absent from the BGP) is not seen here, so
    /// splicing this rendering into other query text can capture an
    /// existential. To render a rewritten query with its projection taken
    /// into account, use [`Query::display`] instead.
    pub fn display<'a, R: Resolve>(&'a self, resolver: &'a R) -> DisplayBgp<'a, R> {
        let fresh_base =
            fresh_render_base(self.patterns.iter().flat_map(|tp| tp.terms()), resolver);
        DisplayBgp {
            bgp: self,
            resolver,
            fresh_base,
        }
    }
}

/// Projection of a SELECT query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SelectList {
    /// `SELECT *`
    Star,
    /// `SELECT ?a ?b …` — terms are guaranteed to be variables by the parser.
    Vars(Vec<Term>),
}

/// A parsed SELECT query restricted to the fragment the rewriter handles:
/// projection plus one basic graph pattern.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Query {
    pub select: SelectList,
    pub bgp: Bgp,
}

impl Query {
    pub fn display<'a, R: Resolve>(&'a self, resolver: &'a R) -> DisplayQuery<'a, R> {
        let select_vars: &[Term] = match &self.select {
            SelectList::Star => &[],
            SelectList::Vars(vars) => vars,
        };
        let fresh_base = fresh_render_base(
            self.bgp
                .patterns
                .iter()
                .flat_map(|tp| tp.terms())
                .chain(select_vars.iter().copied()),
            resolver,
        );
        DisplayQuery {
            query: self,
            resolver,
            fresh_base,
        }
    }
}

/// Is `s` a canonical decimal numeral (no sign, no leading zero except "0"
/// itself)? Rendered fresh names are always canonical, so only canonical
/// parsed `g{k}` names can ever collide with them; non-canonical ones
/// (`g007`, `gx`) are textually unreachable and ignored.
fn is_canonical_decimal(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) && (s.len() == 1 || !s.starts_with('0'))
}

/// Arbitrary-precision `digits + n` over a canonical decimal numeral.
/// Fresh-name arithmetic runs on decimal strings rather than a fixed-width
/// integer so there is no width at which the offset scheme can overflow or
/// saturate into a collision, no matter how large a `g{k}` variable name the
/// query uses.
fn decimal_add(digits: &str, n: u32) -> String {
    let mut out: Vec<u8> = digits.bytes().rev().collect();
    let mut carry = n as u64;
    for b in out.iter_mut() {
        if carry == 0 {
            break;
        }
        let sum = (*b - b'0') as u64 + carry;
        *b = b'0' + (sum % 10) as u8;
        carry = sum / 10;
    }
    while carry > 0 {
        out.push(b'0' + (carry % 10) as u8);
        carry /= 10;
    }
    out.reverse();
    String::from_utf8(out).expect("decimal digits are valid UTF-8")
}

/// Smallest counter offset (as a canonical decimal string) such that no
/// rendered fresh name `g{base + n}` collides with a parsed variable of the
/// rendered value: one past the largest `k` of any variable literally named
/// `g{k}`. Canonical decimals compare numerically by (length, lexicographic).
fn fresh_render_base<R: Resolve>(terms: impl Iterator<Item = Term>, resolver: &R) -> String {
    let mut max: Option<&str> = None;
    for t in terms {
        if t.kind() != TermKind::Var {
            continue;
        }
        let name = resolver.resolve(t.symbol());
        if let Some(digits) = name.strip_prefix('g') {
            if is_canonical_decimal(digits)
                && max.is_none_or(|m| (digits.len(), digits) > (m.len(), m))
            {
                max = Some(digits);
            }
        }
    }
    match max {
        None => "0".to_string(),
        Some(m) => decimal_add(m, 1),
    }
}

fn write_term<R: Resolve>(
    f: &mut fmt::Formatter<'_>,
    t: Term,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    if t.kind() == TermKind::Fresh {
        return write!(f, "?g{}", decimal_add(fresh_base, t.fresh_index()));
    }
    let text = resolver.resolve(t.symbol());
    match t.kind() {
        TermKind::Iri => write!(f, "<{text}>"),
        // Literals are interned with their full surface form (quotes,
        // @lang / ^^datatype suffix) so they render verbatim.
        TermKind::Literal => f.write_str(text),
        TermKind::Blank => write!(f, "_:{text}"),
        TermKind::Var => write!(f, "?{text}"),
        TermKind::Fresh => unreachable!("handled above"),
    }
}

pub struct DisplayTriple<'a, R: Resolve> {
    tp: &'a TriplePattern,
    resolver: &'a R,
    fresh_base: String,
}

impl<R: Resolve> fmt::Display for DisplayTriple<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_triple(f, self.tp, self.resolver, &self.fresh_base)
    }
}

fn write_triple<R: Resolve>(
    f: &mut fmt::Formatter<'_>,
    tp: &TriplePattern,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    write_term(f, tp.s, resolver, fresh_base)?;
    f.write_str(" ")?;
    write_term(f, tp.p, resolver, fresh_base)?;
    f.write_str(" ")?;
    write_term(f, tp.o, resolver, fresh_base)?;
    f.write_str(" .")
}

pub struct DisplayBgp<'a, R: Resolve> {
    bgp: &'a Bgp,
    resolver: &'a R,
    fresh_base: String,
}

impl<R: Resolve> fmt::Display for DisplayBgp<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_bgp(f, self.bgp, self.resolver, &self.fresh_base)
    }
}

fn write_bgp<R: Resolve>(
    f: &mut fmt::Formatter<'_>,
    bgp: &Bgp,
    resolver: &R,
    fresh_base: &str,
) -> fmt::Result {
    f.write_str("{\n")?;
    for tp in &bgp.patterns {
        f.write_str("  ")?;
        write_triple(f, tp, resolver, fresh_base)?;
        f.write_str("\n")?;
    }
    f.write_str("}")
}

pub struct DisplayQuery<'a, R: Resolve> {
    query: &'a Query,
    resolver: &'a R,
    fresh_base: String,
}

impl<R: Resolve> fmt::Display for DisplayQuery<'_, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT")?;
        match &self.query.select {
            SelectList::Star => f.write_str(" *")?,
            SelectList::Vars(vars) => {
                for v in vars {
                    f.write_str(" ")?;
                    write_term(f, *v, self.resolver, &self.fresh_base)?;
                }
            }
        }
        f.write_str(" WHERE ")?;
        write_bgp(f, &self.query.bgp, self.resolver, &self.fresh_base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    #[test]
    fn triple_pattern_is_twelve_bytes_and_copy() {
        assert_eq!(std::mem::size_of::<TriplePattern>(), 12);
        fn assert_copy<T: Copy>() {}
        assert_copy::<TriplePattern>();
    }

    #[test]
    fn renders_all_term_kinds() {
        let mut i = Interner::new();
        let tp = TriplePattern::new(
            Term::var(i.intern("s")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::literal(i.intern("\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>")),
        );
        assert_eq!(
            tp.display(&i).to_string(),
            "?s <http://ex.org/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> ."
        );
        let tp2 = TriplePattern::new(
            Term::blank(i.intern("b0")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::literal(i.intern("\"hi\"@en")),
        );
        assert_eq!(
            tp2.display(&i).to_string(),
            "_:b0 <http://ex.org/p> \"hi\"@en ."
        );
    }

    #[test]
    fn renders_fresh_terms_with_lazy_names() {
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let tp = TriplePattern::new(Term::fresh(0), p, Term::fresh(1));
        assert_eq!(tp.display(&i).to_string(), "?g0 <http://ex.org/p> ?g1 .");
    }

    #[test]
    fn fresh_rendering_dodges_query_g_vars() {
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let g0 = Term::var(i.intern("g0"));
        let g3 = Term::var(i.intern("g3"));
        // Query uses parsed ?g0 and ?g3; fresh 0 and 1 must render past g3.
        let bgp = Bgp::new(vec![
            TriplePattern::new(g0, p, g3),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(text.contains("?g0 <http://ex.org/p> ?g3"), "{text}");
        assert!(text.contains("?g4 <http://ex.org/p> ?g5"), "{text}");
    }

    #[test]
    fn fresh_rendering_ignores_non_canonical_g_names() {
        // "gx" and "g1x" are not canonical g{digits} names.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gx = Term::var(i.intern("gx"));
        let g1x = Term::var(i.intern("g1x"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gx, p, g1x),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(text.contains("?g0 <http://ex.org/p> ?g1"), "{text}");
    }

    #[test]
    fn fresh_rendering_survives_u32_max_g_var() {
        // A parsed variable named g4294967295 (k = u32::MAX) must push the
        // base past u32 entirely — no collision, no overflow.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gmax = Term::var(i.intern("g4294967295"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gmax, p, gmax),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(
            text.contains("?g4294967296 <http://ex.org/p> ?g4294967297"),
            "{text}"
        );
    }

    #[test]
    fn fresh_rendering_survives_u64_max_g_var() {
        // Decimal-string arithmetic: no integer width to overflow.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gmax = Term::var(i.intern("g18446744073709551615"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gmax, p, Term::fresh(0)),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(text.contains("?g18446744073709551616"), "{text}");
        assert!(text.contains("?g18446744073709551617"), "{text}");
        assert!(!text.contains("?g18446744073709551615 <http://ex.org/p> ?g18446744073709551615"));
    }

    #[test]
    fn fresh_rendering_survives_u128_max_g_var() {
        // The former fixed-width worst case: a variable named g{u128::MAX}.
        // String arithmetic carries into a 40th digit; no panic, no wrap,
        // no collision.
        let mut i = Interner::new();
        let p = Term::iri(i.intern("http://ex.org/p"));
        let gmax = Term::var(i.intern("g340282366920938463463374607431768211455"));
        let bgp = Bgp::new(vec![
            TriplePattern::new(gmax, p, Term::fresh(0)),
            TriplePattern::new(Term::fresh(0), p, Term::fresh(1)),
        ]);
        let text = bgp.display(&i).to_string();
        assert!(
            text.contains("?g340282366920938463463374607431768211456"),
            "{text}"
        );
        assert!(
            text.contains("?g340282366920938463463374607431768211457"),
            "{text}"
        );
    }

    #[test]
    fn decimal_add_carries_correctly() {
        assert_eq!(decimal_add("0", 0), "0");
        assert_eq!(decimal_add("0", 7), "7");
        assert_eq!(decimal_add("9", 1), "10");
        assert_eq!(decimal_add("99", 1), "100");
        assert_eq!(decimal_add("123", 877), "1000");
        assert_eq!(
            decimal_add("18446744073709551615", u32::MAX),
            "18446744078004518910"
        );
    }

    #[test]
    fn renders_with_frozen_interner() {
        let mut i = Interner::new();
        let tp = TriplePattern::new(
            Term::var(i.intern("s")),
            Term::iri(i.intern("http://ex.org/p")),
            Term::fresh(2),
        );
        let frozen = i.freeze();
        assert_eq!(
            tp.display(&frozen).to_string(),
            "?s <http://ex.org/p> ?g2 ."
        );
    }
}
