//! Minimal inline small-vector for `Copy` element types.
//!
//! The alignment index maps each symbol to the handful of rules that mention
//! it; the common case is 1–2 rules, so spilling every posting list to its
//! own heap `Vec` would make index build and lookup allocation-bound. This
//! is a safe stand-in for the `smallvec` crate (unavailable: no registry
//! access in the build container), restricted to `Copy + Default` elements
//! so the inline buffer needs no `MaybeUninit`.

/// A vector storing up to `N` elements inline before spilling to the heap.
#[derive(Clone, Debug)]
pub enum SmallVec<T: Copy + Default, const N: usize = 4> {
    Inline { len: u32, buf: [T; N] },
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    #[inline]
    fn default() -> Self {
        SmallVec::Inline {
            len: 0,
            buf: [T::default(); N],
        }
    }
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn push(&mut self, value: T) {
        match self {
            SmallVec::Inline { len, buf } => {
                let l = *len as usize;
                if l < N {
                    buf[l] = value;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(N * 2);
                    v.extend_from_slice(&buf[..l]);
                    v.push(value);
                    *self = SmallVec::Heap(v);
                }
            }
            SmallVec::Heap(v) => v.push(value),
        }
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            SmallVec::Inline { len, buf } => &buf[..*len as usize],
            SmallVec::Heap(v) => v.as_slice(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn spilled(&self) -> bool {
        matches!(self, SmallVec::Heap(_))
    }

    #[inline]
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_then_spills() {
        let mut sv: SmallVec<u32, 4> = SmallVec::new();
        for i in 0..4 {
            sv.push(i);
        }
        assert!(!sv.spilled());
        assert_eq!(sv.as_slice(), &[0, 1, 2, 3]);
        sv.push(4);
        assert!(sv.spilled());
        assert_eq!(sv.as_slice(), &[0, 1, 2, 3, 4]);
        for i in 5..100 {
            sv.push(i);
        }
        assert_eq!(sv.len(), 100);
        assert_eq!(sv.as_slice()[99], 99);
    }

    #[test]
    fn empty_by_default() {
        let sv: SmallVec<u32, 2> = SmallVec::default();
        assert!(sv.is_empty());
        assert_eq!(sv.iter().count(), 0);
    }
}
