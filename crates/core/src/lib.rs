pub fn placeholder() {}
