//! # sparql-rewrite-core
//!
//! High-throughput implementation of the SPARQL BGP rewriting approach of
//! Correndo et al., *"SPARQL query rewriting for implementing data
//! integration over linked data"* (EDBT 2010): queries written against a
//! source ontology are rewritten — via entity and predicate alignments —
//! into queries over a target ontology.
//!
//! Performance is structural, not bolted on:
//!
//! * [`term::Term`] packs kind + interner symbol into 4 bytes, so a
//!   [`pattern::TriplePattern`] is a 12-byte `Copy` value and all hot-path
//!   comparisons are integer ops ([`interner::Interner`] holds the strings).
//! * [`pattern::GroupPattern`] stores the full group-graph-pattern tree
//!   (nested groups, OPTIONAL, UNION, FILTER) *flattened*: nodes, sibling
//!   links, triples, and filter expressions are four flat `Vec`s of `Copy`
//!   values — no per-node boxing, so a whole rewritten tree fits in
//!   reusable scratch buffers.
//! * [`parser`] tokenizes without allocating — input slices are borrowed
//!   until intern time — and [`parser::parse_query_into`] writes into a
//!   caller-owned [`parser::ParseScratch`], so steady-state parsing (every
//!   string already interned) performs zero heap allocations.
//! * [`align::AlignmentStore`] maintains FxHash rule indexes during the
//!   build phase and lowers them into **dense direct-indexed tables** keyed
//!   by interner symbol id at freeze time
//!   ([`align::AlignmentStore::build_dense_index`], sized by
//!   [`interner::Interner::symbol_bound`]): candidate lookup per triple
//!   pattern is then a bounds-checked array load, no hashing at all, with
//!   the hash maps kept as the sparse-dictionary fallback.
//!   [`rewriter::LinearRewriter`] is the O(rules) baseline kept behind the
//!   same [`rewriter::Rewriter`] trait for benchmarking.
//! * [`rewriter`] applies entity alignments (inside FILTER expressions
//!   too) and expands a triple pattern matched by N predicate templates
//!   into an N-branch UNION — the paper's union semantics — recursively
//!   over the whole group tree. Complex correspondences
//!   ([`align::Rule::Complex`]: guarded group-pattern templates with
//!   chain bodies, emitted FILTER constraints, and value transforms) ride
//!   the same engine — guards are statically decided per match where
//!   possible and emitted as residual FILTERs where not.
//! * [`cache`] exploits that rewriting is deterministic per (query text,
//!   rule set): [`cache::fingerprint_query`] canonicalizes request text in
//!   a single ~100ns byte-level pass (whitespace, keyword case, PREFIX
//!   aliases) and [`cache::RewriteCache`] maps the fingerprint to the
//!   rendered rewrite through sharded, read-lock-free seqlock slots — a
//!   repeated query is served by normalize + hash + memcpy instead of
//!   parse + rewrite + render, invalidated by the store's
//!   [`align::AlignmentStore::revision`] generation tag.
//! * [`federate`] turns N per-endpoint [`align::AlignmentStore`]s into a
//!   fault-tolerant dispatch plan: patterns are partitioned by which
//!   endpoint's rules can rewrite them (O(1) candidate-count reads double
//!   as the statistics-free selectivity signal for ordering), rendered as
//!   `SERVICE`-annotated subqueries, and executed concurrently on a
//!   hand-rolled thread pool over a pluggable
//!   [`federate::EndpointTransport`] — each endpoint wrapped in deadlines,
//!   seeded-jitter retries, and a circuit breaker, degrading to
//!   deterministic partial results instead of all-or-nothing.
//!
//! The engine has two phases. The **build phase** is single-threaded and
//! mutable: parse queries and rules into an [`interner::Interner`] and an
//! [`align::AlignmentStore`]. The **serve phase** is shared and read-only:
//! [`interner::Interner::freeze`] yields an `Arc`-shareable
//! [`interner::FrozenInterner`], rewriting takes `&self` only, and
//! template-introduced existentials are structural
//! [`term::TermKind::Fresh`] terms (no interning on the hot path). With a
//! caller-owned [`rewriter::RewriteScratch`], steady-state
//! `rewrite_query_into` performs zero heap allocations — and the whole
//! **serve pipeline** composes the same way: [`parser::parse_query_into`]
//! (into a [`parser::ParseScratch`]) → [`rewriter::Rewriter::
//! rewrite_ref_into`] (borrowing the parse via [`pattern::QueryRef`]) →
//! [`pattern::render_query_into`] (into a reusable `String`), zero
//! steady-state allocations end to end.
//!
//! See the workspace README for the paper's rewriting model and
//! `crates/bench-harness` for the measurement harness and the
//! multi-threaded batch engine.

pub mod align;
pub mod cache;
pub mod counting_alloc;
pub mod engine;
pub mod federate;
pub mod fxhash;
pub mod httpcore;
pub mod interner;
pub mod parser;
pub mod pattern;
pub mod rewriter;
pub mod smallvec;
pub mod term;

pub use align::{AlignError, AlignmentStore, Rule, RuleTemplate, TemplateRef, NO_EXPR};
pub use cache::{
    fingerprint_query, fingerprint_raw, CacheConfig, CacheStats, QueryFingerprint, RewriteCache,
    ShardCacheStats,
};
pub use engine::{ServeEngine, ServeScratch};
pub use federate::{
    classify_http_status, classify_io_error, mix_chain, read_response, BackoffPolicy,
    BreakerConfig, BreakerState, ChaosProxy, ChaosSpec, CircuitBreaker, DispatchPlan, EndpointId,
    EndpointOutcome, EndpointPlan, EndpointReport, EndpointTransport, ExecutorConfig, FaultClass,
    FaultSpec, FederatedExecutor, FederatedResult, FederationPlan, FederationPlanner, HttpConfig,
    HttpEndpoint, HttpError, HttpLimits, HttpResponse, HttpTransport, MockTransport,
    PartitionCacheStats, TransportError, TransportReply, TransportRequest,
};
pub use interner::{FrozenInterner, Interner, Resolve};
pub use parser::{parse_bgp, parse_query, parse_query_into, ParseError, ParseScratch};
pub use pattern::{
    render_query_into, Bgp, ChainBuilder, CmpOp, ExprNode, GroupPattern, PatternNode, Query,
    QueryRef, SelectList, TriplePattern, NO_NODE,
};
pub use rewriter::{
    IndexedRewriter, LinearRewriter, RewriteError, RewriteLimits, RewriteScratch, Rewriter,
};
pub use term::{Symbol, Term, TermKind};
