//! End-to-end serve engine: the full **parse → rewrite → render** request
//! pipeline over one shared, frozen rule set, fronted by the sharded
//! rewrite-result cache.
//!
//! This is the request-path shape the ROADMAP's north star asks for —
//! "queries/sec served" as a first-class number, not just rewrite
//! throughput. Per request the engine:
//!
//! 0. canonicalizes the request text into a [`QueryFingerprint`]
//!    (single-pass, ~100ns) and probes the shared [`RewriteCache`] — a hit
//!    copies the previously rendered rewrite straight into the output
//!    buffer and skips the pipeline entirely,
//! 1. parses SPARQL text into a caller-owned [`ParseScratch`]
//!    (worker-local interner — known strings resolve to their shared
//!    symbols, novel strings get worker-private ids that can never alias a
//!    rule symbol),
//! 2. rewrites the borrowed parse via [`Rewriter::rewrite_ref_into`]
//!    against the shared dense-indexed [`AlignmentStore`],
//! 3. renders the rewritten query into a reusable output `String` and
//!    fills the cache entry (stamped with the store's revision, so a
//!    post-freeze rule load invalidates it like the dense tables).
//!
//! Every stage writes into reusable buffers, so a warm
//! [`ServeEngine::serve`] call performs **zero heap allocations** on both
//! the hit and the cold path — the bench harness gates on that, parser and
//! cache probe included. The HTTP front end (`crates/server`) pins one
//! [`ServeScratch`] per worker thread and shares one `ServeEngine` behind
//! an `Arc`, so the same guarantee holds end to end through the socket
//! path.
//!
//! [`QueryFingerprint`]: crate::cache::QueryFingerprint

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard};
use std::thread;
use std::time::{Duration, Instant};

use crate::{
    fingerprint_query, fingerprint_raw, parse_query_into, render_query_into, AlignmentStore,
    CacheConfig, CacheStats, IndexedRewriter, Interner, ParseError, ParseScratch, QueryRef,
    RewriteCache, RewriteScratch, Rewriter,
};

/// Shared, read-only serve state: the dense-indexed rule set, the
/// build-phase interner workers clone from, and (unless disabled) the
/// shared rewrite-result cache.
pub struct ServeEngine {
    rewriter: IndexedRewriter<Arc<AlignmentStore>>,
    /// Build-phase interner snapshot. Workers clone it so parsing can
    /// intern novel strings without locks while every pre-existing symbol
    /// stays identical to the rule set's.
    base_interner: Interner,
    /// Rewrite-result cache behind its adaptive-cap slot; `None` when
    /// constructed cache-less (the harness's cold-pipeline configs and the
    /// `--no-cache` A/B runs).
    cache: Option<AdaptiveCache>,
    /// Rule-set revision the engine was frozen at — the generation tag for
    /// every cache entry. The store behind the `Arc` is immutable here, so
    /// one snapshot is exact; an engine rebuilt after `add_*` gets the new
    /// revision and every old entry lazily misses.
    revision: u64,
}

/// Per-worker reusable state for [`ServeEngine::serve`]. All steady-state
/// buffers live here; the engine itself is never mutated.
pub struct ServeScratch {
    interner: Interner,
    parse: ParseScratch,
    rewrite: RewriteScratch,
    fresh_base: String,
    out: String,
    /// Cache copy-out buffer (bytes are validated UTF-8 before use).
    hit_buf: Vec<u8>,
    /// Per-worker counters — on the scratch, not the engine, so hot-path
    /// accounting never touches a shared cache line.
    cache_hits: u64,
    cache_misses: u64,
}

impl ServeScratch {
    /// Cache hits recorded by this scratch since construction/reset.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Cache misses (cold serves while caching was enabled) recorded by
    /// this scratch since construction/reset.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    pub fn reset_cache_counters(&mut self) {
        self.cache_hits = 0;
        self.cache_misses = 0;
    }
}

/// Serves per adaptation window: the cap controller looks at the live
/// oversize-bypass rate once every this many served requests.
const ADAPT_WINDOW: u64 = 1024;
/// Absolute value-cap ceiling, matching the tuned-cache construction clamp.
const ADAPT_MAX_CAP: usize = 1 << 20;
/// Grow the cap when more than this percentage of a window's serves
/// bypassed the cache for being oversized.
const GROW_BYPASS_PCT: u64 = 5;
/// Shrink only when at most this percentage bypassed — the `(1%, 5%)`
/// band between the two thresholds is the hysteresis dead zone where the
/// cap holds.
const SHRINK_BYPASS_PCT: u64 = 1;

/// The rewrite cache behind a runtime cap controller.
///
/// [`RewriteCache`] physically sizes every shard's value pool by its cap,
/// so changing the cap means rebuilding the cache; this slot wraps the
/// cache in an `RwLock` whose read side is the per-serve cost (one atomic
/// acquire, no allocation). Once per [`ADAPT_WINDOW`] serves the
/// controller compares the window's oversize-bypass count against the
/// thresholds above: a bypass-heavy window doubles the cap (halving
/// slots-per-shard so the pool byte budget stays put), a bypass-free
/// window whose largest served rewrite fits comfortably halves it back.
/// Three guards keep it from oscillating: the dead zone between the
/// thresholds, the construction cap as a hard floor, and the
/// largest-rewrite-this-window check (hits included) — a hot oversize
/// value that got cached by a grow keeps the cap up even though it no
/// longer *bypasses* anything.
struct AdaptiveCache {
    slot: RwLock<RewriteCache>,
    /// Cap the engine was constructed with — the adaptive floor.
    base_cap: usize,
    /// Construction config; rebuilds derive their geometry from it.
    base_config: CacheConfig,
    serves: AtomicU64,
    /// Bypass counter reading at the last window boundary.
    last_bypasses: AtomicU64,
    /// Largest rendered rewrite served (hit or cold) this window.
    window_max_len: AtomicUsize,
    grows: AtomicU64,
    shrinks: AtomicU64,
}

impl AdaptiveCache {
    fn new(config: CacheConfig) -> AdaptiveCache {
        let cache = RewriteCache::new(config);
        let base_cap = cache.value_cap();
        AdaptiveCache {
            slot: RwLock::new(cache),
            base_cap,
            base_config: config,
            serves: AtomicU64::new(0),
            last_bypasses: AtomicU64::new(0),
            window_max_len: AtomicUsize::new(0),
            grows: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, RewriteCache> {
        self.slot.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Per-serve bookkeeping; every [`ADAPT_WINDOW`]-th serve runs one
    /// controller step. Allocation-free unless the step decides to resize.
    fn note_serve(&self, out_len: usize) {
        self.window_max_len.fetch_max(out_len, Ordering::Relaxed);
        if (self.serves.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(ADAPT_WINDOW) {
            self.adapt();
        }
    }

    /// Shard-slot count for a cap `k` doublings above the base: the pool
    /// byte budget (`slots × cap`) is held constant by trading entry count
    /// for entry size.
    fn slots_for(&self, new_cap: usize) -> usize {
        let k = (new_cap / self.base_cap).trailing_zeros();
        (self.base_config.slots_per_shard >> k).max(8)
    }

    fn adapt(&self) {
        let (bypasses, cur_cap) = {
            let c = self.read();
            (c.oversize_bypasses(), c.value_cap())
        };
        let delta = bypasses.saturating_sub(self.last_bypasses.swap(bypasses, Ordering::Relaxed));
        let window_max = self.window_max_len.swap(0, Ordering::Relaxed);
        let new_cap = if delta * 100 >= GROW_BYPASS_PCT * ADAPT_WINDOW {
            // Refuse to grow past the absolute ceiling or past the point
            // where the constant byte budget leaves too few slots to probe.
            if cur_cap.saturating_mul(2) > ADAPT_MAX_CAP || self.slots_for(cur_cap) <= 8 {
                return;
            }
            cur_cap * 2
        } else if delta * 100 <= SHRINK_BYPASS_PCT * ADAPT_WINDOW
            && cur_cap > self.base_cap
            && window_max.saturating_mul(2) <= cur_cap
        {
            (cur_cap / 2).max(self.base_cap)
        } else {
            return;
        };
        let mut slot = self.slot.write().unwrap_or_else(PoisonError::into_inner);
        if slot.value_cap() != cur_cap {
            // Another thread's controller step resized first; its window
            // accounting owns this boundary.
            return;
        }
        *slot = RewriteCache::new(CacheConfig {
            slots_per_shard: self.slots_for(new_cap),
            value_cap: new_cap,
            ..self.base_config
        });
        // The fresh cache's bypass counter restarts at zero.
        self.last_bypasses.store(0, Ordering::Relaxed);
        if new_cap > cur_cap {
            self.grows.fetch_add(1, Ordering::Relaxed);
        } else {
            self.shrinks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl ServeEngine {
    /// Freeze `store` (building its dense dispatch tables against
    /// `interner`'s symbol bound) and take a snapshot of the interner for
    /// worker clones. `cache` sizes the rewrite-result cache
    /// (`Some(CacheConfig::default())` for the production shape), or
    /// `None` serves every request through the cold pipeline — the
    /// `--no-cache` A/B path and the raw-pipeline bench configs.
    pub fn with_cache(
        mut store: AlignmentStore,
        interner: Interner,
        cache: Option<CacheConfig>,
    ) -> ServeEngine {
        store.build_dense_index(interner.symbol_bound());
        let revision = store.revision();
        ServeEngine {
            rewriter: IndexedRewriter::new(Arc::new(store)),
            base_interner: interner,
            cache: cache.map(AdaptiveCache::new),
            revision,
        }
    }

    /// Like [`ServeEngine::with_cache`], but the cache's value cap is
    /// **tuned from the workload** instead of taken from `config`: the
    /// engine first serves `samples` through the cold pipeline, measures
    /// the largest rendered rewrite, and installs the cache with that
    /// length (clamped to `[64, 1 MiB]`) as the cap. A cap sized to the
    /// workload means no live query is silently bypassed for being
    /// oversized, while a pathological one-off can't make every shard's
    /// value pool pay for it.
    ///
    /// Samples that fail to parse are skipped; if none parses, the cap
    /// falls back to `config.value_cap` unchanged.
    pub fn with_tuned_cache(
        store: AlignmentStore,
        interner: Interner,
        mut config: CacheConfig,
        samples: &[String],
    ) -> ServeEngine {
        let mut engine = ServeEngine::with_cache(store, interner, None);
        let mut scratch = engine.scratch();
        let mut max_len = 0usize;
        for sample in samples {
            if let Ok(out) = engine.serve(sample, &mut scratch) {
                max_len = max_len.max(out.len());
            }
        }
        if max_len > 0 {
            config.value_cap = max_len.clamp(64, 1 << 20);
        }
        engine.cache = Some(AdaptiveCache::new(config));
        engine
    }

    /// Inserts the shared cache refused because the rendered rewrite
    /// exceeded its value cap — requests that re-render on every arrival no
    /// matter how hot they are. Completes the hit/miss picture: `misses -
    /// bypass-driven re-serves` is the true cold-start count. 0 when the
    /// engine is cache-less.
    pub fn cache_bypasses(&self) -> u64 {
        self.cache
            .as_ref()
            .map_or(0, |ac| ac.read().oversize_bypasses())
    }

    /// Per-shard cache observability snapshot (occupancy, hits, misses,
    /// evictions, oversize bypasses); `None` when the engine is
    /// cache-less. Counter scan, not hot path — see
    /// [`RewriteCache::stats`] for the probe-level semantics.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|ac| ac.read().stats())
    }

    /// The installed cache's **current** value-size cap in bytes (`None`
    /// cache-less). Under [`ServeEngine::with_tuned_cache`] it starts at
    /// the measured workload maximum, not the config default — and either
    /// construction is only the starting point: the cap adapts at runtime
    /// to the live oversize-bypass rate (see [`ServeEngine::cache_resizes`]).
    pub fn cache_value_cap(&self) -> Option<usize> {
        self.cache.as_ref().map(|ac| ac.read().value_cap())
    }

    /// How often the adaptive cap controller resized the cache at runtime:
    /// `(grows, shrinks)`. `(0, 0)` for a cache-less engine or a workload
    /// whose rewrites fit the constructed cap (the controller's hysteresis
    /// band holds the cap still on such streams).
    pub fn cache_resizes(&self) -> (u64, u64) {
        self.cache.as_ref().map_or((0, 0), |ac| {
            (
                ac.grows.load(Ordering::Relaxed),
                ac.shrinks.load(Ordering::Relaxed),
            )
        })
    }

    /// The dense-indexed rewriter — ground-truth access for equivalence
    /// tests and offline (non-serve-path) rewriting.
    pub fn rewriter(&self) -> &IndexedRewriter<Arc<AlignmentStore>> {
        &self.rewriter
    }

    /// The build-phase interner snapshot workers clone from.
    pub fn base_interner(&self) -> &Interner {
        &self.base_interner
    }

    /// A fresh worker scratch. Cloning the interner is the one deliberate
    /// startup cost; after it, the worker shares nothing mutable.
    pub fn scratch(&self) -> ServeScratch {
        ServeScratch {
            interner: self.base_interner.clone(),
            parse: ParseScratch::new(),
            rewrite: RewriteScratch::new(),
            fresh_base: String::new(),
            out: String::new(),
            hit_buf: Vec::with_capacity(self.cache.as_ref().map_or(0, |ac| ac.read().value_cap())),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Serve one request. With the cache enabled, a repeated (or
    /// equivalently re-spelled) query is answered by fingerprint + probe +
    /// copy; otherwise the full parse → rewrite → render pipeline runs and
    /// the result backfills the cache. Returns the rewritten query text,
    /// borrowed from the scratch's output buffer. Zero heap allocations
    /// once the scratch (and its interner) are warm for the request's
    /// vocabulary — hit or miss.
    ///
    /// Two-level keying: the **raw-byte** fingerprint (word-speed hash, a
    /// few ns) catches byte-identical repeats — the dominant case, clients
    /// re-send the same string — and only on a raw miss does the ~100ns
    /// **canonical** fingerprint run to catch whitespace / keyword-case /
    /// PREFIX-alias re-spellings. A canonical hit promotes the raw
    /// spelling to its own entry so the next identical request takes the
    /// fast level.
    pub fn serve<'s>(
        &self,
        request: &str,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s str, ParseError> {
        let Some(ac) = &self.cache else {
            self.serve_cold(request, scratch)?;
            return Ok(&scratch.out);
        };
        {
            let cache = ac.read();
            self.serve_via(&cache, request, scratch)?;
        }
        // Controller bookkeeping outside the read guard — a window
        // boundary that decides to resize needs the write lock.
        ac.note_serve(scratch.out.len());
        Ok(&scratch.out)
    }

    /// The cached serve path against one pinned cache instance.
    fn serve_via(
        &self,
        cache: &RewriteCache,
        request: &str,
        scratch: &mut ServeScratch,
    ) -> Result<(), ParseError> {
        let raw_fp = fingerprint_raw(request);
        if self.finish_hit(
            cache.lookup(raw_fp, self.revision, &mut scratch.hit_buf),
            scratch,
        ) {
            return Ok(());
        }
        let canon_fp = fingerprint_query(request);
        if let Some(fp) = canon_fp {
            if self.finish_hit(
                cache.lookup(fp, self.revision, &mut scratch.hit_buf),
                scratch,
            ) {
                // Promote this exact spelling: next time it hits on the
                // raw level without paying for canonicalization.
                cache.insert(raw_fp, self.revision, scratch.out.as_bytes());
                return Ok(());
            }
        }
        self.serve_cold(request, scratch)?;
        // Counted only after a successful cold serve: a rejected request
        // was never served, so it is neither a hit nor a miss.
        scratch.cache_misses += 1;
        // Fill under the canonical key (shared by every re-spelling) and
        // the raw key (this spelling's fast level) — one entry when the
        // request is already in canonical spelling and the keys coincide.
        // An uncanonicalizable text can't be parsed either, so reaching
        // here means `canon_fp` is almost always `Some`; if it isn't,
        // don't cache at all.
        if let Some(fp) = canon_fp {
            cache.insert(fp, self.revision, scratch.out.as_bytes());
            if fp != raw_fp {
                cache.insert(raw_fp, self.revision, scratch.out.as_bytes());
            }
        }
        Ok(())
    }

    /// On `hit`, validate the copied bytes and move them into the output
    /// buffer; returns whether the request is fully served. The copied
    /// bytes were rendered into a `String` by a previous cold serve and
    /// survived the seqlock validation, so UTF-8 checking is a formality —
    /// but a cheap one, and it keeps this module free of `unsafe`. Failure
    /// falls through to the cold path.
    fn finish_hit(&self, hit: bool, scratch: &mut ServeScratch) -> bool {
        if !hit {
            return false;
        }
        let ServeScratch {
            out,
            hit_buf,
            cache_hits,
            ..
        } = scratch;
        match std::str::from_utf8(hit_buf) {
            Ok(text) => {
                *cache_hits += 1;
                out.clear();
                out.push_str(text);
                true
            }
            Err(_) => false,
        }
    }

    /// The uncached pipeline: parse → rewrite → render into `scratch.out`.
    fn serve_cold(&self, request: &str, scratch: &mut ServeScratch) -> Result<(), ParseError> {
        parse_query_into(request, &mut scratch.interner, &mut scratch.parse)?;
        self.rewriter
            .rewrite_ref_into(scratch.parse.query_ref(), &mut scratch.rewrite);
        render_query_into(
            QueryRef {
                select: scratch.rewrite.select(),
                pattern: scratch.rewrite.pattern(),
            },
            &scratch.interner,
            &mut scratch.fresh_base,
            &mut scratch.out,
        );
        Ok(())
    }

    /// Steady-state timed fan-out: split `requests` into `n_threads`
    /// contiguous chunks, give each worker its own [`ServeScratch`], warm it
    /// with one untimed pass, then loop `reps` times over the chunk.
    /// Returns wall-clock time for the whole fan-out (spawn, interner
    /// clones, and join included — amortize with `reps`).
    pub fn timed_serve_run(&self, requests: &[String], n_threads: usize, reps: u32) -> Duration {
        let chunk = requests.len().div_ceil(n_threads.max(1)).max(1);
        let start = Instant::now();
        thread::scope(|scope| {
            let handles: Vec<_> = requests
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        let mut scratch = self.scratch();
                        for q in slice {
                            self.serve(q, &mut scratch).expect("workload parses");
                        }
                        for _ in 0..reps {
                            for q in slice {
                                let out = self.serve(q, &mut scratch).expect("workload parses");
                                std::hint::black_box(out);
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("serve worker panicked");
            }
        });
        start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Term, TriplePattern};

    /// One rule mapping a short source predicate onto a long target IRI,
    /// so rewrites of source-vocabulary queries come out much bigger than
    /// they went in — easy to push past a small value cap.
    fn adaptive_engine(value_cap: usize) -> ServeEngine {
        let mut interner = Interner::new();
        let mut store = AlignmentStore::new();
        let var_s = Term::var(interner.intern("s"));
        let var_o = Term::var(interner.intern("o"));
        let src = Term::iri(interner.intern("http://src.example.org/onto/p"));
        let tgt = Term::iri(
            interner.intern("http://tgt.example.org/onto/a-deliberately-long-predicate-q"),
        );
        store
            .add_predicate(
                TriplePattern::new(var_s, src, var_o),
                vec![TriplePattern::new(var_s, tgt, var_o)],
            )
            .expect("valid rule");
        ServeEngine::with_cache(
            store,
            interner,
            Some(CacheConfig {
                shards: 2,
                slots_per_shard: 256,
                value_cap,
            }),
        )
    }

    #[test]
    fn value_cap_adapts_to_bypass_rate_with_hysteresis() {
        let engine = adaptive_engine(64);
        let mut scratch = engine.scratch();
        let base_cap = engine.cache_value_cap().expect("cache installed");
        assert_eq!(base_cap, 64);

        // A query whose rewrite renders far past the 64-byte cap (each of
        // the six patterns expands to the long target IRI) and one that
        // stays comfortably under it.
        let big = "SELECT * WHERE { \
             ?a <http://src.example.org/onto/p> ?b . \
             ?c <http://src.example.org/onto/p> ?d . \
             ?e <http://src.example.org/onto/p> ?f . \
             ?g <http://src.example.org/onto/p> ?h . \
             ?i <http://src.example.org/onto/p> ?j . \
             ?k <http://src.example.org/onto/p> ?l }";
        let small = "SELECT * WHERE { ?s ?p ?o }";
        let big_len = engine.serve(big, &mut scratch).expect("parses").len();
        assert!(
            (257..=512).contains(&big_len),
            "test geometry: big rewrite must need exactly three doublings, got {big_len}"
        );

        // Phase 1 — bypass-heavy stream: every serve re-renders and the
        // insert is refused, so the controller doubles the cap at window
        // boundaries until the value fits (64 → 128 → 256 → 512).
        for _ in 0..5 * ADAPT_WINDOW {
            engine.serve(big, &mut scratch).expect("parses");
        }
        let grown_cap = engine.cache_value_cap().unwrap();
        assert!(
            grown_cap >= big_len,
            "cap never grew past the hot value: cap {grown_cap}, value {big_len}"
        );
        let (grows, shrinks) = engine.cache_resizes();
        assert!(grows >= 3, "expected three doublings, saw {grows}");
        assert_eq!(shrinks, 0, "nothing to shrink during the bypass phase");

        // The now-fitting value is served from the cache.
        scratch.reset_cache_counters();
        engine.serve(big, &mut scratch).expect("parses");
        engine.serve(big, &mut scratch).expect("parses");
        assert!(
            scratch.cache_hits() >= 1,
            "grown cache never hit the formerly-bypassed value"
        );

        // Phase 2 — hysteresis: pure hits mean a zero bypass rate, but the
        // window's largest served rewrite is the hot value itself, so the
        // cap must hold instead of shrinking back and re-evicting it (the
        // oscillation the dead zone + window-max guard exist to prevent).
        for _ in 0..2 * ADAPT_WINDOW {
            engine.serve(big, &mut scratch).expect("parses");
        }
        assert_eq!(
            engine.cache_value_cap().unwrap(),
            grown_cap,
            "cap oscillated under a hit-heavy stream of large values"
        );

        // Phase 3 — the large values stop arriving: bypass-free windows of
        // small rewrites walk the cap back down, floored at the
        // construction cap.
        for _ in 0..5 * ADAPT_WINDOW {
            engine.serve(small, &mut scratch).expect("parses");
        }
        assert_eq!(
            engine.cache_value_cap().unwrap(),
            base_cap,
            "cap did not return to the construction floor"
        );
        let (_, shrinks) = engine.cache_resizes();
        assert!(shrinks >= 3, "expected three halvings, saw {shrinks}");
    }
}
