//! Zero-copy tokenizer and parser for the SELECT/WHERE group-graph-pattern
//! fragment of SPARQL.
//!
//! The tokenizer yields `&str` slices borrowing from the input; nothing is
//! allocated until a term's final text is known (after PREFIX expansion for
//! QNames), at which point it is interned once. Supported syntax:
//!
//! ```sparql
//! PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//! SELECT ?name ?mbox
//! WHERE {
//!   ?x foaf:name ?name ; foaf:mbox ?mbox .
//!   ?x a foaf:Person .
//!   OPTIONAL { ?x foaf:age ?age }
//!   { ?x foaf:nick ?n } UNION { ?x foaf:givenName ?n }
//!   FILTER(?age >= 18 && ?name != "Nobody")
//! }
//! ```
//!
//! Triple blocks support `;` (predicate-object lists) and `,` (object
//! lists); `a` expands to `rdf:type`. Group graph patterns support nesting,
//! `OPTIONAL`, n-ary `UNION`, and `FILTER` with comparison (`=`, `!=`, `<`,
//! `<=`, `>`, `>=`) and logical (`&&`, `||`, `!`) expressions over
//! variables, IRIs, and literals. Bare numeric (`42`, `3.14`, `-7`) and
//! boolean (`true` / `false`) tokens are sugar for xsd-typed literals.
//! `SERVICE <endpoint> { ... }` (endpoint an IRI or a variable) parses to a
//! [`PatternNode::Service`] group for the federation layer. GRAPH/MINUS
//! remain out of scope and produce a parse error.
//!
//! Parse errors carry the byte offset of the **start** of the offending
//! token (not wherever the tokenizer cursor happens to sit after
//! lookahead), so editors can point at the right spot.

use std::fmt;

use crate::interner::Interner;
use crate::pattern::{
    Bgp, ChainBuilder, CmpOp, ExprNode, GroupPattern, PatternNode, Query, QueryRef, SelectList,
    TriplePattern,
};
use crate::term::Term;

pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
pub const XSD_DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    /// Byte offset into the input where the error was detected — the start
    /// of the offending token for parser-level errors, the exact byte for
    /// tokenizer-level ones.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokens borrow from the query string — the tokenizer allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token<'a> {
    /// `<...>` with brackets stripped.
    IriRef(&'a str),
    /// `prefix:local` (either part may be empty).
    QName(&'a str),
    /// `?x` / `$x` with the sigil stripped.
    Var(&'a str),
    /// Full literal surface form including quotes and any @lang/^^ suffix.
    Literal(&'a str),
    /// Bare numeric literal (`42`, `-3.14`); `decimal` is true when it
    /// contains a fraction dot.
    Numeric {
        text: &'a str,
        decimal: bool,
    },
    /// `_:label` with the `_:` stripped.
    Blank(&'a str),
    /// A bare word: SELECT, WHERE, PREFIX, `a`, `*`, `true`, …
    Word(&'a str),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Comma,
    /// `!` (standalone, not `!=`).
    Bang,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `=`, `!=`, `<`, `<=`, `>`, `>=`.
    Cmp(CmpOp),
}

struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// Byte offset where the most recently returned token started (== `pos`
    /// when the last call returned `None`). This — not the post-token
    /// cursor — is what parser-level errors report.
    last_start: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Tokenizer<'a> {
        Tokenizer {
            input,
            pos: 0,
            last_start: 0,
        }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn skip_trivia(&mut self) {
        let b = self.bytes();
        while self.pos < b.len() {
            match b[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'#' => {
                    while self.pos < b.len() && b[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    /// Scan a literal starting at the opening quote; returns the full
    /// surface form (quotes, escapes, and any `@lang` / `^^iri-or-qname`
    /// suffix included) as one borrowed slice.
    fn scan_literal(&mut self) -> Result<Token<'a>, ParseError> {
        let b = self.bytes();
        let start = self.pos;
        debug_assert_eq!(b[self.pos], b'"');
        self.pos += 1;
        loop {
            match b.get(self.pos) {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\\') => {
                    if self.pos + 1 >= b.len() {
                        return Err(self.err("dangling escape in literal"));
                    }
                    self.pos += 2;
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        // Optional @lang
        if b.get(self.pos) == Some(&b'@') {
            self.pos += 1;
            let tag_start = self.pos;
            while self
                .bytes()
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'-')
            {
                self.pos += 1;
            }
            if self.pos == tag_start {
                return Err(self.err("empty language tag"));
            }
        } else if b.get(self.pos) == Some(&b'^') && b.get(self.pos + 1) == Some(&b'^') {
            self.pos += 2;
            if b.get(self.pos) == Some(&b'<') {
                while self.pos < b.len() && b[self.pos] != b'>' {
                    self.pos += 1;
                }
                if b.get(self.pos) != Some(&b'>') {
                    return Err(self.err("unterminated datatype IRI"));
                }
                self.pos += 1;
            } else {
                let dt_start = self.pos;
                while self
                    .bytes()
                    .get(self.pos)
                    .is_some_and(|c| is_name_byte(*c) || *c == b':')
                {
                    self.pos += 1;
                }
                if self.pos == dt_start {
                    return Err(self.err("empty datatype after '^^'"));
                }
            }
        }
        Ok(Token::Literal(&self.input[start..self.pos]))
    }

    /// Scan a bare numeric literal (`42`, `3.14`, optionally signed). The
    /// fraction dot is consumed only when a digit follows, so `3 .` and the
    /// triple-terminating `3.` still tokenize as integer-then-Dot.
    fn scan_numeric(&mut self) -> Result<Token<'a>, ParseError> {
        let b = self.bytes();
        let start = self.pos;
        if b[self.pos] == b'+' || b[self.pos] == b'-' {
            self.pos += 1;
        }
        while b.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let mut decimal = false;
        if b.get(self.pos) == Some(&b'.') && b.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
            decimal = true;
            self.pos += 1;
            while b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        // `3abc` / `1e5` would otherwise split into number + word and
        // silently corrupt the triple block — reject at the digit boundary.
        if b.get(self.pos).is_some_and(|c| is_name_byte(*c)) {
            return Err(self.err("malformed numeric literal"));
        }
        Ok(Token::Numeric {
            text: &self.input[start..self.pos],
            decimal,
        })
    }

    /// At a `<`: an IRI reference if a legal IRIREF body terminated by `>`
    /// follows, otherwise the `<` / `<=` comparison operator. (SPARQL
    /// IRIREF bodies exclude whitespace, quotes, braces, and `<`, so
    /// `FILTER(?x < ?y)` is unambiguous, while `<=x>` stays the IRI "=x" —
    /// the IRI interpretation wins whenever one exists.)
    fn scan_angle(&mut self) -> Token<'a> {
        let b = self.bytes();
        debug_assert_eq!(b[self.pos], b'<');
        let mut end = self.pos + 1;
        while end < b.len() && is_iri_byte(b[end]) {
            end += 1;
        }
        if b.get(end) == Some(&b'>') {
            let start = self.pos + 1;
            self.pos = end + 1;
            Token::IriRef(&self.input[start..end])
        } else if b.get(self.pos + 1) == Some(&b'=') {
            self.pos += 2;
            Token::Cmp(CmpOp::Le)
        } else {
            self.pos += 1;
            Token::Cmp(CmpOp::Lt)
        }
    }

    fn next(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        self.skip_trivia();
        self.last_start = self.pos;
        let b = self.bytes();
        let Some(&c) = b.get(self.pos) else {
            return Ok(None);
        };
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Token::LBrace
            }
            b'}' => {
                self.pos += 1;
                Token::RBrace
            }
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b';' => {
                self.pos += 1;
                Token::Semicolon
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'*' => {
                self.pos += 1;
                Token::Word("*")
            }
            b'=' => {
                self.pos += 1;
                Token::Cmp(CmpOp::Eq)
            }
            b'!' => {
                if b.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Cmp(CmpOp::Ne)
                } else {
                    self.pos += 1;
                    Token::Bang
                }
            }
            b'>' => {
                if b.get(self.pos + 1) == Some(&b'=') {
                    self.pos += 2;
                    Token::Cmp(CmpOp::Ge)
                } else {
                    self.pos += 1;
                    Token::Cmp(CmpOp::Gt)
                }
            }
            b'&' => {
                if b.get(self.pos + 1) == Some(&b'&') {
                    self.pos += 2;
                    Token::AndAnd
                } else {
                    return Err(self.err("expected '&&'"));
                }
            }
            b'|' => {
                if b.get(self.pos + 1) == Some(&b'|') {
                    self.pos += 2;
                    Token::OrOr
                } else {
                    return Err(self.err("expected '||'"));
                }
            }
            b'<' => self.scan_angle(),
            b'?' | b'$' => {
                let start = self.pos + 1;
                let mut end = start;
                while end < b.len() && is_name_byte(b[end]) {
                    end += 1;
                }
                if end == start {
                    return Err(self.err("empty variable name"));
                }
                self.pos = end;
                Token::Var(&self.input[start..end])
            }
            b'"' => self.scan_literal()?,
            b'_' if b.get(self.pos + 1) == Some(&b':') => {
                let start = self.pos + 2;
                let mut end = start;
                while end < b.len() && is_name_byte(b[end]) {
                    end += 1;
                }
                if end == start {
                    return Err(self.err("empty blank node label"));
                }
                self.pos = end;
                Token::Blank(&self.input[start..end])
            }
            c if c.is_ascii_digit() => self.scan_numeric()?,
            b'+' | b'-' if b.get(self.pos + 1).is_some_and(u8::is_ascii_digit) => {
                self.scan_numeric()?
            }
            c if is_name_byte(c) || c == b':' => {
                let start = self.pos;
                let mut end = start;
                let mut has_colon = false;
                while end < b.len() && (is_name_byte(b[end]) || (b[end] == b':' && !has_colon)) {
                    if b[end] == b':' {
                        has_colon = true;
                    }
                    end += 1;
                }
                self.pos = end;
                let text = &self.input[start..end];
                if has_colon {
                    Token::QName(text)
                } else {
                    Token::Word(text)
                }
            }
            other => return Err(self.err(format!("unexpected byte 0x{other:02x}"))),
        };
        Ok(Some(tok))
    }
}

/// Byte classifier shared with the cache fingerprint scanner
/// ([`crate::cache::fingerprint_query`]), which must tokenize name runs
/// exactly like this tokenizer to map equivalent spellings of one query to
/// one fingerprint. `const` so the scanner can bake both classifiers into
/// a lookup table at compile time.
#[inline]
pub(crate) const fn is_name_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || !c.is_ascii()
}

/// Bytes legal inside a SPARQL IRIREF body (`<...>`): everything except
/// control/space and `<ESC>`-class punctuation per the grammar. Shared with
/// the cache fingerprint scanner for the same reason as [`is_name_byte`].
#[inline]
pub(crate) const fn is_iri_byte(c: u8) -> bool {
    !(c <= 0x20
        || matches!(
            c,
            b'<' | b'>' | b'"' | b'{' | b'}' | b'|' | b'^' | b'`' | b'\\'
        ))
}

/// One `PREFIX name: <iri>` declaration as byte spans into the input. The
/// table lives in a caller-owned [`ParseScratch`] so re-parsing reuses its
/// capacity; spans (not borrowed `&str`s) keep the scratch free of the
/// input's lifetime.
#[derive(Copy, Clone, Debug)]
struct PrefixSpan {
    name_start: u32,
    name_end: u32,
    iri_start: u32,
    iri_end: u32,
}

/// Caller-owned scratch for allocation-free parsing.
///
/// Holds every buffer the parser needs per query — the output group-pattern
/// tree, the projection, the PREFIX table, and the QName-expansion string —
/// so a warm [`parse_query_into`] call performs **zero heap allocations**
/// provided every string in the query has been interned before (the
/// steady-state of a serve loop, where the first pass over a workload warms
/// both the scratch and the interner).
#[derive(Default, Debug)]
pub struct ParseScratch {
    pattern: GroupPattern,
    select: Vec<Term>,
    select_star: bool,
    prefixes: Vec<PrefixSpan>,
    expand_buf: String,
}

impl ParseScratch {
    pub fn new() -> ParseScratch {
        ParseScratch::default()
    }

    /// The group pattern of the last [`parse_query_into`] call. Only
    /// meaningful when that call returned `Ok`: a failed parse leaves the
    /// buffers cleared or partially written, never the previous query.
    #[inline]
    pub fn pattern(&self) -> &GroupPattern {
        &self.pattern
    }

    /// Projection of the last parse: `None` for `SELECT *`, otherwise the
    /// projected variables. Like [`ParseScratch::pattern`], only meaningful
    /// after an `Ok` parse.
    #[inline]
    pub fn select(&self) -> Option<&[Term]> {
        if self.select_star {
            None
        } else {
            Some(&self.select)
        }
    }

    /// Borrowed query view over the last parse — hand this to
    /// [`crate::rewriter::Rewriter::rewrite_ref_into`] without assembling an
    /// owned [`Query`].
    #[inline]
    pub fn query_ref(&self) -> QueryRef<'_> {
        QueryRef {
            select: self.select(),
            pattern: &self.pattern,
        }
    }

    /// Move the last parse out as an owned [`Query`], leaving empty (but
    /// deallocated) buffers behind. Build-phase convenience; the serve loop
    /// uses [`ParseScratch::query_ref`] instead.
    fn into_query(self) -> Query {
        Query {
            select: if self.select_star {
                SelectList::Star
            } else {
                SelectList::Vars(self.select)
            },
            pattern: self.pattern,
        }
    }
}

/// Parser state: a tokenizer with one token of lookahead, plus the
/// scratch-owned PREFIX table and QName-expansion buffer, and the interner
/// terms are minted into.
struct Parser<'a, 'i, 'p> {
    tok: Tokenizer<'a>,
    /// One token of lookahead plus the byte offset it started at.
    peeked: Option<(Token<'a>, usize)>,
    /// Start offset of the most recently observed token (consumed *or*
    /// peeked) — the position parser-level errors report.
    err_off: usize,
    prefixes: &'p mut Vec<PrefixSpan>,
    interner: &'i mut Interner,
    // Scratch buffer reused for every QName expansion to avoid a fresh
    // allocation per term.
    expand_buf: &'p mut String,
}

impl<'a, 'i, 'p> Parser<'a, 'i, 'p> {
    fn new(
        input: &'a str,
        interner: &'i mut Interner,
        prefixes: &'p mut Vec<PrefixSpan>,
        expand_buf: &'p mut String,
    ) -> Parser<'a, 'i, 'p> {
        prefixes.clear();
        Parser {
            tok: Tokenizer::new(input),
            peeked: None,
            err_off: 0,
            prefixes,
            interner,
            expand_buf,
        }
    }

    /// Byte span of `s` within the input. `s` must be a subslice of the
    /// tokenizer's input (every token text is).
    #[inline]
    fn span_of(&self, s: &str) -> (u32, u32) {
        let base = self.tok.input.as_ptr() as usize;
        let start = s.as_ptr() as usize - base;
        (start as u32, (start + s.len()) as u32)
    }

    /// Expansion IRI for `prefix`, if declared. Later declarations shadow
    /// earlier ones (scan in reverse), matching SPARQL prologue semantics.
    fn lookup_prefix(&self, prefix: &str) -> Option<&'a str> {
        let input = self.tok.input;
        self.prefixes.iter().rev().find_map(|p| {
            let name = &input[p.name_start as usize..p.name_end as usize];
            (name == prefix).then(|| &input[p.iri_start as usize..p.iri_end as usize])
        })
    }

    fn next_token(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        if let Some((t, off)) = self.peeked.take() {
            self.err_off = off;
            return Ok(Some(t));
        }
        let t = self.tok.next()?;
        self.err_off = self.tok.last_start;
        Ok(t)
    }

    fn peek(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        if self.peeked.is_none() {
            self.peeked = self.tok.next()?.map(|t| (t, self.tok.last_start));
        }
        // An error raised while looking at the peeked token should point at
        // it, not at wherever the cursor stopped after scanning it.
        self.err_off = self
            .peeked
            .map(|(_, off)| off)
            .unwrap_or(self.tok.last_start);
        Ok(self.peeked.map(|(t, _)| t))
    }

    fn expect(&mut self, what: &str) -> Result<Token<'a>, ParseError> {
        self.next_token()?
            .ok_or_else(|| self.err(format!("unexpected end of input, expected {what}")))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.err_off,
        }
    }

    /// Expand a QName against the PREFIX table and intern the result.
    ///
    /// The tokenizer only emits `Token::QName` for texts containing a colon,
    /// but a serve worker must never be one refactor away from a panic on
    /// user-supplied query text, so the invariant degrades to a `ParseError`
    /// instead of an `expect` (audited: every panicking unwrap reachable
    /// from the query-text path is converted like this).
    fn intern_qname(&mut self, qname: &str) -> Result<Term, ParseError> {
        let Some(colon) = qname.find(':') else {
            return Err(self.err("malformed QName: missing ':'"));
        };
        let (prefix, local) = (&qname[..colon], &qname[colon + 1..]);
        let Some(base) = self.lookup_prefix(prefix) else {
            return Err(self.err(format!("undeclared prefix '{prefix}:'")));
        };
        self.expand_buf.clear();
        self.expand_buf.push_str(base);
        self.expand_buf.push_str(local);
        Ok(Term::iri(self.interner.intern(self.expand_buf)))
    }

    /// Intern a literal, canonicalizing a `^^prefix:local` datatype to
    /// `^^<expanded-iri>` (so rendered output needs no PREFIX declaration
    /// and the QName and full-IRI spellings of one literal share a symbol)
    /// and lowercasing any language tag (RDF lang tags are case-insensitive,
    /// so `"x"@EN` and `"x"@en` must intern to one symbol).
    fn intern_literal(&mut self, lit: &str) -> Result<Term, ParseError> {
        // Tokenizer invariant (closing quote present) downgraded to an error
        // rather than a panic — same audit rationale as `intern_qname`.
        let Some(close) = lit.rfind('"') else {
            return Err(self.err("malformed literal: missing closing '\"'"));
        };
        let suffix = &lit[close + 1..];
        if let Some(tag) = suffix.strip_prefix('@') {
            if tag.bytes().any(|b| b.is_ascii_uppercase()) {
                self.expand_buf.clear();
                self.expand_buf.push_str(&lit[..close + 1]);
                self.expand_buf.push('@');
                for b in tag.bytes() {
                    self.expand_buf.push(b.to_ascii_lowercase() as char);
                }
                return Ok(Term::literal(self.interner.intern(self.expand_buf)));
            }
        } else if let Some(dtype) = suffix.strip_prefix("^^") {
            if !dtype.starts_with('<') {
                let colon = dtype
                    .find(':')
                    .ok_or_else(|| self.err("datatype QName missing ':'"))?;
                let (prefix, local) = (&dtype[..colon], &dtype[colon + 1..]);
                let Some(base) = self.lookup_prefix(prefix) else {
                    return Err(self.err(format!("undeclared prefix '{prefix}:'")));
                };
                self.expand_buf.clear();
                self.expand_buf.push_str(&lit[..close + 1]);
                self.expand_buf.push_str("^^<");
                self.expand_buf.push_str(base);
                self.expand_buf.push_str(local);
                self.expand_buf.push('>');
                return Ok(Term::literal(self.interner.intern(self.expand_buf)));
            }
        }
        Ok(Term::literal(self.interner.intern(lit)))
    }

    /// Intern a bare literal token (`42`, `3.14`, `true`) as its xsd-typed
    /// quoted form, so the sugar and the explicit `"42"^^<xsd:integer>`
    /// spelling share a symbol and render identically.
    fn intern_typed(&mut self, text: &str, datatype: &str) -> Term {
        self.expand_buf.clear();
        self.expand_buf.push('"');
        self.expand_buf.push_str(text);
        self.expand_buf.push_str("\"^^<");
        self.expand_buf.push_str(datatype);
        self.expand_buf.push('>');
        Term::literal(self.interner.intern(self.expand_buf))
    }

    fn parse_term(&mut self, tok: Token<'a>, position: &str) -> Result<Term, ParseError> {
        match tok {
            Token::IriRef(iri) => Ok(Term::iri(self.interner.intern(iri))),
            Token::QName(q) => self.intern_qname(q),
            Token::Var(v) => Ok(Term::var(self.interner.intern(v))),
            Token::Literal(l) => self.intern_literal(l),
            // Bare-literal sugar is legal only where a literal is: object
            // position and FILTER expressions, never as subject or verb.
            Token::Numeric { text, decimal } if matches!(position, "object" | "expression") => {
                Ok(self.intern_typed(text, if decimal { XSD_DECIMAL } else { XSD_INTEGER }))
            }
            Token::Blank(b) => Ok(Term::blank(self.interner.intern(b))),
            Token::Word("a") if position == "predicate" => {
                Ok(Term::iri(self.interner.intern(RDF_TYPE)))
            }
            Token::Word(w @ ("true" | "false")) if matches!(position, "object" | "expression") => {
                Ok(self.intern_typed(w, XSD_BOOLEAN))
            }
            other => Err(self.err(format!("expected {position} term, found {other:?}"))),
        }
    }

    fn parse_prologue(&mut self) -> Result<(), ParseError> {
        while let Some(Token::Word(w)) = self.peek()? {
            if !w.eq_ignore_ascii_case("PREFIX") {
                break;
            }
            self.next_token()?;
            let Token::QName(q) = self.expect("prefix declaration")? else {
                return Err(self.err("expected 'name:' after PREFIX"));
            };
            if !q.ends_with(':') {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let Token::IriRef(iri) = self.expect("IRI after prefix name")? else {
                return Err(self.err("expected <IRI> after prefix name"));
            };
            let (name_start, name_end) = self.span_of(&q[..q.len() - 1]);
            let (iri_start, iri_end) = self.span_of(iri);
            self.prefixes.push(PrefixSpan {
                name_start,
                name_end,
                iri_start,
                iri_end,
            });
        }
        Ok(())
    }

    /// Parse the projection into `vars` (cleared first); returns `true` for
    /// `SELECT *`.
    fn parse_select(&mut self, vars: &mut Vec<Term>) -> Result<bool, ParseError> {
        vars.clear();
        match self.expect("SELECT")? {
            Token::Word(w) if w.eq_ignore_ascii_case("SELECT") => {}
            other => return Err(self.err(format!("expected SELECT, found {other:?}"))),
        }
        match self.peek()? {
            Some(Token::Word("*")) => {
                self.next_token()?;
                Ok(true)
            }
            _ => {
                while let Some(Token::Var(v)) = self.peek()? {
                    self.next_token()?;
                    vars.push(Term::var(self.interner.intern(v)));
                }
                if vars.is_empty() {
                    return Err(self.err("SELECT needs '*' or at least one variable"));
                }
                Ok(false)
            }
        }
    }

    /// Parse `{ GroupGraphPattern }` into `out`, returning the index of the
    /// created [`PatternNode::Group`]. The leading `{` is consumed here.
    fn parse_group(&mut self, out: &mut GroupPattern) -> Result<u32, ParseError> {
        match self.expect("'{'")? {
            Token::LBrace => {}
            other => return Err(self.err(format!("expected '{{', found {other:?}"))),
        }
        let first = self.parse_group_body(out)?;
        Ok(out.push_node(PatternNode::Group { first }))
    }

    /// Parse group contents up to and including the closing `}`, returning
    /// the head of the child chain. The opening `{` must already be
    /// consumed. Triple blocks accumulate into maximal [`PatternNode::
    /// Triples`] runs; OPTIONAL / UNION / FILTER / nested groups close the
    /// current run and become siblings.
    fn parse_group_body(&mut self, out: &mut GroupPattern) -> Result<u32, ParseError> {
        let mut chain = ChainBuilder::new();
        let mut run_start = out.triples.len();
        macro_rules! flush_run {
            () => {
                if out.triples.len() > run_start {
                    let node = out.push_node(PatternNode::Triples {
                        start: run_start as u32,
                        len: (out.triples.len() - run_start) as u32,
                    });
                    chain.push(out, node);
                }
            };
        }
        loop {
            match self.peek()? {
                Some(Token::RBrace) => {
                    self.next_token()?;
                    flush_run!();
                    break;
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    flush_run!();
                    self.next_token()?;
                    match self.expect("'{' after OPTIONAL")? {
                        Token::LBrace => {}
                        other => {
                            return Err(
                                self.err(format!("expected '{{' after OPTIONAL, found {other:?}"))
                            )
                        }
                    }
                    let inner = self.parse_group_body(out)?;
                    let node = out.push_node(PatternNode::Optional { first: inner });
                    chain.push(out, node);
                    self.skip_optional_dot()?;
                    run_start = out.triples.len();
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    flush_run!();
                    self.next_token()?;
                    match self.expect("'(' after FILTER")? {
                        Token::LParen => {}
                        other => {
                            return Err(
                                self.err(format!("expected '(' after FILTER, found {other:?}"))
                            )
                        }
                    }
                    let expr = self.parse_expr(out)?;
                    match self.expect("')' closing FILTER")? {
                        Token::RParen => {}
                        other => {
                            return Err(
                                self.err(format!("expected ')' closing FILTER, found {other:?}"))
                            )
                        }
                    }
                    let node = out.push_node(PatternNode::Filter { expr });
                    chain.push(out, node);
                    self.skip_optional_dot()?;
                    run_start = out.triples.len();
                }
                Some(Token::LBrace) => {
                    flush_run!();
                    // GroupOrUnion: `{...}` optionally followed by one or
                    // more `UNION {...}`.
                    self.next_token()?;
                    let inner = self.parse_group_body(out)?;
                    let group = out.push_node(PatternNode::Group { first: inner });
                    let mut branches = ChainBuilder::new();
                    branches.push(out, group);
                    let mut n_branches = 1u32;
                    while let Some(Token::Word(w)) = self.peek()? {
                        if !w.eq_ignore_ascii_case("UNION") {
                            break;
                        }
                        self.next_token()?;
                        match self.expect("'{' after UNION")? {
                            Token::LBrace => {}
                            other => {
                                return Err(
                                    self.err(format!("expected '{{' after UNION, found {other:?}"))
                                )
                            }
                        }
                        let inner = self.parse_group_body(out)?;
                        let b = out.push_node(PatternNode::Group { first: inner });
                        branches.push(out, b);
                        n_branches += 1;
                    }
                    let node = if n_branches == 1 {
                        group
                    } else {
                        out.push_node(PatternNode::Union {
                            first: branches.first(),
                        })
                    };
                    chain.push(out, node);
                    self.skip_optional_dot()?;
                    run_start = out.triples.len();
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("SERVICE") => {
                    flush_run!();
                    self.next_token()?;
                    let tok = self.expect("endpoint after SERVICE")?;
                    let endpoint = match tok {
                        Token::IriRef(iri) => Term::iri(self.interner.intern(iri)),
                        Token::QName(q) => self.intern_qname(q)?,
                        Token::Var(v) => Term::var(self.interner.intern(v)),
                        other => {
                            return Err(self.err(format!(
                                "SERVICE endpoint must be an IRI or a variable, found {other:?}"
                            )))
                        }
                    };
                    match self.expect("'{' after SERVICE endpoint")? {
                        Token::LBrace => {}
                        other => {
                            return Err(self.err(format!(
                                "expected '{{' after SERVICE endpoint, found {other:?}"
                            )))
                        }
                    }
                    let inner = self.parse_group_body(out)?;
                    let node = out.push_node(PatternNode::Service {
                        endpoint,
                        first: inner,
                    });
                    chain.push(out, node);
                    self.skip_optional_dot()?;
                    run_start = out.triples.len();
                }
                Some(Token::Word(w))
                    if ["GRAPH", "MINUS"]
                        .iter()
                        .any(|kw| w.eq_ignore_ascii_case(kw)) =>
                {
                    return Err(self.err(format!(
                        "{w} is not supported by the rewriter (see ROADMAP: federation/SERVICE)"
                    )));
                }
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("UNION") => {
                    return Err(self.err("UNION must follow a '{...}' group"));
                }
                Some(_) => {
                    self.parse_triple_block(&mut out.triples)?;
                    // Optional '.' between blocks.
                    if self.peek()? == Some(Token::Dot) {
                        self.next_token()?;
                    }
                }
                None => return Err(self.err("unexpected end of input inside group pattern")),
            }
        }
        Ok(chain.first())
    }

    /// Consume one optional `.` (legal after any group-pattern element).
    fn skip_optional_dot(&mut self) -> Result<(), ParseError> {
        if self.peek()? == Some(Token::Dot) {
            self.next_token()?;
        }
        Ok(())
    }

    // ---- FILTER expressions -------------------------------------------
    //
    // Precedence climbing: `||` < `&&` < comparison < unary `!` / primary.
    // Expression nodes are appended to `out.exprs`; functions return the
    // node index.

    fn parse_expr(&mut self, out: &mut GroupPattern) -> Result<u32, ParseError> {
        let mut lhs = self.parse_expr_and(out)?;
        while self.peek()? == Some(Token::OrOr) {
            self.next_token()?;
            let rhs = self.parse_expr_and(out)?;
            lhs = out.push_expr(ExprNode::Or(lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_expr_and(&mut self, out: &mut GroupPattern) -> Result<u32, ParseError> {
        let mut lhs = self.parse_expr_rel(out)?;
        while self.peek()? == Some(Token::AndAnd) {
            self.next_token()?;
            let rhs = self.parse_expr_rel(out)?;
            lhs = out.push_expr(ExprNode::And(lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_expr_rel(&mut self, out: &mut GroupPattern) -> Result<u32, ParseError> {
        let lhs = self.parse_expr_primary(out)?;
        if let Some(Token::Cmp(op)) = self.peek()? {
            self.next_token()?;
            let rhs = self.parse_expr_primary(out)?;
            return Ok(out.push_expr(ExprNode::Cmp(op, lhs, rhs)));
        }
        Ok(lhs)
    }

    fn parse_expr_primary(&mut self, out: &mut GroupPattern) -> Result<u32, ParseError> {
        match self.expect("expression")? {
            Token::LParen => {
                let e = self.parse_expr(out)?;
                match self.expect("')'")? {
                    Token::RParen => Ok(e),
                    other => Err(self.err(format!("expected ')', found {other:?}"))),
                }
            }
            Token::Bang => {
                let c = self.parse_expr_primary(out)?;
                Ok(out.push_expr(ExprNode::Not(c)))
            }
            tok => {
                let t = self.parse_term(tok, "expression")?;
                Ok(out.push_expr(ExprNode::Term(t)))
            }
        }
    }

    fn parse_triple_block(&mut self, patterns: &mut Vec<TriplePattern>) -> Result<(), ParseError> {
        let tok = self.expect("subject term")?;
        let subject = self.parse_term(tok, "subject")?;
        loop {
            let tok = self.expect("predicate term")?;
            let predicate = self.parse_term(tok, "predicate")?;
            loop {
                let tok = self.expect("object term")?;
                let object = self.parse_term(tok, "object")?;
                patterns.push(TriplePattern::new(subject, predicate, object));
                if self.peek()? == Some(Token::Comma) {
                    self.next_token()?;
                } else {
                    break;
                }
            }
            if self.peek()? == Some(Token::Semicolon) {
                self.next_token()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    /// Full-query grammar, writing the projection into `select` (star flag
    /// returned) and the pattern into `pattern`.
    fn parse_query_body(
        &mut self,
        select: &mut Vec<Term>,
        pattern: &mut GroupPattern,
    ) -> Result<bool, ParseError> {
        self.parse_prologue()?;
        let star = self.parse_select(select)?;
        match self.expect("WHERE")? {
            Token::Word(w) if w.eq_ignore_ascii_case("WHERE") => {}
            // Bare `{ ... }` without the WHERE keyword is legal SPARQL.
            Token::LBrace => {
                self.peeked = Some((Token::LBrace, self.err_off));
            }
            other => return Err(self.err(format!("expected WHERE, found {other:?}"))),
        }
        pattern.root = self.parse_group(pattern)?;
        if let Some(tok) = self.next_token()? {
            return Err(self.err(format!("trailing input after query: {tok:?}")));
        }
        Ok(star)
    }
}

/// Parse a full SELECT query into caller-owned scratch buffers. The parsed
/// query is readable via [`ParseScratch::query_ref`] (or copied out with
/// owned types via [`parse_query`]). With a warm scratch and a warm
/// interner — every string already seen — a call performs **zero heap
/// allocations**; this is the parse stage of the zero-alloc serve pipeline.
pub fn parse_query_into(
    input: &str,
    interner: &mut Interner,
    scratch: &mut ParseScratch,
) -> Result<(), ParseError> {
    scratch.pattern.clear();
    scratch.select_star = false;
    let ParseScratch {
        pattern,
        select,
        select_star,
        prefixes,
        expand_buf,
    } = scratch;
    let mut parser = Parser::new(input, interner, prefixes, expand_buf);
    *select_star = parser.parse_query_body(select, pattern)?;
    Ok(())
}

/// Parse a full SELECT query, interning all terms into `interner`.
/// Convenience wrapper over [`parse_query_into`] that allocates a fresh
/// [`ParseScratch`] and returns an owned [`Query`].
pub fn parse_query(input: &str, interner: &mut Interner) -> Result<Query, ParseError> {
    let mut scratch = ParseScratch::new();
    parse_query_into(input, interner, &mut scratch)?;
    Ok(scratch.into_query())
}

/// Parse a bare BGP — a brace-less triple-pattern list, with an optional
/// PREFIX prologue and optional surrounding `{ }`. Used for rule templates,
/// which are flat by design: OPTIONAL/UNION/FILTER in a template is a parse
/// error here.
pub fn parse_bgp(input: &str, interner: &mut Interner) -> Result<Bgp, ParseError> {
    let mut prefixes = Vec::new();
    let mut expand_buf = String::new();
    Parser::new(input, interner, &mut prefixes, &mut expand_buf).parse_bgp_entry()
}

impl Parser<'_, '_, '_> {
    fn parse_bgp_entry(mut self) -> Result<Bgp, ParseError> {
        self.parse_prologue()?;
        let mut patterns = Vec::new();
        if self.peek()? == Some(Token::LBrace) {
            self.next_token()?;
            self.parse_flat_bgp_body(&mut patterns)?;
            if let Some(tok) = self.next_token()? {
                return Err(self.err(format!("trailing input after '}}': {tok:?}")));
            }
            return Ok(Bgp::new(patterns));
        }
        while self.peek()?.is_some() {
            self.parse_triple_block(&mut patterns)?;
            if self.peek()? == Some(Token::Dot) {
                self.next_token()?;
            }
        }
        Ok(Bgp::new(patterns))
    }

    /// `{ triples }` with no group-pattern constructs — the rule-template
    /// fragment.
    fn parse_flat_bgp_body(&mut self, patterns: &mut Vec<TriplePattern>) -> Result<(), ParseError> {
        loop {
            match self.peek()? {
                Some(Token::RBrace) => {
                    self.next_token()?;
                    return Ok(());
                }
                Some(Token::Word(w))
                    if ["OPTIONAL", "UNION", "FILTER", "GRAPH", "SERVICE", "MINUS"]
                        .iter()
                        .any(|kw| w.eq_ignore_ascii_case(kw)) =>
                {
                    return Err(self.err(format!("{w} is not allowed in a rule template BGP")));
                }
                Some(_) => {
                    self.parse_triple_block(patterns)?;
                    if self.peek()? == Some(Token::Dot) {
                        self.next_token()?;
                    }
                }
                None => return Err(self.err("unexpected end of input inside group pattern")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(q: &str) -> (Query, Interner) {
        let mut it = Interner::new();
        let query = parse_query(q, &mut it).unwrap_or_else(|e| panic!("parse {q:?}: {e}"));
        (query, it)
    }

    #[test]
    fn parses_nested_group_shapes() {
        let (q, _it) = parse(
            "SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?r } \
             { ?a <http://b> ?c } UNION { ?d <http://e> ?f } UNION { ?g <http://h> ?i } \
             FILTER(?o > 3) }",
        );
        let kinds: Vec<_> = q
            .pattern
            .root_children()
            .map(|c| q.pattern.nodes[c as usize])
            .collect();
        assert!(matches!(kinds[0], PatternNode::Triples { len: 1, .. }));
        assert!(matches!(kinds[1], PatternNode::Optional { .. }));
        assert!(matches!(kinds[2], PatternNode::Union { .. }));
        assert!(matches!(kinds[3], PatternNode::Filter { .. }));
        assert_eq!(kinds.len(), 4);
        // Union has three branches.
        let PatternNode::Union { first } = kinds[2] else {
            unreachable!()
        };
        assert_eq!(q.pattern.children_from(first).count(), 3);
    }

    #[test]
    fn parses_service_groups() {
        let (q, it) = parse(
            "PREFIX fed: <http://fed.example.org/> SELECT * WHERE { \
             ?s <http://p> ?o . \
             SERVICE fed:sparql { ?s <http://q> ?r . OPTIONAL { ?r <http://t> ?u } } \
             SERVICE ?ep { ?a <http://b> ?c } }",
        );
        let kinds: Vec<_> = q
            .pattern
            .root_children()
            .map(|c| q.pattern.nodes[c as usize])
            .collect();
        assert_eq!(kinds.len(), 3);
        assert!(matches!(kinds[0], PatternNode::Triples { len: 1, .. }));
        let PatternNode::Service { endpoint, first } = kinds[1] else {
            panic!("expected Service, got {:?}", kinds[1]);
        };
        assert!(endpoint.is_iri());
        assert_eq!(
            it.resolve(endpoint.symbol()),
            "http://fed.example.org/sparql"
        );
        assert_eq!(q.pattern.children_from(first).count(), 2);
        let PatternNode::Service { endpoint, .. } = kinds[2] else {
            panic!("expected Service, got {:?}", kinds[2]);
        };
        assert!(endpoint.is_var());
        assert_eq!(it.resolve(endpoint.symbol()), "ep");
    }

    #[test]
    fn single_braced_group_is_not_a_union() {
        let (q, _) = parse("SELECT * WHERE { { ?s <http://p> ?o } }");
        let kinds: Vec<_> = q
            .pattern
            .root_children()
            .map(|c| q.pattern.nodes[c as usize])
            .collect();
        assert_eq!(kinds.len(), 1);
        assert!(matches!(kinds[0], PatternNode::Group { .. }));
    }

    #[test]
    fn numeric_and_boolean_literals_parse_as_typed_literals() {
        let (q, it) = parse(
            "SELECT * WHERE { ?s <http://p> 42 . ?s <http://q> 3.14 . \
             ?s <http://r> true . ?s <http://t> -7 }",
        );
        let o = |n: usize| -> String {
            let t = q.pattern.triples[n].o;
            it.resolve(t.symbol()).to_string()
        };
        assert_eq!(o(0), format!("\"42\"^^<{XSD_INTEGER}>"));
        assert_eq!(o(1), format!("\"3.14\"^^<{XSD_DECIMAL}>"));
        assert_eq!(o(2), format!("\"true\"^^<{XSD_BOOLEAN}>"));
        assert_eq!(o(3), format!("\"-7\"^^<{XSD_INTEGER}>"));
        // Bare and quoted spellings share one symbol.
        let (q2, _) = {
            let mut it2 = Interner::new();
            let a = parse_query("SELECT * WHERE { ?s <http://p> 42 }", &mut it2).unwrap();
            let b = parse_query(
                &format!("SELECT * WHERE {{ ?s <http://p> \"42\"^^<{XSD_INTEGER}> }}"),
                &mut it2,
            )
            .unwrap();
            assert_eq!(a.pattern.triples[0].o, b.pattern.triples[0].o);
            (a, it2)
        };
        assert!(q2.pattern.is_flat());
    }

    #[test]
    fn integer_then_dot_terminates_triple_block() {
        // `3 .` and `3.` both mean integer-3 then end-of-block — the dot is
        // part of the literal only when a digit follows.
        for q in [
            "SELECT * WHERE { ?s <http://p> 3 . ?s <http://q> ?o }",
            "SELECT * WHERE { ?s <http://p> 3. ?s <http://q> ?o }",
        ] {
            let (parsed, it) = parse(q);
            assert_eq!(parsed.pattern.triples.len(), 2, "{q}");
            assert_eq!(
                it.resolve(parsed.pattern.triples[0].o.symbol()),
                format!("\"3\"^^<{XSD_INTEGER}>")
            );
        }
    }

    #[test]
    fn malformed_numeric_is_rejected() {
        let mut it = Interner::new();
        for q in [
            "SELECT * WHERE { ?s <http://p> 3abc }",
            "SELECT * WHERE { ?s <http://p> 1e5 }",
        ] {
            assert!(parse_query(q, &mut it).is_err(), "accepted {q}");
        }
    }

    #[test]
    fn bare_literals_only_legal_in_object_and_expression_position() {
        let mut it = Interner::new();
        // A literal can never be the subject or the verb of a triple.
        for q in [
            "SELECT * WHERE { ?s 42 ?o }",
            "SELECT * WHERE { 42 <http://p> ?o }",
            "SELECT * WHERE { ?s true ?o }",
            "SELECT * WHERE { true <http://p> ?o }",
        ] {
            assert!(parse_query(q, &mut it).is_err(), "accepted {q}");
        }
    }

    #[test]
    fn iri_bodies_starting_with_equals_are_still_iris() {
        // `<=` must only lex as the Le operator when no `>`-terminated
        // IRIREF follows: `<=x>` is the (odd but legal) IRI "=x".
        let (q, it) = parse("SELECT * WHERE { ?s ?p <=x> FILTER(?s <= 3) }");
        let o = q.pattern.triples[0].o;
        assert!(o.is_iri());
        assert_eq!(it.resolve(o.symbol()), "=x");
        let filter = q
            .pattern
            .root_children()
            .find_map(|c| match q.pattern.nodes[c as usize] {
                PatternNode::Filter { expr } => Some(expr),
                _ => None,
            })
            .unwrap();
        assert!(matches!(
            q.pattern.exprs[filter as usize],
            ExprNode::Cmp(CmpOp::Le, _, _)
        ));
    }

    #[test]
    fn language_tags_are_case_normalized() {
        let mut it = Interner::new();
        let a = parse_query("SELECT * WHERE { ?s <http://p> \"x\"@EN }", &mut it).unwrap();
        let b = parse_query("SELECT * WHERE { ?s <http://p> \"x\"@en }", &mut it).unwrap();
        let c = parse_query("SELECT * WHERE { ?s <http://p> \"x\"@en-GB }", &mut it).unwrap();
        assert_eq!(a.pattern.triples[0].o, b.pattern.triples[0].o);
        assert_eq!(it.resolve(a.pattern.triples[0].o.symbol()), "\"x\"@en");
        assert_eq!(it.resolve(c.pattern.triples[0].o.symbol()), "\"x\"@en-gb");
    }

    #[test]
    fn filter_expression_precedence() {
        // `a || b && c` parses as `a || (b && c)`; comparison binds tighter.
        let (q, _) = parse("SELECT * WHERE { ?s <http://p> ?o FILTER(?a = 1 || ?b < 2 && ?c) }");
        let filter = q
            .pattern
            .root_children()
            .find_map(|c| match q.pattern.nodes[c as usize] {
                PatternNode::Filter { expr } => Some(expr),
                _ => None,
            })
            .expect("filter node");
        let ExprNode::Or(l, r) = q.pattern.exprs[filter as usize] else {
            panic!(
                "expected Or at root: {:?}",
                q.pattern.exprs[filter as usize]
            );
        };
        assert!(matches!(
            q.pattern.exprs[l as usize],
            ExprNode::Cmp(CmpOp::Eq, _, _)
        ));
        assert!(matches!(q.pattern.exprs[r as usize], ExprNode::And(_, _)));
    }

    #[test]
    fn filter_lt_vs_iri_disambiguation() {
        let (q, it) = parse("SELECT * WHERE { ?s <http://p> ?o FILTER(?o < <http://x> && ?o<3) }");
        let filter = q
            .pattern
            .root_children()
            .find_map(|c| match q.pattern.nodes[c as usize] {
                PatternNode::Filter { expr } => Some(expr),
                _ => None,
            })
            .unwrap();
        let ExprNode::And(l, r) = q.pattern.exprs[filter as usize] else {
            panic!("expected And");
        };
        let ExprNode::Cmp(CmpOp::Lt, _, iri) = q.pattern.exprs[l as usize] else {
            panic!("expected Lt");
        };
        let ExprNode::Term(t) = q.pattern.exprs[iri as usize] else {
            panic!()
        };
        assert!(t.is_iri());
        assert_eq!(it.resolve(t.symbol()), "http://x");
        assert!(matches!(
            q.pattern.exprs[r as usize],
            ExprNode::Cmp(CmpOp::Lt, _, _)
        ));
    }

    #[test]
    fn error_offset_points_at_offending_token() {
        let mut it = Interner::new();
        // Wrong keyword after the projection: offset must be the start of
        // `FROM`, not the cursor position after peeking past it.
        let input = "SELECT ?x FROM <http://g> WHERE { ?x <http://p> ?o }";
        let err = parse_query(input, &mut it).unwrap_err();
        assert_eq!(err.offset, input.find("FROM").unwrap(), "{err}");

        // Peeked-keyword error: offset of GRAPH itself.
        let input = "SELECT * WHERE { ?s <http://p> ?o . GRAPH <http://g> { ?a <http://b> ?c } }";
        let err = parse_query(input, &mut it).unwrap_err();
        assert_eq!(err.offset, input.find("GRAPH").unwrap(), "{err}");

        // Bad term mid-triple: offset of the offending token, not the
        // token after it.
        let input = "SELECT * WHERE { ?s ?p ; ?o }";
        let err = parse_query(input, &mut it).unwrap_err();
        assert_eq!(err.offset, input.find(';').unwrap(), "{err}");

        // Illegal SERVICE endpoint: offset of the endpoint token itself.
        let input = "SELECT * WHERE { SERVICE \"lit\" { ?s <http://p> ?o } }";
        let err = parse_query(input, &mut it).unwrap_err();
        assert_eq!(err.offset, input.find('"').unwrap(), "{err}");
    }

    #[test]
    fn empty_group_and_nested_empty_groups_parse() {
        let (q, _) = parse("SELECT * WHERE { }");
        assert_eq!(q.pattern.root_children().count(), 0);
        let (q, _) = parse("SELECT * WHERE { { } OPTIONAL { } }");
        assert_eq!(q.pattern.root_children().count(), 2);
    }

    #[test]
    fn rule_templates_stay_flat() {
        let mut it = Interner::new();
        assert!(parse_bgp("?s <http://p> ?o . ?o <http://q> ?r", &mut it).is_ok());
        assert!(parse_bgp("{ ?s <http://p> ?o }", &mut it).is_ok());
        assert!(parse_bgp("{ OPTIONAL { ?s <http://p> ?o } }", &mut it).is_err());
        assert!(parse_bgp("{ ?s <http://p> ?o FILTER(?o > 3) }", &mut it).is_err());
    }

    /// Unwrap-site audit regression net: every malformed input a serve
    /// worker could receive must come back as `Err(ParseError)` — never a
    /// panic. The battery covers each tokenizer/parser invariant that is
    /// (or once was) backed by an `expect`: QName colon handling, literal
    /// quote/suffix scanning, numeric boundaries, operator pairs, and
    /// truncation at every structural position.
    #[test]
    fn malformed_user_input_errors_instead_of_panicking() {
        let mut it = Interner::new();
        let cases: &[&str] = &[
            "",
            " ",
            "SELECT",
            "SELECT *",
            "SELECT * WHERE",
            "SELECT * WHERE {",
            "SELECT * WHERE { ?s ?p ?o",
            "SELECT * WHERE { ?s ?p }",
            "SELECT ?",
            "SELECT * WHERE { ? <http://p> ?o }",
            // PREFIX prologue truncations and malformations.
            "PREFIX",
            "PREFIX x",
            "PREFIX x:",
            "PREFIX x: y",
            "PREFIX x:y <http://p>",
            "PREFIX : SELECT * WHERE { ?s ?p ?o }",
            // QName expansion paths (the former expect sites).
            "SELECT * WHERE { ?s und:declared ?o }",
            "PREFIX p: <http://x/> SELECT * WHERE { ?s q:zzz ?o }",
            // Literal scanning: unterminated bodies, dangling escapes,
            // empty/malformed suffixes.
            "SELECT * WHERE { ?s <http://p> \"unterminated }",
            "SELECT * WHERE { ?s <http://p> \"dangling\\",
            "SELECT * WHERE { ?s <http://p> \"x\"@ }",
            "SELECT * WHERE { ?s <http://p> \"x\"^^ }",
            "SELECT * WHERE { ?s <http://p> \"x\"^^nocolon }",
            "SELECT * WHERE { ?s <http://p> \"x\"^^und:decl }",
            "SELECT * WHERE { ?s <http://p> \"x\"^^<unterminated }",
            // Numerics and blanks.
            "SELECT * WHERE { ?s <http://p> 3abc }",
            "SELECT * WHERE { ?s <http://p> 1e5 }",
            "SELECT * WHERE { _: <http://p> ?o }",
            // Operator fragments.
            "SELECT * WHERE { ?s <http://p> ?o FILTER(?o & 1) }",
            "SELECT * WHERE { ?s <http://p> ?o FILTER(?o | 1) }",
            "SELECT * WHERE { ?s <http://p> ?o FILTER( }",
            "SELECT * WHERE { ?s <http://p> ?o FILTER(?o > ) }",
            // Structure errors.
            "SELECT * WHERE { } }",
            "SELECT * WHERE { UNION { ?s ?p ?o } }",
            "SELECT * WHERE { OPTIONAL ?s }",
            "SELECT * WHERE { GRAPH <http://g> { ?s ?p ?o } }",
            "SELECT * WHERE { ?s ?p ?o } trailing",
            // SERVICE truncations and malformed endpoints.
            "SELECT * WHERE { SERVICE",
            "SELECT * WHERE { SERVICE }",
            "SELECT * WHERE { SERVICE <http://e>",
            "SELECT * WHERE { SERVICE <http://e> }",
            "SELECT * WHERE { SERVICE <http://e> { ?s ?p ?o }",
            "SELECT * WHERE { SERVICE \"lit\" { ?s ?p ?o } }",
            "SELECT * WHERE { SERVICE _:b { ?s ?p ?o } }",
            "SELECT * WHERE { SERVICE 42 { ?s ?p ?o } }",
            "SELECT * WHERE { SERVICE und:decl { ?s ?p ?o } }",
        ];
        for q in cases {
            assert!(parse_query(q, &mut it).is_err(), "accepted {q:?}");
        }
    }

    /// Deterministic mutation fuzz: random single-byte corruptions and
    /// truncations of valid queries must parse to `Ok` or `Err`, never
    /// panic (a panic fails the test run). Seeds are fixed so failures
    /// reproduce.
    #[test]
    fn mutated_queries_never_panic() {
        let valid: &[&str] = &[
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/> SELECT ?n WHERE { ?x foaf:name ?n ; a foaf:Person }",
            "SELECT * WHERE { ?s <http://p> \"x\"@en-GB . OPTIONAL { ?s <http://q> 3.14 } \
             { ?a <http://b> true } UNION { ?d <http://e> \"y\"^^<http://t> } FILTER(?s <= 3 && !(?a = ?d)) }",
            "SELECT ?s WHERE { ?s <http://p> ?o . SERVICE <http://fed.example.org/sparql> \
             { ?o <http://q> ?r } SERVICE ?ep { ?r <http://t> ?u } }",
        ];
        // xorshift64* so the mutation stream is seed-stable.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut it = Interner::new();
        for base in valid {
            for _ in 0..500 {
                let mut bytes = base.as_bytes().to_vec();
                // 1–3 mutations: overwrite with a printable ASCII byte
                // (inputs are ASCII, so UTF-8 validity is preserved).
                for _ in 0..(1 + next() % 3) {
                    let pos = (next() % bytes.len() as u64) as usize;
                    bytes[pos] = 0x20 + (next() % 0x5f) as u8;
                }
                if next() % 4 == 0 {
                    bytes.truncate((next() % (bytes.len() as u64 + 1)) as usize);
                }
                let text = String::from_utf8(bytes).expect("ASCII mutations stay UTF-8");
                let _ = parse_query(&text, &mut it);
            }
        }
    }
}
