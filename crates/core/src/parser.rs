//! Zero-copy tokenizer and parser for the SELECT/WHERE BGP fragment of
//! SPARQL.
//!
//! The tokenizer yields `&str` slices borrowing from the input; nothing is
//! allocated until a term's final text is known (after PREFIX expansion for
//! QNames), at which point it is interned once. Supported syntax:
//!
//! ```sparql
//! PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//! SELECT ?name ?mbox
//! WHERE {
//!   ?x foaf:name ?name ; foaf:mbox ?mbox .
//!   ?x a foaf:Person .
//! }
//! ```
//!
//! Triple blocks support `;` (predicate-object lists) and `,` (object
//! lists); `a` expands to `rdf:type`. OPTIONAL/UNION/FILTER are out of scope
//! for this crate (see ROADMAP) and produce a parse error.

use std::fmt;

use crate::fxhash::FxHashMap;
use crate::interner::Interner;
use crate::pattern::{Bgp, Query, SelectList, TriplePattern};
use crate::term::Term;

pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokens borrow from the query string — the tokenizer allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Token<'a> {
    /// `<...>` with brackets stripped.
    IriRef(&'a str),
    /// `prefix:local` (either part may be empty).
    QName(&'a str),
    /// `?x` / `$x` with the sigil stripped.
    Var(&'a str),
    /// Full literal surface form including quotes and any @lang/^^ suffix.
    Literal(&'a str),
    /// `_:label` with the `_:` stripped.
    Blank(&'a str),
    /// A bare word: SELECT, WHERE, PREFIX, `a`, `*`.
    Word(&'a str),
    LBrace,
    RBrace,
    Dot,
    Semicolon,
    Comma,
}

struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    fn new(input: &'a str) -> Tokenizer<'a> {
        Tokenizer { input, pos: 0 }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn skip_trivia(&mut self) {
        let b = self.bytes();
        while self.pos < b.len() {
            match b[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'#' => {
                    while self.pos < b.len() && b[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    /// Scan a literal starting at the opening quote; returns the full
    /// surface form (quotes, escapes, and any `@lang` / `^^iri-or-qname`
    /// suffix included) as one borrowed slice.
    fn scan_literal(&mut self) -> Result<Token<'a>, ParseError> {
        let b = self.bytes();
        let start = self.pos;
        debug_assert_eq!(b[self.pos], b'"');
        self.pos += 1;
        loop {
            match b.get(self.pos) {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\\') => {
                    if self.pos + 1 >= b.len() {
                        return Err(self.err("dangling escape in literal"));
                    }
                    self.pos += 2;
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        // Optional @lang
        if b.get(self.pos) == Some(&b'@') {
            self.pos += 1;
            let tag_start = self.pos;
            while self
                .bytes()
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'-')
            {
                self.pos += 1;
            }
            if self.pos == tag_start {
                return Err(self.err("empty language tag"));
            }
        } else if b.get(self.pos) == Some(&b'^') && b.get(self.pos + 1) == Some(&b'^') {
            self.pos += 2;
            if b.get(self.pos) == Some(&b'<') {
                while self.pos < b.len() && b[self.pos] != b'>' {
                    self.pos += 1;
                }
                if b.get(self.pos) != Some(&b'>') {
                    return Err(self.err("unterminated datatype IRI"));
                }
                self.pos += 1;
            } else {
                let dt_start = self.pos;
                while self
                    .bytes()
                    .get(self.pos)
                    .is_some_and(|c| is_name_byte(*c) || *c == b':')
                {
                    self.pos += 1;
                }
                if self.pos == dt_start {
                    return Err(self.err("empty datatype after '^^'"));
                }
            }
        }
        Ok(Token::Literal(&self.input[start..self.pos]))
    }

    fn next(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        self.skip_trivia();
        let b = self.bytes();
        let Some(&c) = b.get(self.pos) else {
            return Ok(None);
        };
        let tok = match c {
            b'{' => {
                self.pos += 1;
                Token::LBrace
            }
            b'}' => {
                self.pos += 1;
                Token::RBrace
            }
            b'.' => {
                self.pos += 1;
                Token::Dot
            }
            b';' => {
                self.pos += 1;
                Token::Semicolon
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'*' => {
                self.pos += 1;
                Token::Word("*")
            }
            b'<' => {
                let start = self.pos + 1;
                let mut end = start;
                while end < b.len() && b[end] != b'>' {
                    end += 1;
                }
                if end == b.len() {
                    return Err(self.err("unterminated IRI reference"));
                }
                self.pos = end + 1;
                Token::IriRef(&self.input[start..end])
            }
            b'?' | b'$' => {
                let start = self.pos + 1;
                let mut end = start;
                while end < b.len() && is_name_byte(b[end]) {
                    end += 1;
                }
                if end == start {
                    return Err(self.err("empty variable name"));
                }
                self.pos = end;
                Token::Var(&self.input[start..end])
            }
            b'"' => self.scan_literal()?,
            b'_' if b.get(self.pos + 1) == Some(&b':') => {
                let start = self.pos + 2;
                let mut end = start;
                while end < b.len() && is_name_byte(b[end]) {
                    end += 1;
                }
                if end == start {
                    return Err(self.err("empty blank node label"));
                }
                self.pos = end;
                Token::Blank(&self.input[start..end])
            }
            c if is_name_byte(c) || c == b':' => {
                let start = self.pos;
                let mut end = start;
                let mut has_colon = false;
                while end < b.len() && (is_name_byte(b[end]) || (b[end] == b':' && !has_colon)) {
                    if b[end] == b':' {
                        has_colon = true;
                    }
                    end += 1;
                }
                self.pos = end;
                let text = &self.input[start..end];
                if has_colon {
                    Token::QName(text)
                } else {
                    Token::Word(text)
                }
            }
            other => return Err(self.err(format!("unexpected byte 0x{other:02x}"))),
        };
        Ok(Some(tok))
    }
}

#[inline]
fn is_name_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || !c.is_ascii()
}

/// Parser state: a tokenizer with one token of lookahead, the PREFIX table
/// (maps prefix name without the colon to its expansion), and the interner
/// terms are minted into.
pub struct Parser<'a, 'i> {
    tok: Tokenizer<'a>,
    peeked: Option<Token<'a>>,
    prefixes: FxHashMap<&'a str, &'a str>,
    interner: &'i mut Interner,
    // Scratch buffer reused for every QName expansion to avoid a fresh
    // allocation per term.
    expand_buf: String,
}

impl<'a, 'i> Parser<'a, 'i> {
    pub fn new(input: &'a str, interner: &'i mut Interner) -> Parser<'a, 'i> {
        Parser {
            tok: Tokenizer::new(input),
            peeked: None,
            prefixes: FxHashMap::default(),
            interner,
            expand_buf: String::new(),
        }
    }

    fn next_token(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        if let Some(t) = self.peeked.take() {
            return Ok(Some(t));
        }
        self.tok.next()
    }

    fn peek(&mut self) -> Result<Option<Token<'a>>, ParseError> {
        if self.peeked.is_none() {
            self.peeked = self.tok.next()?;
        }
        Ok(self.peeked)
    }

    fn expect(&mut self, what: &str) -> Result<Token<'a>, ParseError> {
        self.next_token()?.ok_or_else(|| {
            self.tok
                .err(format!("unexpected end of input, expected {what}"))
        })
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        self.tok.err(message)
    }

    /// Expand a QName against the PREFIX table and intern the result.
    fn intern_qname(&mut self, qname: &str) -> Result<Term, ParseError> {
        let colon = qname.find(':').expect("tokenizer guarantees a colon");
        let (prefix, local) = (&qname[..colon], &qname[colon + 1..]);
        let Some(base) = self.prefixes.get(prefix) else {
            return Err(self.err(format!("undeclared prefix '{prefix}:'")));
        };
        self.expand_buf.clear();
        self.expand_buf.push_str(base);
        self.expand_buf.push_str(local);
        Ok(Term::iri(self.interner.intern(&self.expand_buf)))
    }

    /// Intern a literal, canonicalizing a `^^prefix:local` datatype to
    /// `^^<expanded-iri>` so rendered output needs no PREFIX declaration and
    /// the QName and full-IRI spellings of one literal share a symbol.
    fn intern_literal(&mut self, lit: &str) -> Result<Term, ParseError> {
        let close = lit.rfind('"').expect("tokenizer guarantees quotes");
        if let Some(dtype) = lit[close + 1..].strip_prefix("^^") {
            if !dtype.starts_with('<') {
                let colon = dtype
                    .find(':')
                    .ok_or_else(|| self.err("datatype QName missing ':'"))?;
                let (prefix, local) = (&dtype[..colon], &dtype[colon + 1..]);
                let Some(&base) = self.prefixes.get(prefix) else {
                    return Err(self.err(format!("undeclared prefix '{prefix}:'")));
                };
                self.expand_buf.clear();
                self.expand_buf.push_str(&lit[..close + 1]);
                self.expand_buf.push_str("^^<");
                self.expand_buf.push_str(base);
                self.expand_buf.push_str(local);
                self.expand_buf.push('>');
                return Ok(Term::literal(self.interner.intern(&self.expand_buf)));
            }
        }
        Ok(Term::literal(self.interner.intern(lit)))
    }

    fn parse_term(&mut self, tok: Token<'a>, position: &str) -> Result<Term, ParseError> {
        match tok {
            Token::IriRef(iri) => Ok(Term::iri(self.interner.intern(iri))),
            Token::QName(q) => self.intern_qname(q),
            Token::Var(v) => Ok(Term::var(self.interner.intern(v))),
            Token::Literal(l) => self.intern_literal(l),
            Token::Blank(b) => Ok(Term::blank(self.interner.intern(b))),
            Token::Word("a") if position == "predicate" => {
                Ok(Term::iri(self.interner.intern(RDF_TYPE)))
            }
            other => Err(self.err(format!("expected {position} term, found {other:?}"))),
        }
    }

    fn parse_prologue(&mut self) -> Result<(), ParseError> {
        while let Some(Token::Word(w)) = self.peek()? {
            if !w.eq_ignore_ascii_case("PREFIX") {
                break;
            }
            self.next_token()?;
            let Token::QName(q) = self.expect("prefix declaration")? else {
                return Err(self.err("expected 'name:' after PREFIX"));
            };
            if !q.ends_with(':') {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let Token::IriRef(iri) = self.expect("IRI after prefix name")? else {
                return Err(self.err("expected <IRI> after prefix name"));
            };
            self.prefixes.insert(&q[..q.len() - 1], iri);
        }
        Ok(())
    }

    fn parse_select(&mut self) -> Result<SelectList, ParseError> {
        match self.expect("SELECT")? {
            Token::Word(w) if w.eq_ignore_ascii_case("SELECT") => {}
            other => return Err(self.err(format!("expected SELECT, found {other:?}"))),
        }
        match self.peek()? {
            Some(Token::Word("*")) => {
                self.next_token()?;
                Ok(SelectList::Star)
            }
            _ => {
                let mut vars = Vec::new();
                while let Some(Token::Var(v)) = self.peek()? {
                    self.next_token()?;
                    vars.push(Term::var(self.interner.intern(v)));
                }
                if vars.is_empty() {
                    return Err(self.err("SELECT needs '*' or at least one variable"));
                }
                Ok(SelectList::Vars(vars))
            }
        }
    }

    /// Parse the `{ ... }` group as a flat BGP, supporting `.`-separated
    /// triple blocks with `;` predicate-object lists and `,` object lists.
    fn parse_bgp(&mut self) -> Result<Bgp, ParseError> {
        match self.expect("'{'")? {
            Token::LBrace => {}
            other => return Err(self.err(format!("expected '{{', found {other:?}"))),
        }
        let mut patterns = Vec::new();
        loop {
            match self.peek()? {
                Some(Token::RBrace) => {
                    self.next_token()?;
                    break;
                }
                Some(Token::Word(w))
                    if ["OPTIONAL", "UNION", "FILTER", "GRAPH", "SERVICE", "MINUS"]
                        .iter()
                        .any(|kw| w.eq_ignore_ascii_case(kw)) =>
                {
                    return Err(self.err(format!(
                        "{w} is not supported by the BGP rewriter (see ROADMAP: query-level rewriting)"
                    )));
                }
                Some(_) => {
                    self.parse_triple_block(&mut patterns)?;
                    // Optional '.' between blocks.
                    if self.peek()? == Some(Token::Dot) {
                        self.next_token()?;
                    }
                }
                None => return Err(self.err("unexpected end of input inside group pattern")),
            }
        }
        Ok(Bgp::new(patterns))
    }

    fn parse_triple_block(&mut self, patterns: &mut Vec<TriplePattern>) -> Result<(), ParseError> {
        let tok = self.expect("subject term")?;
        let subject = self.parse_term(tok, "subject")?;
        loop {
            let tok = self.expect("predicate term")?;
            let predicate = self.parse_term(tok, "predicate")?;
            loop {
                let tok = self.expect("object term")?;
                let object = self.parse_term(tok, "object")?;
                patterns.push(TriplePattern::new(subject, predicate, object));
                if self.peek()? == Some(Token::Comma) {
                    self.next_token()?;
                } else {
                    break;
                }
            }
            if self.peek()? == Some(Token::Semicolon) {
                self.next_token()?;
            } else {
                break;
            }
        }
        Ok(())
    }

    pub fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.parse_prologue()?;
        let select = self.parse_select()?;
        match self.expect("WHERE")? {
            Token::Word(w) if w.eq_ignore_ascii_case("WHERE") => {}
            // Bare `{ ... }` without the WHERE keyword is legal SPARQL.
            Token::LBrace => {
                self.peeked = Some(Token::LBrace);
            }
            other => return Err(self.err(format!("expected WHERE, found {other:?}"))),
        }
        let bgp = self.parse_bgp()?;
        if let Some(tok) = self.next_token()? {
            return Err(self.err(format!("trailing input after query: {tok:?}")));
        }
        Ok(Query { select, bgp })
    }
}

/// Parse a full SELECT query, interning all terms into `interner`.
pub fn parse_query(input: &str, interner: &mut Interner) -> Result<Query, ParseError> {
    Parser::new(input, interner).parse_query()
}

/// Parse a bare BGP — a brace-less triple-pattern list, with an optional
/// PREFIX prologue and optional surrounding `{ }`. Used for rule templates.
pub fn parse_bgp(input: &str, interner: &mut Interner) -> Result<Bgp, ParseError> {
    Parser::new(input, interner).parse_bgp_entry()
}

impl Parser<'_, '_> {
    fn parse_bgp_entry(mut self) -> Result<Bgp, ParseError> {
        self.parse_prologue()?;
        if self.peek()? == Some(Token::LBrace) {
            let bgp = self.parse_bgp()?;
            if let Some(tok) = self.next_token()? {
                return Err(self.err(format!("trailing input after '}}': {tok:?}")));
            }
            return Ok(bgp);
        }
        let mut patterns = Vec::new();
        while self.peek()?.is_some() {
            self.parse_triple_block(&mut patterns)?;
            if self.peek()? == Some(Token::Dot) {
                self.next_token()?;
            }
        }
        Ok(Bgp::new(patterns))
    }
}
