//! Interned RDF terms.
//!
//! A [`Term`] packs a 3-bit kind tag and a 29-bit payload into a single
//! `u32`, so a [`crate::pattern::TriplePattern`] is a 12-byte `Copy` struct
//! and term equality/hashing are integer ops. For parsed kinds the payload
//! is an interner symbol and the textual form lives in the
//! [`crate::interner::Interner`]; for [`TermKind::Fresh`] the payload is a
//! per-rewrite counter and no string exists until render time.

use std::fmt;

/// Index into an [`crate::interner::Interner`]. At most 2^29 distinct
/// strings can be interned (the top three bits of a [`Term`] hold the kind).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    pub const MAX: u32 = (1 << 29) - 1;

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The syntactic category of an RDF term in a triple pattern.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum TermKind {
    /// An IRI; the symbol resolves to the absolute IRI without angle brackets.
    Iri = 0,
    /// A literal; the symbol resolves to the full surface form, quotes and
    /// any `@lang` / `^^<datatype>` suffix included.
    Literal = 1,
    /// A blank node; the symbol resolves to the label without `_:`.
    Blank = 2,
    /// A variable; the symbol resolves to the name without `?`/`$`.
    Var = 3,
    /// A rewriter-introduced existential variable. The payload is a counter
    /// minted per rewrite call, **not** an interner symbol: no string is ever
    /// interned for a fresh variable, and a `Fresh` term can never compare
    /// equal to a parsed [`TermKind::Var`], so capture avoidance is
    /// structural rather than name-based. Rendering materializes a `g{n}`
    /// name lazily (see `crate::pattern`).
    Fresh = 4,
}

/// A tagged, interned RDF term: 4 bytes, `Copy`, integer compare/hash.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Term(u32);

/// Bit position of the 3-bit kind tag; the symbol/counter payload sits
/// below. `pub(crate)` so the dense alignment index can decode raw terms
/// without duplicating the packing.
pub(crate) const TAG_SHIFT: u32 = 29;
pub(crate) const SYM_MASK: u32 = (1 << TAG_SHIFT) - 1;

impl Term {
    #[inline]
    pub fn new(kind: TermKind, sym: Symbol) -> Term {
        debug_assert!(sym.0 <= Symbol::MAX);
        Term(((kind as u32) << TAG_SHIFT) | (sym.0 & SYM_MASK))
    }

    #[inline]
    pub fn iri(sym: Symbol) -> Term {
        Term::new(TermKind::Iri, sym)
    }

    #[inline]
    pub fn literal(sym: Symbol) -> Term {
        Term::new(TermKind::Literal, sym)
    }

    #[inline]
    pub fn blank(sym: Symbol) -> Term {
        Term::new(TermKind::Blank, sym)
    }

    #[inline]
    pub fn var(sym: Symbol) -> Term {
        Term::new(TermKind::Var, sym)
    }

    /// Fresh existential variable `n` of one rewrite call. The counter
    /// occupies the symbol bits but is not an interner index. Hard assert
    /// (mirroring the interner's symbol-space check): wrapping in release
    /// builds would make two distinct existentials compare equal and
    /// silently join unrelated solutions.
    #[inline]
    pub fn fresh(n: u32) -> Term {
        assert!(n <= Symbol::MAX, "fresh counter exceeded 2^29");
        Term(((TermKind::Fresh as u32) << TAG_SHIFT) | n)
    }

    #[inline]
    pub fn kind(self) -> TermKind {
        match self.0 >> TAG_SHIFT {
            0 => TermKind::Iri,
            1 => TermKind::Literal,
            2 => TermKind::Blank,
            3 => TermKind::Var,
            _ => TermKind::Fresh,
        }
    }

    /// Interner symbol for parsed kinds. Meaningless for [`TermKind::Fresh`]
    /// terms — use [`Term::fresh_index`] for those.
    #[inline]
    pub fn symbol(self) -> Symbol {
        Symbol(self.0 & SYM_MASK)
    }

    /// The per-rewrite counter of a [`TermKind::Fresh`] term.
    #[inline]
    pub fn fresh_index(self) -> u32 {
        debug_assert!(self.is_fresh());
        self.0 & SYM_MASK
    }

    /// True for parsed (`?x`) variables only; fresh existentials are a
    /// distinct kind, see [`Term::is_fresh`].
    #[inline]
    pub fn is_var(self) -> bool {
        self.kind() == TermKind::Var
    }

    #[inline]
    pub fn is_fresh(self) -> bool {
        self.kind() == TermKind::Fresh
    }

    #[inline]
    pub fn is_iri(self) -> bool {
        self.kind() == TermKind::Iri
    }

    /// Raw packed representation; stable within one process, useful as a
    /// compact hash key.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstruct a term from its [`Term::raw`] packing. Only meaningful
    /// for values previously produced by `raw()` in the same process (the
    /// dense alignment index stores rule targets this way).
    #[inline]
    pub fn from_raw(raw: u32) -> Term {
        Term(raw)
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fresh() {
            write!(f, "Term(Fresh, g{})", self.fresh_index())
        } else {
            write!(f, "Term({:?}, #{})", self.kind(), self.symbol().0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_is_four_bytes() {
        assert_eq!(std::mem::size_of::<Term>(), 4);
    }

    #[test]
    fn tag_round_trip() {
        for kind in [
            TermKind::Iri,
            TermKind::Literal,
            TermKind::Blank,
            TermKind::Var,
        ] {
            let t = Term::new(kind, Symbol(12345));
            assert_eq!(t.kind(), kind);
            assert_eq!(t.symbol(), Symbol(12345));
        }
        let t = Term::new(TermKind::Var, Symbol(Symbol::MAX));
        assert_eq!(t.kind(), TermKind::Var);
        assert_eq!(t.symbol(), Symbol(Symbol::MAX));
    }

    #[test]
    fn fresh_round_trip_and_never_equals_var() {
        let f = Term::fresh(7);
        assert_eq!(f.kind(), TermKind::Fresh);
        assert!(f.is_fresh() && !f.is_var());
        assert_eq!(f.fresh_index(), 7);
        // Even with identical payload bits, a fresh term differs from every
        // parsed kind — the structural capture-avoidance guarantee.
        assert_ne!(f, Term::var(Symbol(7)));
        assert_ne!(f, Term::iri(Symbol(7)));
        assert_ne!(f, Term::blank(Symbol(7)));
        let max = Term::fresh(Symbol::MAX);
        assert_eq!(max.fresh_index(), Symbol::MAX);
        assert_eq!(max.kind(), TermKind::Fresh);
    }
}
