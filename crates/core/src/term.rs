//! Interned RDF terms.
//!
//! A [`Term`] packs a 2-bit kind tag and a 30-bit interner symbol into a
//! single `u32`, so a [`crate::pattern::TriplePattern`] is a 12-byte `Copy`
//! struct and term equality/hashing are integer ops. The textual form lives
//! in the [`crate::interner::Interner`]; terms are meaningless without the
//! interner that minted them.

use std::fmt;

/// Index into an [`crate::interner::Interner`]. At most 2^30 distinct
/// strings can be interned (the top two bits of a [`Term`] hold the kind).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    pub const MAX: u32 = (1 << 30) - 1;

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The syntactic category of an RDF term in a triple pattern.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum TermKind {
    /// An IRI; the symbol resolves to the absolute IRI without angle brackets.
    Iri = 0,
    /// A literal; the symbol resolves to the full surface form, quotes and
    /// any `@lang` / `^^<datatype>` suffix included.
    Literal = 1,
    /// A blank node; the symbol resolves to the label without `_:`.
    Blank = 2,
    /// A variable; the symbol resolves to the name without `?`/`$`.
    Var = 3,
}

/// A tagged, interned RDF term: 4 bytes, `Copy`, integer compare/hash.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Term(u32);

const TAG_SHIFT: u32 = 30;
const SYM_MASK: u32 = (1 << TAG_SHIFT) - 1;

impl Term {
    #[inline]
    pub fn new(kind: TermKind, sym: Symbol) -> Term {
        debug_assert!(sym.0 <= Symbol::MAX);
        Term(((kind as u32) << TAG_SHIFT) | (sym.0 & SYM_MASK))
    }

    #[inline]
    pub fn iri(sym: Symbol) -> Term {
        Term::new(TermKind::Iri, sym)
    }

    #[inline]
    pub fn literal(sym: Symbol) -> Term {
        Term::new(TermKind::Literal, sym)
    }

    #[inline]
    pub fn blank(sym: Symbol) -> Term {
        Term::new(TermKind::Blank, sym)
    }

    #[inline]
    pub fn var(sym: Symbol) -> Term {
        Term::new(TermKind::Var, sym)
    }

    #[inline]
    pub fn kind(self) -> TermKind {
        match self.0 >> TAG_SHIFT {
            0 => TermKind::Iri,
            1 => TermKind::Literal,
            2 => TermKind::Blank,
            _ => TermKind::Var,
        }
    }

    #[inline]
    pub fn symbol(self) -> Symbol {
        Symbol(self.0 & SYM_MASK)
    }

    #[inline]
    pub fn is_var(self) -> bool {
        self.kind() == TermKind::Var
    }

    #[inline]
    pub fn is_iri(self) -> bool {
        self.kind() == TermKind::Iri
    }

    /// Raw packed representation; stable within one process, useful as a
    /// compact hash key.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Term({:?}, #{})", self.kind(), self.symbol().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_is_four_bytes() {
        assert_eq!(std::mem::size_of::<Term>(), 4);
    }

    #[test]
    fn tag_round_trip() {
        for kind in [
            TermKind::Iri,
            TermKind::Literal,
            TermKind::Blank,
            TermKind::Var,
        ] {
            let t = Term::new(kind, Symbol(12345));
            assert_eq!(t.kind(), kind);
            assert_eq!(t.symbol(), Symbol(12345));
        }
        let t = Term::new(TermKind::Var, Symbol(Symbol::MAX));
        assert_eq!(t.kind(), TermKind::Var);
        assert_eq!(t.symbol(), Symbol(Symbol::MAX));
    }
}
