//! FxHash: the non-cryptographic multiply-and-rotate hasher used by rustc.
//!
//! The container image has no registry access, so the `fxhash`/`rustc-hash`
//! crates are re-implemented here (the algorithm is a few lines). Symbol and
//! short-string keys dominate this codebase and Fx is ~5x faster than the
//! default SipHash for them; it is NOT DoS-resistant, which is acceptable for
//! an engine that hashes its own interned vocabulary rather than attacker-
//! controlled keys.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_hashes() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u32..10_000 {
            let mut h = FxHasher::default();
            h.write_u32(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn string_hashing_is_consistent() {
        let hash = |s: &str| {
            let mut h = FxHasher::default();
            h.write(s.as_bytes());
            h.finish()
        };
        assert_eq!(hash("http://ex.org/p"), hash("http://ex.org/p"));
        assert_ne!(hash("http://ex.org/p"), hash("http://ex.org/q"));
    }
}
