//! Deterministic byte-level fault injection behind a real socket.
//!
//! [`ChaosProxy`] is an in-process SPARQL endpoint impersonator: a
//! [`TcpListener`] on a loopback ephemeral port whose every response is
//! scheduled by a seeded SplitMix64 draw keyed on `(seed, connection,
//! request)`. The same seed therefore replays the exact same fault
//! sequence — connection refusal, accept-then-reset, slow-loris trickle,
//! mid-body truncation, malformed status lines and headers, oversized
//! bodies, and lying `Content-Length` framing — which is what lets
//! `cargo test` and the `federation/http_soak` bench leg drive
//! [`HttpTransport`](super::HttpTransport) through every failure class a
//! TCP peer can exhibit and byte-compare the outcome transcripts of two
//! runs.
//!
//! Healthy responses carry a deterministic body — an FNV-1a stamp of the
//! received query — so served rows are replayable too, and alternate
//! between `Content-Length` and chunked framing (also by seeded draw) so
//! connection reuse is exercised under both codings.
//!
//! The proxy is for tests and benches: one instance impersonates one
//! endpoint, and because the executor serializes same-endpoint calls, the
//! per-connection/per-request fault schedule is deterministic end to end.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use super::mix_chain;
use super::transport::fnv1a;

/// Every behavior the proxy can exhibit for one request slot.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum FaultClass {
    /// Valid 200 response (Content-Length or chunked framing by draw).
    Healthy,
    /// Connection closed without reading the request.
    Refuse,
    /// Request read, then the connection is closed with no response.
    Reset,
    /// Slow-loris: a valid-looking response trickled one byte at a time,
    /// slower than any deadline.
    Trickle,
    /// `Content-Length` promises more body than is sent before close.
    TruncateBody,
    /// Garbage where the status line should be.
    MalformedStatus,
    /// A header line with no colon.
    MalformedHeader,
    /// `Content-Length` far beyond any sane response cap.
    OversizedBody,
    /// `Content-Length` *shorter* than the bytes actually sent: the
    /// response parses, but stray bytes poison the keep-alive connection.
    WrongContentLength,
}

impl FaultClass {
    pub const ALL: [FaultClass; 9] = [
        FaultClass::Healthy,
        FaultClass::Refuse,
        FaultClass::Reset,
        FaultClass::Trickle,
        FaultClass::TruncateBody,
        FaultClass::MalformedStatus,
        FaultClass::MalformedHeader,
        FaultClass::OversizedBody,
        FaultClass::WrongContentLength,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Healthy => "healthy",
            FaultClass::Refuse => "refuse",
            FaultClass::Reset => "reset",
            FaultClass::Trickle => "trickle",
            FaultClass::TruncateBody => "truncate_body",
            FaultClass::MalformedStatus => "malformed_status",
            FaultClass::MalformedHeader => "malformed_header",
            FaultClass::OversizedBody => "oversized_body",
            FaultClass::WrongContentLength => "wrong_content_length",
        }
    }

    fn index(self) -> usize {
        FaultClass::ALL.iter().position(|&c| c == self).unwrap()
    }
}

/// Fault mix, in percent per request slot; the remainder is healthy.
/// Percentages are cumulative against a single `% 100` draw, so their sum
/// should stay ≤ 100.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ChaosSpec {
    pub refuse_pct: u8,
    pub reset_pct: u8,
    pub trickle_pct: u8,
    pub truncate_pct: u8,
    pub malformed_status_pct: u8,
    pub malformed_header_pct: u8,
    pub oversized_pct: u8,
    pub wrong_len_pct: u8,
    /// Delay between trickled bytes, in nanoseconds.
    pub trickle_step_nanos: u64,
    /// Declared `Content-Length` of an oversized response.
    pub oversized_bytes: usize,
    /// Alternate healthy responses between Content-Length and chunked
    /// framing (by seeded draw) instead of always using Content-Length.
    pub chunked_healthy: bool,
}

impl Default for ChaosSpec {
    /// All-healthy endpoint with chaos knobs at zero.
    fn default() -> ChaosSpec {
        ChaosSpec {
            refuse_pct: 0,
            reset_pct: 0,
            trickle_pct: 0,
            truncate_pct: 0,
            malformed_status_pct: 0,
            malformed_header_pct: 0,
            oversized_pct: 0,
            wrong_len_pct: 0,
            trickle_step_nanos: 20_000_000,
            oversized_bytes: 256 * 1024,
            chunked_healthy: true,
        }
    }
}

impl ChaosSpec {
    /// A spec injecting `class` on 100% of request slots — the
    /// fault-class → outcome mapping tests run one proxy per class.
    pub fn always(class: FaultClass) -> ChaosSpec {
        let mut s = ChaosSpec::default();
        match class {
            FaultClass::Healthy => {}
            FaultClass::Refuse => s.refuse_pct = 100,
            FaultClass::Reset => s.reset_pct = 100,
            FaultClass::Trickle => s.trickle_pct = 100,
            FaultClass::TruncateBody => s.truncate_pct = 100,
            FaultClass::MalformedStatus => s.malformed_status_pct = 100,
            FaultClass::MalformedHeader => s.malformed_header_pct = 100,
            FaultClass::OversizedBody => s.oversized_pct = 100,
            FaultClass::WrongContentLength => s.wrong_len_pct = 100,
        }
        s
    }

    /// The scheduled behavior of request slot `req` on connection `conn`.
    pub fn draw(&self, seed: u64, conn: u64, req: u64) -> FaultClass {
        let roll = (mix_chain(seed, &[conn, req, 0]) % 100) as u8;
        let classes = [
            (self.refuse_pct, FaultClass::Refuse),
            (self.reset_pct, FaultClass::Reset),
            (self.trickle_pct, FaultClass::Trickle),
            (self.truncate_pct, FaultClass::TruncateBody),
            (self.malformed_status_pct, FaultClass::MalformedStatus),
            (self.malformed_header_pct, FaultClass::MalformedHeader),
            (self.oversized_pct, FaultClass::OversizedBody),
            (self.wrong_len_pct, FaultClass::WrongContentLength),
        ];
        let mut acc = 0u8;
        for (pct, class) in classes {
            acc = acc.saturating_add(pct);
            if roll < acc {
                return class;
            }
        }
        FaultClass::Healthy
    }
}

#[derive(Default)]
struct ChaosCounters {
    injected: [AtomicU64; 9],
}

/// The running proxy. Dropping it shuts the listener down and joins every
/// connection handler.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ChaosCounters>,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Bind a loopback ephemeral port and start serving the seeded fault
    /// schedule.
    pub fn spawn(seed: u64, spec: ChaosSpec) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ChaosCounters::default());
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let handlers = Arc::clone(&handlers);
            thread::spawn(move || {
                let mut conn_id = 0u64;
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let conn = conn_id;
                    conn_id += 1;
                    let shutdown = Arc::clone(&shutdown);
                    let counters = Arc::clone(&counters);
                    let handle = thread::spawn(move || {
                        handle_connection(stream, conn, seed, spec, &shutdown, &counters);
                    });
                    handlers
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(handle);
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            shutdown,
            counters,
            accept: Some(accept),
            handlers,
        })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `host:port` string for [`HttpEndpoint`](super::HttpEndpoint).
    pub fn authority(&self) -> String {
        self.addr.to_string()
    }

    /// How many times `class` has been injected so far (scheduled on an
    /// accepted connection's request slot). Deterministic per seed.
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.counters.injected[class.index()].load(Ordering::Relaxed)
    }

    /// All per-class injection counts, in [`FaultClass::ALL`] order.
    pub fn injected_counts(&self) -> [u64; 9] {
        let mut out = [0u64; 9];
        for (slot, class) in out.iter_mut().zip(FaultClass::ALL) {
            *slot = self.injected(class);
        }
        out
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles =
            std::mem::take(&mut *self.handlers.lock().unwrap_or_else(PoisonError::into_inner));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Serve one connection: loop over request slots, drawing each slot's
/// fault before touching the socket so even never-sent requests keep the
/// schedule aligned across runs.
fn handle_connection(
    stream: TcpStream,
    conn: u64,
    seed: u64,
    spec: ChaosSpec,
    shutdown: &AtomicBool,
    counters: &ChaosCounters,
) {
    let _ = stream.set_nodelay(true);
    // Short poll interval: blocked reads wake up to observe shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut write_half = &stream;
    for req in 0u64.. {
        let fault = spec.draw(seed, conn, req);
        if fault == FaultClass::Refuse {
            // Slam the door before reading anything.
            counters.injected[fault.index()].fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Some(query) = read_request(&mut reader, shutdown) else {
            return;
        };
        counters.injected[fault.index()].fetch_add(1, Ordering::Relaxed);
        let body = format!("{{\"q\":\"{:016x}\"}}", fnv1a(&query));
        let keep_going = match fault {
            FaultClass::Refuse => unreachable!("handled before the read"),
            FaultClass::Healthy => {
                let chunked = spec.chunked_healthy && mix_chain(seed, &[conn, req, 1]) & 1 == 1;
                let resp = if chunked {
                    let split = body.len() / 2;
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: application/sparql-results+json\r\n\
                         Transfer-Encoding: chunked\r\n\r\n{:x}\r\n{}\r\n{:x}\r\n{}\r\n0\r\n\r\n",
                        split,
                        &body[..split],
                        body.len() - split,
                        &body[split..]
                    )
                } else {
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: application/sparql-results+json\r\n\
                         Content-Length: {}\r\n\r\n{}",
                        body.len(),
                        body
                    )
                };
                write_half.write_all(resp.as_bytes()).is_ok()
            }
            FaultClass::Reset => false,
            FaultClass::Trickle => {
                trickle(write_half, &spec, shutdown);
                false
            }
            FaultClass::TruncateBody => {
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{}",
                    body.len() + 32,
                    body
                );
                let _ = write_half.write_all(resp.as_bytes());
                false
            }
            FaultClass::MalformedStatus => {
                let _ = write_half.write_all(b"HTP/banana 200 NOPE\r\n\r\n");
                false
            }
            FaultClass::MalformedHeader => {
                let _ =
                    write_half.write_all(b"HTTP/1.1 200 OK\r\nthis header has no colon\r\n\r\n");
                false
            }
            FaultClass::OversizedBody => {
                let head = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
                    spec.oversized_bytes
                );
                // Stream filler until done or the client hangs up in
                // disgust (its body cap makes that the expected path).
                let mut sent_head = write_half.write_all(head.as_bytes()).is_ok();
                let filler = [b'z'; 4096];
                let mut remaining = spec.oversized_bytes;
                while sent_head && remaining > 0 && !shutdown.load(Ordering::Relaxed) {
                    let n = remaining.min(filler.len());
                    if write_half.write_all(&filler[..n]).is_err() {
                        sent_head = false;
                    }
                    remaining -= n;
                }
                false
            }
            FaultClass::WrongContentLength => {
                // Understate the length by 8 in a single write: the client
                // sees a valid (short) body plus stray bytes that must
                // disqualify this connection from the keep-alive pool.
                let declared = body.len().saturating_sub(8);
                let resp = format!("HTTP/1.1 200 OK\r\nContent-Length: {declared}\r\n\r\n{body}");
                write_half.write_all(resp.as_bytes()).is_ok()
            }
        };
        if !keep_going {
            return;
        }
    }
}

/// Trickle a response one byte at a time, far slower than any client
/// deadline, until the client gives up (write error) or shutdown.
fn trickle(mut w: &TcpStream, spec: &ChaosSpec, shutdown: &AtomicBool) {
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Length: 4096\r\n\r\n{}",
        "x".repeat(64)
    );
    let step = Duration::from_nanos(spec.trickle_step_nanos.max(1));
    for chunk in resp.as_bytes().chunks(1) {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        if w.write_all(chunk).and_then(|()| w.flush()).is_err() {
            return;
        }
        thread::sleep(step);
    }
    // Keep the socket open and silent afterwards; the client's deadline
    // reader is responsible for cutting the cord.
}

/// Read one HTTP request (headers + Content-Length body) and return the
/// body. `None` on clean close, broken connection, or shutdown.
fn read_request(reader: &mut BufReader<TcpStream>, shutdown: &AtomicBool) -> Option<String> {
    let mut line = Vec::new();
    let mut content_length = 0usize;
    let mut saw_any = false;
    loop {
        if !read_line(reader, shutdown, &mut line)? {
            return None;
        }
        if line.is_empty() {
            if !saw_any {
                return None;
            }
            break;
        }
        saw_any = true;
        let lower: Vec<u8> = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix(b"content-length:") {
            let v: &[u8] = v;
            let digits: String = v
                .iter()
                .filter(|b| b.is_ascii_digit())
                .map(|&b| b as char)
                .collect();
            content_length = digits.parse().ok()?;
            // A client pathologically huge request is not this server's
            // problem to buffer.
            if content_length > 1 << 20 {
                return None;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    if !read_exact_tolerant(reader, shutdown, &mut body)? {
        return None;
    }
    String::from_utf8(body).ok()
}

/// Read a CRLF line, retrying through poll timeouts until shutdown.
/// `Some(true)` = line in `out`; `Some(false)` = EOF/shutdown; `None` =
/// hard error.
fn read_line(
    reader: &mut BufReader<TcpStream>,
    shutdown: &AtomicBool,
    out: &mut Vec<u8>,
) -> Option<bool> {
    out.clear();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Some(false);
        }
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return None,
        };
        if buf.is_empty() {
            return Some(false);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                out.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if out.last() == Some(&b'\r') {
                    out.pop();
                }
                return Some(true);
            }
            None => {
                if out.len() + buf.len() > 64 * 1024 {
                    return None;
                }
                out.extend_from_slice(buf);
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

fn read_exact_tolerant(
    reader: &mut BufReader<TcpStream>,
    shutdown: &AtomicBool,
    buf: &mut [u8],
) -> Option<bool> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if shutdown.load(Ordering::Relaxed) {
            return Some(false);
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Some(false),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => return None,
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::super::{read_response, HttpLimits};
    use super::*;

    #[test]
    fn draw_is_deterministic_and_tracks_the_mix() {
        let spec = ChaosSpec {
            refuse_pct: 10,
            reset_pct: 10,
            trickle_pct: 5,
            ..ChaosSpec::default()
        };
        let mut tallies = [0u32; 9];
        for conn in 0..50u64 {
            for req in 0..20u64 {
                let a = spec.draw(42, conn, req);
                let b = spec.draw(42, conn, req);
                assert_eq!(a, b);
                tallies[a.index()] += 1;
            }
        }
        let total = 1000u32;
        let refusals = tallies[FaultClass::Refuse.index()];
        let healthy = tallies[FaultClass::Healthy.index()];
        assert!(
            (50..=150).contains(&refusals),
            "{refusals} refusals in {total}"
        );
        assert!(healthy > 600, "{healthy} healthy in {total}");
        // A different seed reshuffles the schedule.
        let diverged = (0..100u64).any(|req| spec.draw(42, 0, req) != spec.draw(43, 0, req));
        assert!(diverged);
    }

    #[test]
    fn healthy_proxy_answers_a_raw_post_deterministically() {
        let proxy = ChaosProxy::spawn(7, ChaosSpec::default()).unwrap();
        let query = "SELECT * WHERE { ?s ?p ?o }";
        let fetch = || {
            let stream = TcpStream::connect(proxy.addr()).unwrap();
            let req = format!(
                "POST /sparql HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{}",
                proxy.authority(),
                query.len(),
                query
            );
            (&stream).write_all(req.as_bytes()).unwrap();
            let mut reader = BufReader::new(stream);
            read_response(&mut reader, &HttpLimits::default()).unwrap()
        };
        let a = fetch();
        let b = fetch();
        assert_eq!(a.status, 200);
        assert_eq!(a.body, b.body, "healthy bodies must be replayable");
        assert_eq!(
            proxy.injected(FaultClass::Healthy),
            2,
            "both requests observed"
        );
        // Dropping the proxy joins its threads without hanging.
        drop(proxy);
    }

    #[test]
    fn refusing_proxy_counts_injections_and_closes_immediately() {
        let proxy = ChaosProxy::spawn(9, ChaosSpec::always(FaultClass::Refuse)).unwrap();
        let stream = TcpStream::connect(proxy.addr()).unwrap();
        let mut buf = [0u8; 8];
        // The peer closes without reading: our read sees EOF promptly.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let n = (&stream).read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "refused connection must yield EOF");
        assert_eq!(proxy.injected(FaultClass::Refuse), 1);
    }
}
