//! Concurrent federated execution with deadlines, retries, and breakers.
//!
//! [`FederatedExecutor::execute`] dispatches one [`EndpointPlan`] per
//! endpoint across a hand-rolled `thread::scope` pool (no async runtime):
//! workers claim endpoints off an atomic cursor, so up to
//! [`ExecutorConfig::n_threads`] subqueries are in flight at once.
//!
//! Each endpoint call runs the full resilience ladder on a **virtual
//! clock** (see the module docs on [`super`]): the breaker is consulted,
//! then attempts alternate with seeded jittered backoff until the reply is
//! served, the deadline budget runs out, retries exhaust, or the breaker
//! trips mid-retry. The remaining budget is propagated into every
//! [`TransportRequest`] so well-behaved transports can give up early. The
//! virtual clock makes the deadline contract exact: an execution's
//! recorded elapsed time never exceeds [`ExecutorConfig::deadline_nanos`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;

use super::{
    mix_chain, BackoffPolicy, BreakerConfig, BreakerState, CircuitBreaker, EndpointOutcome,
    EndpointPlan, EndpointReport, EndpointTransport, FederatedResult, TransportError,
    TransportReply, TransportRequest,
};

/// Executor tuning knobs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ExecutorConfig {
    /// Worker threads for concurrent endpoint dispatch (clamped to the
    /// number of endpoints in the plan, min 1).
    pub n_threads: usize,
    /// Overall per-endpoint deadline for one execution, in virtual
    /// nanoseconds; attempts and backoff must fit inside it.
    pub deadline_nanos: u64,
    /// Virtual time that passes on an endpoint between successive
    /// executions (request inter-arrival). This is what lets an *open*
    /// breaker's cooldown elapse — fast-failed calls consume no attempt
    /// time, but the stream of arrivals still moves the clock.
    pub inter_request_nanos: u64,
    pub backoff: BackoffPolicy,
    pub breaker: BreakerConfig,
    /// Seed for backoff jitter. Identical seeds (with an identical
    /// transport schedule) replay executions bit-identically.
    pub seed: u64,
}

impl Default for ExecutorConfig {
    fn default() -> ExecutorConfig {
        ExecutorConfig {
            n_threads: 4,
            deadline_nanos: 200_000_000,
            inter_request_nanos: 5_000_000,
            backoff: BackoffPolicy::default(),
            breaker: BreakerConfig::default(),
            seed: 0x5eed,
        }
    }
}

/// Per-endpoint mutable state, persistent across executions so breakers
/// and fault history carry over a whole query stream.
struct EndpointRuntime {
    breaker: CircuitBreaker,
    /// The endpoint's virtual clock, in nanoseconds.
    clock: u64,
    /// Executions issued to this endpoint (indexes the jitter stream).
    calls: u64,
}

/// Dispatches planned subqueries concurrently and degrades gracefully.
/// `&self`-only on the hot path: endpoint runtimes sit behind per-endpoint
/// locks, and distinct endpoints never contend.
pub struct FederatedExecutor<T> {
    transport: T,
    config: ExecutorConfig,
    runtimes: Vec<Mutex<EndpointRuntime>>,
    /// Transport panics contained at the pool boundary (see
    /// [`FederatedExecutor::caught_panics`]).
    panics: AtomicU64,
}

impl<T: EndpointTransport> FederatedExecutor<T> {
    /// `n_endpoints` must cover every [`EndpointId`](super::EndpointId)
    /// the planner can emit (ids are dense registration indexes).
    pub fn new(transport: T, n_endpoints: usize, config: ExecutorConfig) -> FederatedExecutor<T> {
        let runtimes = (0..n_endpoints)
            .map(|_| {
                Mutex::new(EndpointRuntime {
                    breaker: CircuitBreaker::new(config.breaker),
                    clock: 0,
                    calls: 0,
                })
            })
            .collect();
        FederatedExecutor {
            transport,
            config,
            runtimes,
            panics: AtomicU64::new(0),
        }
    }

    pub fn transport(&self) -> &T {
        &self.transport
    }

    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Transport panics caught at the pool boundary and degraded to
    /// structured outcomes instead of poisoning the endpoint's runtime
    /// lock. A real transport should never panic, so the chaos soak gates
    /// this at zero.
    pub fn caught_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// An endpoint's runtime lock, recovering from poisoning: the state a
    /// worker could have left mid-flight (clock, breaker window) is always
    /// internally consistent, so a panic elsewhere in a lock holder must
    /// not condemn every later request to this endpoint.
    fn lock_runtime(&self, e: usize) -> MutexGuard<'_, EndpointRuntime> {
        self.runtimes[e]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Current breaker state per endpoint — the soak gate's convergence
    /// signal.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        (0..self.runtimes.len())
            .map(|e| self.lock_runtime(e).breaker.state())
            .collect()
    }

    /// Soonest half-open ETA across all *open* breakers, in virtual
    /// nanoseconds from each endpoint's own clock: how long until at least
    /// one tripped endpoint would admit a probe again. `None` when no
    /// breaker is open. This is what an HTTP front end converts into a
    /// `Retry-After` when a whole execution degrades to breaker fast-fails.
    pub fn soonest_half_open_nanos(&self) -> Option<u64> {
        (0..self.runtimes.len())
            .filter_map(|e| {
                let rt = self.lock_runtime(e);
                rt.breaker.cooldown_remaining(rt.clock)
            })
            .min()
    }

    /// Execute every planned subquery, concurrently, and return one report
    /// per endpoint in plan order. Never panics on endpoint failure — every
    /// fault degrades to a structured [`EndpointOutcome`].
    pub fn execute(&self, plans: &[EndpointPlan]) -> FederatedResult {
        if plans.is_empty() {
            return FederatedResult::default();
        }
        let n_workers = self.config.n_threads.clamp(1, plans.len());
        let slots: Vec<Mutex<Option<EndpointReport>>> =
            plans.iter().map(|_| Mutex::new(None)).collect();
        if n_workers == 1 {
            for (slot, plan) in slots.iter().zip(plans) {
                *slot.lock().unwrap() = Some(self.run_endpoint(plan));
            }
        } else {
            let next = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..n_workers {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= plans.len() {
                            break;
                        }
                        let report = self.run_endpoint(&plans[i]);
                        *slots[i].lock().unwrap() = Some(report);
                    });
                }
            });
        }
        FederatedResult {
            reports: slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .unwrap()
                        .expect("every claimed slot is filled before scope exit")
                })
                .collect(),
        }
    }

    /// One endpoint's full resilience ladder. Holds the endpoint's runtime
    /// lock for the duration — calls to the *same* endpoint serialize,
    /// which is exactly what keeps its breaker window, virtual clock, and
    /// fault stream deterministic.
    fn run_endpoint(&self, plan: &EndpointPlan) -> EndpointReport {
        let e = plan.endpoint.0 as usize;
        let mut rt = self.lock_runtime(e);
        rt.clock = rt.clock.saturating_add(self.config.inter_request_nanos);
        let call = rt.calls;
        rt.calls += 1;
        let start = rt.clock;
        let deadline = start.saturating_add(self.config.deadline_nanos);
        let mut attempts = 0u32;
        let mut rows = None;
        let outcome = if !rt.breaker.allow(start) {
            EndpointOutcome::CircuitOpen { attempts: 0 }
        } else {
            loop {
                let budget = deadline.saturating_sub(rt.clock);
                if budget == 0 {
                    // Never dispatched: if `allow` above claimed a
                    // half-open probe slot, release it or the endpoint
                    // wedges in fast-fail forever.
                    rt.breaker.abandon_probe();
                    break EndpointOutcome::TimedOut {
                        attempts,
                        elapsed_nanos: rt.clock - start,
                    };
                }
                attempts += 1;
                // The pool boundary: a panicking transport must not poison
                // this endpoint's runtime lock and condemn every later
                // request. Contain it and degrade to a transient failure,
                // which the normal retry/breaker ladder absorbs.
                let reply = catch_unwind(AssertUnwindSafe(|| {
                    self.transport.execute(&TransportRequest {
                        endpoint: plan.endpoint,
                        query: &plan.subquery,
                        attempt: attempts,
                        budget_nanos: budget,
                    })
                }))
                .unwrap_or_else(|_| {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    TransportReply {
                        latency_nanos: 0,
                        payload: Err(TransportError::Transient),
                    }
                });
                if reply.latency_nanos >= budget {
                    // The attempt stalled past the deadline: the caller
                    // stops waiting at the deadline, not at the reply.
                    rt.clock = deadline;
                    rt.breaker.record(deadline, false);
                    break EndpointOutcome::TimedOut {
                        attempts,
                        elapsed_nanos: deadline - start,
                    };
                }
                rt.clock += reply.latency_nanos;
                let now = rt.clock;
                match reply.payload {
                    Ok(r) => {
                        rt.breaker.record(now, true);
                        rows = Some(r);
                        break EndpointOutcome::Served {
                            attempts,
                            latency_nanos: rt.clock - start,
                        };
                    }
                    Err(err) => {
                        rt.breaker.record(now, false);
                        let permanent = err.is_permanent();
                        if permanent || attempts > self.config.backoff.max_retries {
                            break EndpointOutcome::ExhaustedRetries {
                                attempts,
                                permanent,
                            };
                        }
                        let draw = mix_chain(self.config.seed, &[e as u64, call, attempts as u64]);
                        let delay = self.config.backoff.delay_nanos(attempts, draw);
                        if delay >= deadline.saturating_sub(rt.clock) {
                            rt.clock = deadline;
                            break EndpointOutcome::TimedOut {
                                attempts,
                                elapsed_nanos: deadline - start,
                            };
                        }
                        rt.clock += delay;
                        let resumed = rt.clock;
                        // The breaker may have tripped on this very
                        // failure: stop burning budget on a known-bad peer.
                        if !rt.breaker.allow(resumed) {
                            break EndpointOutcome::CircuitOpen { attempts };
                        }
                    }
                }
            }
        };
        EndpointReport {
            endpoint: plan.endpoint,
            outcome,
            rows,
            breaker: rt.breaker.state(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{EndpointId, FaultSpec, MockTransport};
    use super::*;
    use crate::term::Term;

    fn plan_for(e: u32) -> EndpointPlan {
        EndpointPlan {
            endpoint: EndpointId(e),
            endpoint_term: Term::iri(crate::term::Symbol(e)),
            subquery: format!("SELECT * WHERE {{ ?s <http://ep{e}/p> ?o . }}"),
            selectivity: 1,
            n_patterns: 1,
        }
    }

    fn executor(specs: Vec<FaultSpec>, config: ExecutorConfig) -> FederatedExecutor<MockTransport> {
        let n = specs.len();
        FederatedExecutor::new(MockTransport::new(config.seed, specs), n, config)
    }

    #[test]
    fn healthy_endpoints_all_serve_within_deadline() {
        let cfg = ExecutorConfig::default();
        let ex = executor(vec![FaultSpec::default(); 4], cfg);
        let plans: Vec<_> = (0..4).map(plan_for).collect();
        let result = ex.execute(&plans);
        assert!(result.is_complete());
        for r in &result.reports {
            match r.outcome {
                EndpointOutcome::Served {
                    attempts,
                    latency_nanos,
                } => {
                    assert_eq!(attempts, 1);
                    assert!(latency_nanos <= cfg.deadline_nanos);
                    assert!(r.rows.is_some());
                }
                other => panic!("expected Served, got {other:?}"),
            }
            assert_eq!(r.breaker, BreakerState::Closed);
        }
    }

    #[test]
    fn identical_seeds_replay_bit_identically() {
        let cfg = ExecutorConfig {
            seed: 1234,
            ..ExecutorConfig::default()
        };
        let specs = || {
            vec![
                FaultSpec::transient(30),
                FaultSpec::transient(60),
                FaultSpec {
                    timeout_pct: 20,
                    ..FaultSpec::transient(20)
                },
                FaultSpec {
                    flap_period: 7,
                    ..FaultSpec::default()
                },
            ]
        };
        let run = || {
            let ex = executor(specs(), cfg);
            let plans: Vec<_> = (0..4).map(plan_for).collect();
            let mut transcript = String::new();
            for _ in 0..50 {
                transcript.push_str(&ex.execute(&plans).canonical_text());
            }
            (transcript, ex.breaker_states())
        };
        let (ta, ba) = run();
        let (tb, bb) = run();
        assert_eq!(ta, tb, "fault replay diverged");
        assert_eq!(ba, bb, "breaker states diverged");
    }

    #[test]
    fn permanent_failure_degrades_to_partial_results() {
        let ex = executor(
            vec![
                FaultSpec::default(),
                FaultSpec {
                    permanent_pct: 100,
                    ..FaultSpec::default()
                },
            ],
            ExecutorConfig::default(),
        );
        let result = ex.execute(&[plan_for(0), plan_for(1)]);
        assert_eq!(result.served_count(), 1);
        assert!(result.reports[0].outcome.is_served());
        assert_eq!(
            result.reports[1].outcome,
            EndpointOutcome::ExhaustedRetries {
                attempts: 1,
                permanent: true
            },
            "permanent errors must not be retried"
        );
        assert_eq!(result.reports[1].rows, None);
    }

    #[test]
    fn stalled_endpoint_times_out_exactly_at_the_deadline() {
        let cfg = ExecutorConfig::default();
        let ex = executor(
            vec![FaultSpec {
                timeout_pct: 100,
                ..FaultSpec::default()
            }],
            cfg,
        );
        let result = ex.execute(&[plan_for(0)]);
        match result.reports[0].outcome {
            EndpointOutcome::TimedOut {
                attempts,
                elapsed_nanos,
            } => {
                assert_eq!(attempts, 1);
                assert_eq!(elapsed_nanos, cfg.deadline_nanos);
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    #[test]
    fn transient_failures_retry_and_elapsed_never_exceeds_deadline() {
        let cfg = ExecutorConfig {
            seed: 77,
            ..ExecutorConfig::default()
        };
        let ex = executor(vec![FaultSpec::transient(50)], cfg);
        let mut retried = false;
        for _ in 0..100 {
            let result = ex.execute(&[plan_for(0)]);
            let r = &result.reports[0];
            match r.outcome {
                EndpointOutcome::Served {
                    attempts,
                    latency_nanos,
                } => {
                    retried |= attempts > 1;
                    assert!(latency_nanos <= cfg.deadline_nanos);
                }
                EndpointOutcome::TimedOut { elapsed_nanos, .. } => {
                    assert!(elapsed_nanos <= cfg.deadline_nanos);
                }
                EndpointOutcome::ExhaustedRetries { attempts, .. } => {
                    assert_eq!(attempts, cfg.backoff.max_retries + 1);
                }
                EndpointOutcome::CircuitOpen { .. } => {}
            }
        }
        assert!(
            retried,
            "50% transient faults should trigger at least one retry"
        );
    }

    #[test]
    fn breaker_opens_fails_fast_and_recovers_via_half_open() {
        // Flapping endpoint: up for 6 requests, down for 6, up for 6, ...
        // The cooldown (4ms) is shorter than the request inter-arrival
        // (5ms), so an open breaker probes on every subsequent execution
        // and can catch the next up-window.
        let cfg = ExecutorConfig {
            breaker: BreakerConfig {
                window: 4,
                min_samples: 2,
                failure_rate_pct: 50,
                cooldown_nanos: 4_000_000,
                half_open_successes: 1,
            },
            ..ExecutorConfig::default()
        };
        let ex = executor(
            vec![FaultSpec {
                flap_period: 6,
                ..FaultSpec::default()
            }],
            cfg,
        );
        let mut saw = (false, false, false); // (open fast-fail, recovery, served after recovery)
        let mut was_open = false;
        for _ in 0..60 {
            let result = ex.execute(&[plan_for(0)]);
            let r = &result.reports[0];
            if matches!(r.outcome, EndpointOutcome::CircuitOpen { .. }) {
                saw.0 = true;
                was_open = true;
            } else if was_open && r.outcome.is_served() {
                saw.2 = true;
            }
            if was_open && r.breaker == BreakerState::Closed {
                saw.1 = true;
            }
        }
        assert!(saw.0, "breaker never fast-failed");
        assert!(saw.1, "breaker never closed again after opening");
        assert!(saw.2, "no request served after recovery");
    }

    #[test]
    fn panicking_transport_degrades_without_poisoning_the_endpoint() {
        use std::sync::atomic::AtomicU64;

        /// Panics on the first `panic_for` calls, healthy afterwards.
        struct PanickingTransport {
            panic_for: u64,
            calls: AtomicU64,
        }
        impl EndpointTransport for PanickingTransport {
            fn execute(&self, req: &TransportRequest<'_>) -> TransportReply {
                if self.calls.fetch_add(1, Ordering::Relaxed) < self.panic_for {
                    panic!("transport bug");
                }
                TransportReply {
                    latency_nanos: 1_000_000,
                    payload: Ok(format!("rows for {}", req.query.len())),
                }
            }
        }

        let cfg = ExecutorConfig::default();
        // Enough panics to exhaust the first execution's retries entirely.
        let ex = FederatedExecutor::new(
            PanickingTransport {
                panic_for: (cfg.backoff.max_retries + 1) as u64,
                calls: AtomicU64::new(0),
            },
            1,
            cfg,
        );
        let result = ex.execute(&[plan_for(0)]);
        assert_eq!(
            result.reports[0].outcome,
            EndpointOutcome::ExhaustedRetries {
                attempts: cfg.backoff.max_retries + 1,
                permanent: false,
            },
            "panics must degrade to a structured transient outcome"
        );
        assert_eq!(ex.caught_panics(), (cfg.backoff.max_retries + 1) as u64);
        // The endpoint's mutex survived: the next execution over the
        // now-healthy transport serves normally.
        let result = ex.execute(&[plan_for(0)]);
        assert!(
            result.reports[0].outcome.is_served(),
            "endpoint unusable after contained panics: {:?}",
            result.reports[0].outcome
        );
    }

    #[test]
    fn empty_plan_list_is_a_clean_noop() {
        let ex = executor(vec![], ExecutorConfig::default());
        let result = ex.execute(&[]);
        assert!(result.reports.is_empty());
        assert!(result.is_complete());
    }
}
