//! Bounded retries with seeded, jittered exponential backoff.

/// Retry/backoff policy applied per endpoint call by the
/// [`FederatedExecutor`](super::FederatedExecutor).
///
/// The delay before retry `k` (1-based) is exponential —
/// `base_nanos << (k - 1)`, clamped to `max_nanos` — with *equal jitter*:
/// half the clamped delay is kept fixed and the other half is drawn
/// uniformly from a seeded stream, so retries from independent callers
/// decorrelate (no thundering herd) while identical seeds replay the exact
/// same schedule.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in virtual nanoseconds.
    pub base_nanos: u64,
    /// Upper clamp on any single delay — also the "backoff quantum" the
    /// deadline contract is stated in: an execution never overshoots its
    /// deadline by more than one `max_nanos`.
    pub max_nanos: u64,
    /// Retries permitted after the initial attempt (0 = no retries).
    pub max_retries: u32,
}

impl BackoffPolicy {
    /// A policy that never retries (and thus never sleeps).
    pub fn none() -> BackoffPolicy {
        BackoffPolicy {
            base_nanos: 0,
            max_nanos: 0,
            max_retries: 0,
        }
    }

    /// Jittered delay before retry `retry` (1-based). `draw` is one 64-bit
    /// value from the caller's seeded stream; passing the same draw yields
    /// the same delay.
    pub fn delay_nanos(&self, retry: u32, draw: u64) -> u64 {
        if self.base_nanos == 0 {
            return 0;
        }
        let shift = (retry.saturating_sub(1)).min(32);
        let raw = self
            .base_nanos
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.max_nanos.max(self.base_nanos));
        // Equal jitter: fixed half plus a uniform draw over the other half.
        let half = raw / 2;
        half + draw % (raw - half + 1)
    }
}

impl Default for BackoffPolicy {
    /// 2ms base, 50ms clamp, 3 retries — sized for the mock transport's
    /// virtual-time scale.
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base_nanos: 2_000_000,
            max_nanos: 50_000_000,
            max_retries: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federate::mix_chain;

    #[test]
    fn delays_grow_exponentially_and_clamp() {
        let p = BackoffPolicy {
            base_nanos: 1_000,
            max_nanos: 8_000,
            max_retries: 10,
        };
        // Draw 0 gives the fixed lower half: raw/2.
        assert_eq!(p.delay_nanos(1, 0), 500);
        assert_eq!(p.delay_nanos(2, 0), 1_000);
        assert_eq!(p.delay_nanos(3, 0), 2_000);
        // Clamped at max from retry 4 on.
        assert_eq!(p.delay_nanos(4, 0), 4_000);
        assert_eq!(p.delay_nanos(9, 0), 4_000);
        // Jitter stays within [raw/2, raw].
        for retry in 1..6 {
            for salt in 0..50u64 {
                let d = p.delay_nanos(retry, mix_chain(7, &[retry as u64, salt]));
                let raw = (1_000u64 << (retry - 1)).min(8_000);
                assert!(
                    d >= raw / 2 && d <= raw,
                    "retry {retry}: {d} not in [{}, {raw}]",
                    raw / 2
                );
            }
        }
    }

    #[test]
    fn same_draw_same_delay() {
        let p = BackoffPolicy::default();
        let draw = mix_chain(42, &[1, 2, 3]);
        assert_eq!(p.delay_nanos(2, draw), p.delay_nanos(2, draw));
    }

    #[test]
    fn none_policy_never_sleeps() {
        let p = BackoffPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.delay_nanos(1, u64::MAX), 0);
    }
}
