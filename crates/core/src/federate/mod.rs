//! Fault-tolerant federated SERVICE dispatch.
//!
//! The EDBT'10 rewriting model exists to integrate data *across sources*;
//! this module turns N per-endpoint [`AlignmentStore`]s into a dispatch
//! plan and executes it against unreliable peers without falling over:
//!
//! 1. **Partition** ([`FederationPlanner::plan`]): each top-level triple
//!    pattern of a parsed query is assigned to the endpoint whose rules can
//!    rewrite it. The assignment reads
//!    [`AlignmentStore::predicate_candidates`] — an O(1) slice lookup
//!    against the PR 4 dense index — and the candidate *count* doubles as a
//!    statistics-free selectivity signal in the spirit of Yannakis et al.:
//!    endpoints are dispatched most-selective-first (smallest expected
//!    expansion), ties broken by endpoint id. Patterns no endpoint can
//!    rewrite, and all non-conjunctive structure (OPTIONAL, UNION, FILTER,
//!    nested groups), stay in a local residual partition.
//! 2. **Rewrite + render**: each partition is rewritten against its
//!    endpoint's own rules and rendered both as a standalone subquery (the
//!    text shipped over the transport) and as a
//!    [`PatternNode::Service`]-annotated block of the combined federated
//!    query.
//! 3. **Execute** ([`FederatedExecutor`]): subqueries are dispatched
//!    concurrently on a hand-rolled thread pool over a pluggable
//!    [`EndpointTransport`]. Every endpoint call is wrapped in the full
//!    resilience kit — a per-request deadline with budget propagation into
//!    the transport, bounded retries with seeded jittered exponential
//!    backoff ([`BackoffPolicy`]), and a per-endpoint
//!    closed/open/half-open [`CircuitBreaker`] — and degrades to a
//!    deterministic [`FederatedResult`] carrying a per-endpoint
//!    [`EndpointOutcome`] (served / timed-out / circuit-open /
//!    exhausted-retries), so callers always get the partial results that
//!    *were* obtainable plus structured error annotations.
//!
//! # Determinism
//!
//! Timing runs on a **virtual clock**: latencies come from the transport's
//! reply (the [`MockTransport`] draws them from a seeded stream), backoff
//! delays and fault schedules derive from seed + endpoint + call + attempt
//! counters, and deadline/breaker arithmetic uses only those virtual
//! nanoseconds. Identical seeds therefore replay failure scenarios
//! bit-identically — [`FederatedResult`]s compare equal across runs — while
//! real threads still execute endpoints concurrently.

mod backoff;
mod breaker;
pub mod chaos;
mod executor;
mod http;
mod transport;

pub use backoff::BackoffPolicy;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use chaos::{ChaosProxy, ChaosSpec, FaultClass};
pub use executor::{ExecutorConfig, FederatedExecutor};
pub use http::{
    read_response, HttpConfig, HttpEndpoint, HttpError, HttpLimits, HttpResponse, HttpTransport,
};
pub use transport::{
    classify_http_status, classify_io_error, EndpointTransport, FaultSpec, MockTransport,
    TransportError, TransportReply, TransportRequest,
};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::align::AlignmentStore;
use crate::cache::{CacheConfig, QueryFingerprint, RewriteCache};
use crate::interner::Resolve;
use crate::pattern::{
    render_query_into, Bgp, ChainBuilder, ExprNode, GroupPattern, PatternNode, Query, QueryRef,
    SelectList, TriplePattern,
};
use crate::rewriter::{IndexedRewriter, RewriteError, RewriteLimits, RewriteScratch, Rewriter};
use crate::term::Term;

/// Index of a federation member, assigned by registration order on the
/// [`FederationPlanner`] and shared by the executor and transport layers.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EndpointId(pub u32);

/// SplitMix64 finalizer: the one deterministic mixing primitive every
/// federate component derives its randomness from. Stateless, so seeded
/// streams index by (seed, endpoint, call, attempt) without shared RNG
/// state — concurrency cannot perturb replay.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Chain-absorb `parts` into one 64-bit draw. Public because every seeded
/// schedule in the workspace — the chaos proxy, the bench harness's chaos
/// *client*, and the mutation fuzzes — derives its draws from this one
/// primitive, keyed by (seed, index...) tuples; stateless mixing is what
/// makes replays byte-identical under concurrency.
#[inline]
pub fn mix_chain(seed: u64, parts: &[u64]) -> u64 {
    let mut h = mix64(seed ^ 0x9e37_79b9_7f4a_7c15);
    for &p in parts {
        h = mix64(h ^ p);
    }
    h
}

/// How one endpoint's call ended. Carried per endpoint in a
/// [`FederatedResult`] so partial results arrive with structured error
/// annotations instead of an all-or-nothing failure.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EndpointOutcome {
    /// The subquery was answered. `latency_nanos` is the endpoint's total
    /// virtual elapsed time including failed attempts and backoff.
    Served { attempts: u32, latency_nanos: u64 },
    /// The deadline budget ran out (mid-attempt or during backoff).
    TimedOut { attempts: u32, elapsed_nanos: u64 },
    /// The endpoint's circuit breaker was open: no request was (or no
    /// further requests were) sent.
    CircuitOpen { attempts: u32 },
    /// Every permitted attempt failed. `permanent` is true when the last
    /// error was non-retryable (retries were pointless, not merely used up).
    ExhaustedRetries { attempts: u32, permanent: bool },
}

impl EndpointOutcome {
    #[inline]
    pub fn is_served(&self) -> bool {
        matches!(self, EndpointOutcome::Served { .. })
    }
}

/// Per-endpoint slice of a [`FederatedResult`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EndpointReport {
    pub endpoint: EndpointId,
    pub outcome: EndpointOutcome,
    /// Response payload when served, `None` otherwise.
    pub rows: Option<String>,
    /// Breaker state observed after this call completed.
    pub breaker: BreakerState,
}

/// Deterministic result of one federated execution: one report per
/// dispatched endpoint, in plan (dispatch) order. Equal seeds produce equal
/// results, bit for bit — asserted by tests and the bench soak gate.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FederatedResult {
    pub reports: Vec<EndpointReport>,
}

impl FederatedResult {
    /// Number of endpoints that answered.
    pub fn served_count(&self) -> usize {
        self.reports
            .iter()
            .filter(|r| r.outcome.is_served())
            .count()
    }

    /// True when every endpoint answered (no degradation).
    pub fn is_complete(&self) -> bool {
        self.served_count() == self.reports.len()
    }

    /// Canonical textual form, stable across processes — what the
    /// determinism gates byte-compare.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        for r in &self.reports {
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "ep={} outcome={:?} breaker={:?} rows={}",
                r.endpoint.0,
                r.outcome,
                r.breaker,
                r.rows.as_deref().unwrap_or("-")
            );
        }
        out
    }
}

/// One endpoint's share of a [`FederationPlan`], in dispatch order.
#[derive(Clone, Debug)]
pub struct EndpointPlan {
    pub endpoint: EndpointId,
    /// The endpoint's interned IRI term (as registered).
    pub endpoint_term: Term,
    /// Rendered `SELECT * WHERE { ... }` text of the rewritten partition —
    /// what the transport ships.
    pub subquery: String,
    /// Summed candidate counts of the partition's patterns: the
    /// statistics-free selectivity signal (lower dispatches first).
    pub selectivity: u64,
    /// Number of source patterns routed to this endpoint.
    pub n_patterns: usize,
}

/// Output of [`FederationPlanner::plan`].
#[derive(Clone, Debug)]
pub struct FederationPlan {
    /// The combined federated query: one `SERVICE <endpoint> { ... }` block
    /// per dispatched endpoint (in dispatch order, rewritten against that
    /// endpoint's rules) followed by the local residual, under the original
    /// projection.
    pub annotated: Query,
    /// Per-endpoint subqueries in dispatch order — feed these to
    /// [`FederatedExecutor::execute`].
    pub endpoints: Vec<EndpointPlan>,
    /// Number of triple patterns no endpoint could rewrite (kept local).
    pub n_residual_patterns: usize,
}

/// Output of [`FederationPlanner::plan_for_dispatch`]: just what the
/// executor consumes, with no SERVICE-annotated combined query — the
/// variant the partition cache can serve without rewriting at all.
#[derive(Clone, Debug)]
pub struct DispatchPlan {
    /// Per-endpoint subqueries in dispatch order.
    pub endpoints: Vec<EndpointPlan>,
    /// Number of triple patterns no endpoint could rewrite (kept local).
    pub n_residual_patterns: usize,
}

struct PlannerEndpoint {
    term: Term,
    store: Arc<AlignmentStore>,
    /// Bumped on every store replacement; folded into the cache
    /// generation so a swapped-in store can never serve another store's
    /// cached rewrites, even on a revision-counter collision.
    epoch: u64,
}

/// Per-endpoint partition rewrite cache: (endpoint id, partition
/// fingerprint) → rendered subquery text, generation-tagged like the PR 5
/// serve cache.
struct PartitionCache {
    cache: RewriteCache,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Hit/miss counters of the planner's partition cache.
#[derive(Copy, Clone, PartialEq, Eq, Default, Debug)]
pub struct PartitionCacheStats {
    pub hits: u64,
    pub misses: u64,
}

/// Partitions queries across per-endpoint rule sets and renders
/// SERVICE-annotated subqueries. Build-phase: register endpoints with
/// [`FederationPlanner::add_endpoint`], then call
/// [`FederationPlanner::plan`] freely from the serve phase (`&self`).
///
/// With [`FederationPlanner::enable_partition_cache`], rendered partition
/// rewrites are memoized per `(endpoint id, partition fingerprint)` under
/// the endpoint store's [`AlignmentStore::revision`] generation tag:
/// repeated hot partitions — the normal shape of a Zipfian query stream —
/// are planned by [`FederationPlanner::plan_for_dispatch`] without
/// re-rewriting or re-rendering anything.
#[derive(Default)]
pub struct FederationPlanner {
    endpoints: Vec<PlannerEndpoint>,
    cache: Option<PartitionCache>,
}

/// Reusable buffers threaded through per-partition rewriting.
#[derive(Default)]
struct PlanScratch {
    rewrite: RewriteScratch,
    fresh_base: String,
}

/// A query's triples partitioned across endpoints, plus dispatch order.
struct Partitioned {
    parts: Vec<Vec<TriplePattern>>,
    scores: Vec<u64>,
    residual: Vec<ResidualItem>,
    /// Endpoints with non-empty partitions, most selective first.
    order: Vec<usize>,
}

/// What a residual (locally kept) item is: a triple no endpoint matched, or
/// a non-conjunctive node copied structurally.
enum ResidualItem {
    Triple(TriplePattern),
    Node(u32),
}

impl FederationPlanner {
    pub fn new() -> FederationPlanner {
        FederationPlanner::default()
    }

    /// Register a federation member: its SPARQL endpoint term (an interned
    /// IRI) and its alignment rule set. Returns the member's id; ids are
    /// dense and assigned in registration order.
    pub fn add_endpoint(&mut self, endpoint: Term, store: Arc<AlignmentStore>) -> EndpointId {
        let id = EndpointId(self.endpoints.len() as u32);
        self.endpoints.push(PlannerEndpoint {
            term: endpoint,
            store,
            epoch: 0,
        });
        id
    }

    /// Swap one endpoint's rule set in place (e.g. after an alignment
    /// refresh), keeping its id and dispatch identity. The endpoint's
    /// cache epoch is bumped, so partition rewrites cached against the
    /// old store are unreachable even when the stores' revision counters
    /// collide.
    pub fn replace_endpoint_store(&mut self, id: EndpointId, store: Arc<AlignmentStore>) {
        let ep = &mut self.endpoints[id.0 as usize];
        ep.store = store;
        ep.epoch += 1;
    }

    /// Memoize rendered partition rewrites (see the type docs). Call once
    /// during the build phase; planning stays `&self`.
    pub fn enable_partition_cache(&mut self, config: CacheConfig) {
        self.cache = Some(PartitionCache {
            cache: RewriteCache::new(config),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        });
    }

    /// Partition-cache hit/miss counters; zeros when the cache is off.
    pub fn partition_cache_stats(&self) -> PartitionCacheStats {
        match &self.cache {
            Some(pc) => PartitionCacheStats {
                hits: pc.hits.load(Ordering::Relaxed),
                misses: pc.misses.load(Ordering::Relaxed),
            },
            None => PartitionCacheStats::default(),
        }
    }

    pub fn n_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// The endpoint IRI term `id` was registered with (ids are dense
    /// registration indexes — see [`FederationPlanner::add_endpoint`]).
    /// Lets a front end match transport addresses against planner members
    /// by IRI instead of by registration order.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this planner.
    pub fn endpoint_term(&self, id: EndpointId) -> Term {
        self.endpoints[id.0 as usize].term
    }

    /// Cache key of endpoint `e`'s partition: the endpoint id and every
    /// triple's interned term bits, chain-mixed. Interner symbols are
    /// process-stable, which is exactly the lifetime of the cache.
    fn partition_fingerprint(&self, e: usize, part: &[TriplePattern]) -> QueryFingerprint {
        let mut h = mix_chain(0x7a57_11f0_5eed_cafe, &[e as u64, part.len() as u64]);
        for tp in part {
            for t in tp.terms() {
                h = mix64(h ^ t.raw() as u64);
            }
        }
        QueryFingerprint::from_parts(h, part.len() as u32)
    }

    /// Cache generation of endpoint `e`: store revision in the low bits,
    /// replacement epoch in the high bits.
    fn endpoint_generation(&self, e: usize) -> u64 {
        let ep = &self.endpoints[e];
        (ep.epoch << 48) ^ ep.store.revision()
    }

    /// Which endpoint should answer `tp`, and at what selectivity cost?
    ///
    /// Preference order: a predicate-template match (score = candidate
    /// count, O(1) read from the dense index — fewer candidates is more
    /// specific) beats an entity-only match (some term has an entity
    /// alignment but no template applies), beats nothing (residual). Ties
    /// go to the lowest endpoint id, keeping plans deterministic.
    fn assign(&self, tp: TriplePattern) -> Option<(usize, u64)> {
        let mut best: Option<(u8, u64, usize)> = None;
        for (i, ep) in self.endpoints.iter().enumerate() {
            let store: &AlignmentStore = &ep.store;
            let p = store.entity_target(tp.p).unwrap_or(tp.p);
            let candidates = store.predicate_candidates(p).len() as u64;
            let key = if candidates > 0 {
                (0u8, candidates)
            } else if tp.terms().iter().any(|t| store.entity_target(*t).is_some()) {
                (1u8, 1u64)
            } else {
                continue;
            };
            if best.is_none_or(|b| (key.0, key.1, i) < (b.0, b.1, b.2)) {
                best = Some((key.0, key.1, i));
            }
        }
        best.map(|(_, score, i)| (i, score))
    }

    /// Partition the root conjunction of `src` across endpoints and fix
    /// the dispatch order — the shared front half of both planning paths.
    fn partition(&self, src: &GroupPattern) -> Partitioned {
        let n = self.endpoints.len();
        let mut parts: Vec<Vec<TriplePattern>> = vec![Vec::new(); n];
        let mut scores: Vec<u64> = vec![0; n];
        let mut residual: Vec<ResidualItem> = Vec::new();
        for ci in src.root_children() {
            if matches!(src.nodes[ci as usize], PatternNode::Triples { .. }) {
                for &tp in src.run(ci) {
                    match self.assign(tp) {
                        Some((e, score)) => {
                            parts[e].push(tp);
                            scores[e] += score;
                        }
                        None => residual.push(ResidualItem::Triple(tp)),
                    }
                }
            } else {
                residual.push(ResidualItem::Node(ci));
            }
        }

        // Yannakis-style statistics-free ordering: dispatch the most
        // selective partition (smallest summed candidate count) first.
        let mut order: Vec<usize> = (0..n).filter(|&e| !parts[e].is_empty()).collect();
        order.sort_by_key(|&e| (scores[e], e));
        Partitioned {
            parts,
            scores,
            residual,
            order,
        }
    }

    /// Rewrite endpoint `e`'s partition into `scratch` and render it into
    /// `subquery`.
    fn rewrite_partition<R: Resolve>(
        &self,
        e: usize,
        part: &[TriplePattern],
        resolver: &R,
        limits: RewriteLimits,
        scratch: &mut PlanScratch,
        subquery: &mut String,
    ) -> Result<(), RewriteError> {
        let bgp = Bgp::new(part.to_vec());
        let rewriter = IndexedRewriter::new(Arc::clone(&self.endpoints[e].store));
        rewriter.try_rewrite_bgp_into(&bgp, &mut scratch.rewrite, limits)?;
        subquery.clear();
        render_query_into(
            QueryRef {
                select: None,
                pattern: scratch.rewrite.pattern(),
            },
            resolver,
            &mut scratch.fresh_base,
            subquery,
        );
        Ok(())
    }

    /// Plan for execution only: like [`FederationPlanner::plan`] but
    /// without building the SERVICE-annotated combined query — which is
    /// what lets a partition-cache hit skip the rewrite *entirely* and
    /// serve the subquery text by fingerprint + memcpy. Both paths share
    /// one cache, so full `plan` calls warm it for dispatch traffic.
    pub fn plan_for_dispatch<R: Resolve>(
        &self,
        query: QueryRef<'_>,
        resolver: &R,
        limits: RewriteLimits,
    ) -> Result<DispatchPlan, RewriteError> {
        let p = self.partition(query.pattern);
        let n_residual_patterns = p
            .residual
            .iter()
            .filter(|i| matches!(i, ResidualItem::Triple(_)))
            .count();
        let mut endpoint_plans = Vec::with_capacity(p.order.len());
        let mut scratch = PlanScratch::default();
        let mut cached = Vec::new();
        for &e in &p.order {
            let mut subquery = String::new();
            let key = self.cache.as_ref().map(|_| {
                (
                    self.partition_fingerprint(e, &p.parts[e]),
                    self.endpoint_generation(e),
                )
            });
            let mut hit = false;
            if let (Some(pc), Some((fp, gen))) = (&self.cache, key) {
                cached.clear();
                if pc.cache.lookup(fp, gen, &mut cached) {
                    if let Ok(text) = std::str::from_utf8(&cached) {
                        subquery.push_str(text);
                        hit = true;
                    }
                }
                let counter = if hit { &pc.hits } else { &pc.misses };
                counter.fetch_add(1, Ordering::Relaxed);
            }
            if !hit {
                self.rewrite_partition(
                    e,
                    &p.parts[e],
                    resolver,
                    limits,
                    &mut scratch,
                    &mut subquery,
                )?;
                if let (Some(pc), Some((fp, gen))) = (&self.cache, key) {
                    pc.cache.insert(fp, gen, subquery.as_bytes());
                }
            }
            endpoint_plans.push(EndpointPlan {
                endpoint: EndpointId(e as u32),
                endpoint_term: self.endpoints[e].term,
                subquery,
                selectivity: p.scores[e],
                n_patterns: p.parts[e].len(),
            });
        }
        Ok(DispatchPlan {
            endpoints: endpoint_plans,
            n_residual_patterns,
        })
    }

    /// Partition `query`, rewrite each partition against its endpoint's
    /// rules (bounded by `limits`), and render the dispatch plan.
    ///
    /// Plans are fully deterministic in the query + registered endpoints.
    /// Fails only when a partition's rewrite crosses a [`RewriteLimits`]
    /// cap.
    pub fn plan<R: Resolve>(
        &self,
        query: QueryRef<'_>,
        resolver: &R,
        limits: RewriteLimits,
    ) -> Result<FederationPlan, RewriteError> {
        let src = query.pattern;
        let Partitioned {
            parts,
            scores,
            residual,
            order,
        } = self.partition(src);

        let mut annotated = GroupPattern::new();
        let mut chain = ChainBuilder::new();
        let mut endpoint_plans = Vec::with_capacity(order.len());
        let mut scratch = PlanScratch::default();
        for &e in &order {
            let mut subquery = String::new();
            self.rewrite_partition(e, &parts[e], resolver, limits, &mut scratch, &mut subquery)?;
            // The annotated tree needs the rewritten pattern either way,
            // so the cache is only written here — warming dispatch-path
            // lookups — never consulted.
            if let Some(pc) = &self.cache {
                let fp = self.partition_fingerprint(e, &parts[e]);
                pc.cache
                    .insert(fp, self.endpoint_generation(e), subquery.as_bytes());
            }
            let mut svc_chain = ChainBuilder::new();
            for c in scratch.rewrite.pattern().root_children() {
                let node = copy_node(scratch.rewrite.pattern(), c, &mut annotated);
                svc_chain.push(&mut annotated, node);
            }
            let svc = annotated.push_node(PatternNode::Service {
                endpoint: self.endpoints[e].term,
                first: svc_chain.first(),
            });
            chain.push(&mut annotated, svc);
            endpoint_plans.push(EndpointPlan {
                endpoint: EndpointId(e as u32),
                endpoint_term: self.endpoints[e].term,
                subquery,
                selectivity: scores[e],
                n_patterns: parts[e].len(),
            });
        }

        // Residual: unroutable triples (as maximal runs) and structural
        // nodes, in original order, after the SERVICE blocks.
        let mut n_residual_patterns = 0;
        let mut run_start = annotated.triples.len() as u32;
        let flush = |annotated: &mut GroupPattern, chain: &mut ChainBuilder, start: u32| {
            let end = annotated.triples.len() as u32;
            if end > start {
                let node = annotated.push_node(PatternNode::Triples {
                    start,
                    len: end - start,
                });
                chain.push(annotated, node);
            }
        };
        for item in residual {
            match item {
                ResidualItem::Triple(tp) => {
                    annotated.triples.push(tp);
                    n_residual_patterns += 1;
                }
                ResidualItem::Node(ci) => {
                    flush(&mut annotated, &mut chain, run_start);
                    let node = copy_node(src, ci, &mut annotated);
                    chain.push(&mut annotated, node);
                    run_start = annotated.triples.len() as u32;
                }
            }
        }
        flush(&mut annotated, &mut chain, run_start);
        annotated.root = annotated.push_node(PatternNode::Group {
            first: chain.first(),
        });

        Ok(FederationPlan {
            annotated: Query {
                select: match query.select {
                    None => SelectList::Star,
                    Some(vars) => SelectList::Vars(vars.to_vec()),
                },
                pattern: annotated,
            },
            endpoints: endpoint_plans,
            n_residual_patterns,
        })
    }
}

/// Deep-copy the subtree at `idx` from `src` into `dst`, returning the new
/// node index.
fn copy_node(src: &GroupPattern, idx: u32, dst: &mut GroupPattern) -> u32 {
    match src.nodes[idx as usize] {
        PatternNode::Triples { .. } => {
            let start = dst.triples.len() as u32;
            let run = src.run(idx);
            dst.triples.extend_from_slice(run);
            dst.push_node(PatternNode::Triples {
                start,
                len: run.len() as u32,
            })
        }
        PatternNode::Group { first } => {
            let first = copy_children(src, first, dst);
            dst.push_node(PatternNode::Group { first })
        }
        PatternNode::Optional { first } => {
            let first = copy_children(src, first, dst);
            dst.push_node(PatternNode::Optional { first })
        }
        PatternNode::Union { first } => {
            let first = copy_children(src, first, dst);
            dst.push_node(PatternNode::Union { first })
        }
        PatternNode::Service { endpoint, first } => {
            let first = copy_children(src, first, dst);
            dst.push_node(PatternNode::Service { endpoint, first })
        }
        PatternNode::Filter { expr } => {
            let expr = copy_expr(src, expr, dst);
            dst.push_node(PatternNode::Filter { expr })
        }
    }
}

fn copy_children(src: &GroupPattern, first: u32, dst: &mut GroupPattern) -> u32 {
    let mut chain = ChainBuilder::new();
    for ci in src.children_from(first) {
        let node = copy_node(src, ci, dst);
        chain.push(dst, node);
    }
    chain.first()
}

fn copy_expr(src: &GroupPattern, e: u32, dst: &mut GroupPattern) -> u32 {
    let node = match src.exprs[e as usize] {
        ExprNode::Term(t) => ExprNode::Term(t),
        ExprNode::Cmp(op, l, r) => {
            let l = copy_expr(src, l, dst);
            let r = copy_expr(src, r, dst);
            ExprNode::Cmp(op, l, r)
        }
        ExprNode::And(l, r) => {
            let l = copy_expr(src, l, dst);
            let r = copy_expr(src, r, dst);
            ExprNode::And(l, r)
        }
        ExprNode::Or(l, r) => {
            let l = copy_expr(src, l, dst);
            let r = copy_expr(src, r, dst);
            ExprNode::Or(l, r)
        }
        ExprNode::Not(c) => {
            let c = copy_expr(src, c, dst);
            ExprNode::Not(c)
        }
    };
    dst.push_expr(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::RuleTemplate;
    use crate::interner::Interner;
    use crate::parser::{parse_bgp, parse_query};
    use crate::pattern::{CmpOp, ExprNode};

    /// Two endpoints: ep0 aligns <http://a/p*>, ep1 aligns <http://b/p*>.
    fn two_endpoint_planner(it: &mut Interner) -> FederationPlanner {
        let mut planner = FederationPlanner::new();
        for (e, ns) in ["a", "b"].iter().enumerate() {
            let mut store = AlignmentStore::new();
            for i in 0..4 {
                let lhs = parse_bgp(&format!("?s <http://{ns}/p{i}> ?o"), it)
                    .unwrap()
                    .patterns[0];
                let rhs = parse_bgp(&format!("?s <http://{ns}-tgt/p{i}> ?o"), it)
                    .unwrap()
                    .patterns;
                store.add_predicate(lhs, rhs).unwrap();
            }
            // ep1's p0 additionally has a second template so its candidate
            // count (selectivity signal) is higher.
            if e == 1 {
                let lhs = parse_bgp("?s <http://b/p0> ?o", it).unwrap().patterns[0];
                let rhs = parse_bgp("?s <http://b-alt/p0> ?o", it).unwrap().patterns;
                store.add_predicate(lhs, rhs).unwrap();
            }
            store.build_dense_index(it.symbol_bound());
            let term = Term::iri(it.intern(&format!("http://{ns}.example.org/sparql")));
            planner.add_endpoint(term, Arc::new(store));
        }
        planner
    }

    #[test]
    fn plan_partitions_orders_and_renders_service_blocks() {
        let mut it = Interner::new();
        let planner = two_endpoint_planner(&mut it);
        let query = parse_query(
            "SELECT ?s WHERE { ?s <http://b/p0> ?x . ?s <http://a/p1> ?y . \
             ?s <http://nowhere/q> ?z . FILTER(?y > 3) }",
            &mut it,
        )
        .unwrap();
        let plan = planner
            .plan(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();

        // Both endpoints matched one pattern each; ep0's partition (1
        // candidate) is more selective than ep1's (2 candidates for b/p0),
        // so ep0 dispatches first.
        assert_eq!(plan.endpoints.len(), 2);
        assert_eq!(plan.endpoints[0].endpoint, EndpointId(0));
        assert_eq!(plan.endpoints[0].selectivity, 1);
        assert_eq!(plan.endpoints[1].endpoint, EndpointId(1));
        assert_eq!(plan.endpoints[1].selectivity, 2);
        assert_eq!(plan.n_residual_patterns, 1);

        // Subqueries are rewritten into each endpoint's target vocabulary.
        assert!(
            plan.endpoints[0].subquery.contains("<http://a-tgt/p1>"),
            "{}",
            plan.endpoints[0].subquery
        );
        // ep1's multi-template pattern expands to the paper's UNION.
        assert!(
            plan.endpoints[1].subquery.contains("<http://b-tgt/p0>")
                && plan.endpoints[1].subquery.contains("<http://b-alt/p0>")
                && plan.endpoints[1].subquery.contains("UNION"),
            "{}",
            plan.endpoints[1].subquery
        );

        // The annotated query carries SERVICE blocks in dispatch order,
        // then the residual (unroutable triple + FILTER), and re-parses.
        let text = plan.annotated.display(&it).to_string();
        let a_pos = text.find("SERVICE <http://a.example.org/sparql>").unwrap();
        let b_pos = text.find("SERVICE <http://b.example.org/sparql>").unwrap();
        assert!(a_pos < b_pos, "{text}");
        assert!(text.contains("<http://nowhere/q>"), "{text}");
        assert!(text.contains("FILTER(?y > \"3\""), "{text}");
        let reparsed = parse_query(&text, &mut it).unwrap();
        assert_eq!(reparsed, plan.annotated);
    }

    #[test]
    fn plan_propagates_rewrite_limits() {
        let mut it = Interner::new();
        let planner = two_endpoint_planner(&mut it);
        let query = parse_query("SELECT * WHERE { ?s <http://b/p0> ?x }", &mut it).unwrap();
        let err = planner
            .plan(query.as_ref(), &it, RewriteLimits::with_union_branch_cap(1))
            .unwrap_err();
        assert!(matches!(err, RewriteError::UnionBranchesExceeded { .. }));
    }

    #[test]
    fn plan_counts_complex_candidates_and_propagates_template_size_cap() {
        let mut it = Interner::new();
        let mut planner = FederationPlanner::new();
        let mut store = AlignmentStore::new();
        // A 3-triple existential chain with a value-transform FILTER:
        // instantiated size 4 per matching pattern.
        let lhs = parse_bgp("?s <http://c/p0> ?o", &mut it).unwrap().patterns[0];
        let mut tmpl = RuleTemplate::from_triples(
            parse_bgp(
                "?s <http://c-tgt/h> ?m . ?m <http://c-tgt/t> ?n . ?n <http://c-tgt/v> ?o",
                &mut it,
            )
            .unwrap()
            .patterns,
        );
        let l = tmpl.push_expr(ExprNode::Term(lhs.o));
        let r = tmpl.push_expr(ExprNode::Term(Term::literal(it.intern("\"0\""))));
        let f = tmpl.push_expr(ExprNode::Cmp(CmpOp::Ne, l, r));
        tmpl.push_filter(f);
        store.add_complex_predicate(lhs, tmpl).unwrap();
        store.build_dense_index(it.symbol_bound());
        let ep = Term::iri(it.intern("http://c.example.org/sparql"));
        planner.add_endpoint(ep, Arc::new(store));

        let query = parse_query("SELECT * WHERE { ?s <http://c/p0> ?o }", &mut it).unwrap();
        // Complex rules participate in candidate counting — the pattern
        // routes to the endpoint rather than the residual — and the
        // rendered subquery carries the chain plus the transform FILTER.
        let plan = planner
            .plan(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        assert_eq!(plan.endpoints.len(), 1);
        assert_eq!(plan.endpoints[0].selectivity, 1);
        assert_eq!(plan.n_residual_patterns, 0);
        let sub = &plan.endpoints[0].subquery;
        assert!(
            sub.contains("<http://c-tgt/t>") && sub.contains("FILTER("),
            "{sub}"
        );

        // The per-pattern template-size cap surfaces through the planner
        // unchanged, like the UNION branch cap above.
        let err = planner
            .plan(
                query.as_ref(),
                &it,
                RewriteLimits::with_template_size_cap(3),
            )
            .unwrap_err();
        assert!(
            matches!(
                err,
                RewriteError::TemplateSizeExceeded {
                    cap: 3,
                    required: 4
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn partition_fingerprints_key_on_the_endpoint_id() {
        let mut it = Interner::new();
        let planner = two_endpoint_planner(&mut it);
        let tps = parse_bgp("?s <http://a/p0> ?o . ?s <http://a/p1> ?x", &mut it)
            .unwrap()
            .patterns;
        // The same triples must hash to different cache keys per endpoint:
        // each endpoint rewrites them into a different vocabulary.
        assert_ne!(
            planner.partition_fingerprint(0, &tps),
            planner.partition_fingerprint(1, &tps)
        );
        // And the fingerprint is order- and content-sensitive.
        let rev: Vec<_> = tps.iter().rev().copied().collect();
        assert_ne!(
            planner.partition_fingerprint(0, &tps),
            planner.partition_fingerprint(0, &rev)
        );
    }

    #[test]
    fn dispatch_plan_serves_hot_partitions_from_the_cache() {
        let mut it = Interner::new();
        let mut planner = two_endpoint_planner(&mut it);
        planner.enable_partition_cache(crate::cache::CacheConfig::default());
        let query = parse_query(
            "SELECT * WHERE { ?s <http://a/p0> ?x . ?s <http://b/p1> ?y }",
            &mut it,
        )
        .unwrap();

        let cold = planner
            .plan_for_dispatch(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        let stats = planner.partition_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 2), "cold run misses");

        let hot = planner
            .plan_for_dispatch(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        let stats = planner.partition_cache_stats();
        assert_eq!(stats.hits, 2, "hot partitions must not re-rewrite");
        let texts = |p: &DispatchPlan| -> Vec<String> {
            p.endpoints.iter().map(|e| e.subquery.clone()).collect()
        };
        assert_eq!(texts(&cold), texts(&hot));

        // The full planning path produces the same subqueries and warms
        // the same cache (inserts only — it always needs the rewrite for
        // the annotated tree).
        let full = planner
            .plan(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        let full_texts: Vec<String> = full.endpoints.iter().map(|e| e.subquery.clone()).collect();
        assert_eq!(full_texts, texts(&hot));
        assert_eq!(
            planner.partition_cache_stats().hits,
            2,
            "plan() never consults the cache"
        );
    }

    #[test]
    fn store_replacement_invalidates_cached_partitions() {
        let mut it = Interner::new();
        let mut planner = two_endpoint_planner(&mut it);
        planner.enable_partition_cache(crate::cache::CacheConfig::default());
        let query = parse_query("SELECT * WHERE { ?s <http://a/p1> ?y }", &mut it).unwrap();

        let before = planner
            .plan_for_dispatch(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        assert!(before.endpoints[0].subquery.contains("<http://a-tgt/p1>"));
        assert_eq!(planner.partition_cache_stats().misses, 1);

        // Rebuild ep0's rules with the *same number of additions* (so the
        // fresh store's revision counter collides with the old one) but a
        // different target vocabulary. The epoch bump must still reach the
        // new rewrite.
        let mut store = AlignmentStore::new();
        for i in 0..4 {
            let lhs = parse_bgp(&format!("?s <http://a/p{i}> ?o"), &mut it)
                .unwrap()
                .patterns[0];
            let rhs = parse_bgp(&format!("?s <http://a-v2/p{i}> ?o"), &mut it)
                .unwrap()
                .patterns;
            store.add_predicate(lhs, rhs).unwrap();
        }
        store.build_dense_index(it.symbol_bound());
        planner.replace_endpoint_store(EndpointId(0), Arc::new(store));

        let after = planner
            .plan_for_dispatch(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        assert!(
            after.endpoints[0].subquery.contains("<http://a-v2/p1>"),
            "stale cached rewrite served after store replacement: {}",
            after.endpoints[0].subquery
        );
        let stats = planner.partition_cache_stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 2),
            "replacement must miss, not hit"
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let mut it = Interner::new();
        let planner = two_endpoint_planner(&mut it);
        let query = parse_query(
            "SELECT * WHERE { ?s <http://a/p0> ?x . ?s <http://b/p1> ?y }",
            &mut it,
        )
        .unwrap();
        let a = planner
            .plan(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        let b = planner
            .plan(query.as_ref(), &it, RewriteLimits::unbounded())
            .unwrap();
        assert_eq!(a.annotated, b.annotated);
        let subs_a: Vec<_> = a.endpoints.iter().map(|e| &e.subquery).collect();
        let subs_b: Vec<_> = b.endpoints.iter().map(|e| &e.subquery).collect();
        assert_eq!(subs_a, subs_b);
    }
}
