//! Real SPARQL-protocol HTTP transport over `std::net::TcpStream`.
//!
//! [`HttpTransport`] implements [`EndpointTransport`] with nothing beyond
//! the standard library: each dispatch is a `POST` with an
//! `application/sparql-query` body, the response is parsed by a
//! hand-rolled bounded HTTP/1.1 reader ([`read_response`]), and the
//! executor's remaining deadline budget is mapped onto connect/read/write
//! socket timeouts so a stalled peer can never hold an endpoint slot past
//! the federated deadline ceiling.
//!
//! # Connection reuse
//!
//! One idle keep-alive connection is pooled per endpoint (the executor
//! serializes same-endpoint calls, so one is all a slot can use). A pooled
//! connection is health-checked on checkout with a non-blocking `peek`:
//! a closed peer or stray unread bytes (a previous response that lied
//! about its framing) disqualify it and a fresh connection is dialed.
//! If a *reused* connection dies before yielding a single response byte —
//! the classic keep-alive race where the server closed the socket while
//! it was idle — the request is transparently resent once on a fresh
//! connection; SPARQL queries are idempotent reads, so the retry is safe
//! and is not surfaced as an attempt.
//!
//! # Error taxonomy
//!
//! Every failure funnels through [`HttpError`], whose
//! [`class`](HttpError::class) maps it onto the executor's
//! transient/permanent retry split: protocol violations and size-cap
//! breaches are permanent (the peer is broken, retries are wasted);
//! connection-shaped faults (refusal, reset, truncation) are transient;
//! deadline expiry is reported with `latency_nanos >= budget` so the
//! executor classifies it as [`EndpointOutcome::TimedOut`](super::EndpointOutcome).
//! The full fault-class → outcome table lives in the README's federation
//! section and is asserted by `tests/http_chaos.rs` against the seeded
//! [`ChaosProxy`](super::ChaosProxy).

use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use super::{
    classify_http_status, classify_io_error, EndpointTransport, TransportError, TransportReply,
    TransportRequest,
};
use crate::httpcore::DeadlineReader;
// The framing layer (limits, error taxonomy, response reader) lives in
// the shared `httpcore` module so the server front end parses with the
// exact same code; re-exported here so transport callers keep their
// `federate::{HttpError, ...}` paths.
pub use crate::httpcore::{read_response, HttpError, HttpLimits, HttpResponse};

impl HttpError {
    /// Retry classification, per the documented fault-class table.
    pub fn class(&self) -> TransportError {
        match *self {
            HttpError::MalformedStatusLine
            | HttpError::MalformedHeader
            | HttpError::HeadersTooLarge
            | HttpError::BodyTooLarge
            | HttpError::InvalidContentLength
            | HttpError::InvalidChunk
            | HttpError::BadAddress => TransportError::Permanent,
            HttpError::Truncated => TransportError::Transient,
            HttpError::Status(s) => classify_http_status(s).unwrap_or(TransportError::Permanent),
            HttpError::Io(kind) => classify_io_error(kind),
        }
    }
}

/// One federation member's network coordinates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HttpEndpoint {
    /// `host:port`, resolved per dispatch via [`ToSocketAddrs`].
    pub authority: String,
    /// Request path of the SPARQL endpoint, e.g. `/sparql`.
    pub path: String,
}

impl HttpEndpoint {
    pub fn new(authority: impl Into<String>, path: impl Into<String>) -> HttpEndpoint {
        HttpEndpoint {
            authority: authority.into(),
            path: path.into(),
        }
    }
}

/// Transport tuning knobs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HttpConfig {
    pub limits: HttpLimits,
    /// Hard cap on the TCP connect wait, independent of (and bounded by)
    /// the per-attempt deadline budget.
    pub connect_cap_nanos: u64,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            limits: HttpLimits::default(),
            connect_cap_nanos: 1_000_000_000,
        }
    }
}

/// Blocking SPARQL-protocol HTTP transport. Indexed by
/// [`EndpointId`](super::EndpointId) like every transport: endpoint `e`
/// dials `endpoints[e]`.
pub struct HttpTransport {
    endpoints: Vec<HttpEndpoint>,
    config: HttpConfig,
    /// One idle keep-alive connection per endpoint.
    pool: Vec<Mutex<Option<TcpStream>>>,
    reused: AtomicU64,
    transparent_reconnects: AtomicU64,
}

impl HttpTransport {
    pub fn new(endpoints: Vec<HttpEndpoint>, config: HttpConfig) -> HttpTransport {
        let pool = endpoints.iter().map(|_| Mutex::new(None)).collect();
        HttpTransport {
            endpoints,
            config,
            pool,
            reused: AtomicU64::new(0),
            transparent_reconnects: AtomicU64::new(0),
        }
    }

    /// Dispatches served over a pooled keep-alive connection.
    pub fn reused_connections(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Requests transparently resent after a reused connection died
    /// before its first response byte (not visible as executor attempts).
    pub fn transparent_reconnects(&self) -> u64 {
        self.transparent_reconnects.load(Ordering::Relaxed)
    }

    fn pool_slot(&self, e: usize) -> std::sync::MutexGuard<'_, Option<TcpStream>> {
        self.pool[e].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A pooled connection is usable only if the peer is still there and
    /// has sent nothing since the last response: stray readable bytes mean
    /// the previous exchange's framing lied, and replies would desync.
    fn conn_is_clean(conn: &TcpStream) -> bool {
        if conn.set_nonblocking(true).is_err() {
            return false;
        }
        let mut probe = [0u8; 1];
        let verdict = match conn.peek(&mut probe) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
            // Ok(0) = peer closed; Ok(_) = stray bytes; Err = broken.
            _ => false,
        };
        conn.set_nonblocking(false).is_ok() && verdict
    }

    fn connect(&self, e: usize, deadline: Instant) -> Result<TcpStream, HttpError> {
        let remaining = match deadline.checked_duration_since(Instant::now()) {
            Some(d) if !d.is_zero() => d,
            _ => return Err(HttpError::Io(io::ErrorKind::TimedOut)),
        };
        let addr = self.endpoints[e]
            .authority
            .to_socket_addrs()
            .map_err(|_| HttpError::BadAddress)?
            .next()
            .ok_or(HttpError::BadAddress)?;
        let cap = Duration::from_nanos(self.config.connect_cap_nanos.max(1));
        let stream = TcpStream::connect_timeout(&addr, remaining.min(cap))
            .map_err(|e| HttpError::from_io(&e))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// Write the request and read the response on `stream`. On failure,
    /// also reports whether any response byte had arrived — the signal
    /// that decides transparent-reconnect eligibility.
    fn roundtrip(
        &self,
        stream: &TcpStream,
        e: usize,
        query: &str,
        deadline: Instant,
    ) -> Result<(HttpResponse, bool), (HttpError, bool)> {
        let ep = &self.endpoints[e];
        let remaining = match deadline.checked_duration_since(Instant::now()) {
            Some(d) if !d.is_zero() => d,
            _ => return Err((HttpError::Io(io::ErrorKind::TimedOut), false)),
        };
        if stream.set_write_timeout(Some(remaining)).is_err() {
            return Err((HttpError::Io(io::ErrorKind::Other), false));
        }
        let head = format!(
            "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/sparql-query\r\n\
             Accept: application/sparql-results+json\r\nContent-Length: {}\r\n\r\n",
            ep.path,
            ep.authority,
            query.len()
        );
        let mut w = stream;
        if let Err(e) = w.write_all(head.as_bytes()).and_then(|()| {
            w.write_all(query.as_bytes())?;
            w.flush()
        }) {
            return Err((HttpError::from_io(&e), false));
        }
        let mut reader = BufReader::with_capacity(8 * 1024, DeadlineReader::new(stream, deadline));
        match read_response(&mut reader, &self.config.limits) {
            Ok(resp) => {
                // Reusable only under explicit framing with no stray bytes
                // already buffered past the response.
                let clean = !resp.close && reader.buffer().is_empty();
                Ok((resp, clean))
            }
            Err(err) => Err((err, reader.get_ref().got_any())),
        }
    }

    fn execute_inner(&self, e: usize, query: &str, deadline: Instant) -> Result<String, HttpError> {
        // Round 0 may run on a pooled connection; if that connection dies
        // before a single response byte, round 1 resends on a fresh dial.
        for round in 0..2u8 {
            let (stream, reused) = {
                let pooled = if round == 0 {
                    self.pool_slot(e).take().filter(Self::conn_is_clean)
                } else {
                    None
                };
                match pooled {
                    Some(conn) => {
                        self.reused.fetch_add(1, Ordering::Relaxed);
                        (conn, true)
                    }
                    None => (self.connect(e, deadline)?, false),
                }
            };
            match self.roundtrip(&stream, e, query, deadline) {
                Ok((resp, clean)) => {
                    if clean {
                        *self.pool_slot(e) = Some(stream);
                    }
                    return match classify_http_status(resp.status) {
                        None => Ok(String::from_utf8_lossy(&resp.body).into_owned()),
                        Some(_) => Err(HttpError::Status(resp.status)),
                    };
                }
                Err((err, got_any)) => {
                    if reused && !got_any && !err.is_timeout() {
                        // Keep-alive race: the server closed the idle
                        // connection under us. The query is an idempotent
                        // read — resend once, invisibly.
                        self.transparent_reconnects.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    return Err(err);
                }
            }
        }
        unreachable!("round 1 never runs on a reused connection")
    }
}

impl EndpointTransport for HttpTransport {
    fn execute(&self, req: &TransportRequest<'_>) -> TransportReply {
        let start = Instant::now();
        let budget = Duration::from_nanos(req.budget_nanos.max(1));
        let result = self.execute_inner(req.endpoint.0 as usize, req.query, start + budget);
        let elapsed = start.elapsed().as_nanos() as u64;
        match result {
            Ok(body) => TransportReply {
                latency_nanos: elapsed,
                payload: Ok(body),
            },
            Err(err) => TransportReply {
                // Deadline expiry must read as `latency >= budget` so the
                // executor books it as TimedOut, not a retryable failure.
                latency_nanos: if err.is_timeout() {
                    elapsed.max(req.budget_nanos)
                } else {
                    elapsed
                },
                payload: Err(err.class()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::mix_chain;
    use super::*;

    fn parse(bytes: &[u8]) -> Result<HttpResponse, HttpError> {
        read_response(&mut &bytes[..], &HttpLimits::default())
    }

    fn parse_with(bytes: &[u8], limits: HttpLimits) -> Result<HttpResponse, HttpError> {
        read_response(&mut &bytes[..], &limits)
    }

    fn ok(bytes: &[u8]) -> HttpResponse {
        parse(bytes).expect("response should parse")
    }

    // ---- well-formed responses -------------------------------------

    #[test]
    fn content_length_body() {
        let r = ok(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello");
        assert_eq!(
            (r.status, r.body.as_slice(), r.close),
            (200, &b"hello"[..], false)
        );
    }

    #[test]
    fn zero_length_body() {
        let r = ok(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n");
        assert_eq!((r.status, r.body.len(), r.close), (200, 0, false));
    }

    #[test]
    fn bodiless_204_and_304() {
        for status in ["204 No Content", "304 Not Modified"] {
            let raw = format!("HTTP/1.1 {status}\r\n\r\n");
            let r = ok(raw.as_bytes());
            assert!(r.body.is_empty());
            assert!(!r.close);
        }
    }

    #[test]
    fn chunked_body_reassembles() {
        let r = ok(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
        assert_eq!(r.body, b"hello world");
    }

    #[test]
    fn chunked_with_extension_and_uppercase_hex() {
        let r = ok(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nA;ext=1\r\n0123456789\r\n0\r\n\r\n");
        assert_eq!(r.body, b"0123456789");
    }

    #[test]
    fn chunked_with_trailers() {
        let r = ok(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabc\r\n0\r\nX-Trailer: 1\r\n\r\n");
        assert_eq!(r.body, b"abc");
    }

    #[test]
    fn transfer_encoding_is_case_insensitive() {
        let r = ok(b"HTTP/1.1 200 OK\r\ntRaNsFeR-eNcOdInG: ChUnKeD\r\n\r\n2\r\nok\r\n0\r\n\r\n");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn folded_header_is_unfolded() {
        // An obs-fold on an uninterpreted header must not derail parsing.
        let r = ok(b"HTTP/1.1 200 OK\r\nX-Info: first\r\n  second\r\nContent-Length: 2\r\n\r\nok");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn connection_close_is_reported() {
        let r = ok(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok");
        assert!(r.close);
    }

    #[test]
    fn connection_keep_alive_is_not_close() {
        let r = ok(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok");
        assert!(!r.close);
    }

    #[test]
    fn eof_framed_body_reads_to_end_and_forces_close() {
        let r = ok(b"HTTP/1.0 200 OK\r\n\r\nall the way to eof");
        assert_eq!(r.body, b"all the way to eof");
        assert!(r.close);
    }

    #[test]
    fn duplicate_agreeing_content_length_is_tolerated() {
        let r = ok(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn non_2xx_statuses_parse_with_their_bodies() {
        let r = ok(b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 4\r\n\r\nbusy");
        assert_eq!((r.status, r.body.as_slice()), (503, &b"busy"[..]));
    }

    // ---- malformed and hostile responses ---------------------------

    #[test]
    fn malformed_status_lines_are_permanent() {
        for raw in [
            &b"HTP/1.1 200 OK\r\n\r\n"[..],
            b"HTTP/2 200 OK\r\n\r\n",
            b"HTTP/1.1 20 OK\r\n\r\n",
            b"HTTP/1.1 2x0 OK\r\n\r\n",
            b"HTTP/1.1 099 low\r\n\r\n",
            b"HTTP/1.1 200OK\r\n\r\n",
            b"banana\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err, HttpError::MalformedStatusLine, "{raw:?}");
            assert!(err.class().is_permanent());
        }
    }

    #[test]
    fn header_without_colon_is_permanent() {
        let err = parse(b"HTTP/1.1 200 OK\r\nthis line has no colon\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::MalformedHeader);
        assert!(err.class().is_permanent());
    }

    #[test]
    fn fold_before_any_header_is_malformed() {
        let err = parse(b"HTTP/1.1 200 OK\r\n  dangling fold\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::MalformedHeader);
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let err = parse(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nok")
            .unwrap_err();
        assert_eq!(err, HttpError::InvalidContentLength);
        assert!(err.class().is_permanent());
    }

    #[test]
    fn unparseable_content_length_is_rejected() {
        for v in ["banana", "-1", "1 2", ""] {
            let raw = format!("HTTP/1.1 200 OK\r\nContent-Length: {v}\r\n\r\n");
            assert_eq!(
                parse(raw.as_bytes()).unwrap_err(),
                HttpError::InvalidContentLength,
                "{v:?}"
            );
        }
    }

    #[test]
    fn declared_body_over_cap_is_rejected_before_reading() {
        let limits = HttpLimits {
            max_body_bytes: 8,
            ..HttpLimits::default()
        };
        let err = parse_with(
            b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\n123456789",
            limits,
        )
        .unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge);
        assert!(err.class().is_permanent());
    }

    #[test]
    fn chunked_body_over_cap_is_rejected() {
        let limits = HttpLimits {
            max_body_bytes: 8,
            ..HttpLimits::default()
        };
        let err = parse_with(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n",
            limits,
        )
        .unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge);
    }

    #[test]
    fn eof_framed_body_over_cap_is_rejected() {
        let limits = HttpLimits {
            max_body_bytes: 4,
            ..HttpLimits::default()
        };
        let err = parse_with(b"HTTP/1.1 200 OK\r\n\r\ntoo much body", limits).unwrap_err();
        assert_eq!(err, HttpError::BodyTooLarge);
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let limits = HttpLimits {
            max_header_bytes: 64,
            ..HttpLimits::default()
        };
        let raw = format!("HTTP/1.1 200 OK\r\nX-Big: {}\r\n\r\n", "a".repeat(128));
        let err = parse_with(raw.as_bytes(), limits).unwrap_err();
        assert_eq!(err, HttpError::HeadersTooLarge);
        assert!(err.class().is_permanent());
    }

    #[test]
    fn oversized_status_line_is_rejected() {
        let limits = HttpLimits {
            max_header_bytes: 32,
            ..HttpLimits::default()
        };
        let raw = format!("HTTP/1.1 200 {}\r\n\r\n", "x".repeat(64));
        assert_eq!(
            parse_with(raw.as_bytes(), limits).unwrap_err(),
            HttpError::HeadersTooLarge
        );
    }

    #[test]
    fn bad_chunk_headers_are_rejected() {
        for raw in [
            &b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nxyz\r\nabc\r\n0\r\n\r\n"[..],
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\r\nabc\r\n0\r\n\r\n",
            // 3-byte chunk whose data is not followed by CRLF.
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nabcXX0\r\n\r\n",
            // Absurdly long size line.
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n111111111\r\n\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err, HttpError::InvalidChunk, "{raw:?}");
            assert!(err.class().is_permanent());
        }
    }

    // ---- truncation (every cut is a transient error) ---------------

    #[test]
    fn truncation_points_all_map_to_transient() {
        for raw in [
            &b""[..],
            b"HTTP/1.1 2",
            b"HTTP/1.1 200 OK\r\n",
            b"HTTP/1.1 200 OK\r\nContent-Le",
            b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n",
            b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhel",
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhe",
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n",
        ] {
            let err = parse(raw).unwrap_err();
            assert_eq!(err, HttpError::Truncated, "{raw:?}");
            assert!(err.class().is_transient(), "{raw:?}");
        }
    }

    #[test]
    fn every_prefix_of_a_valid_response_parses_or_errors_cleanly() {
        let raw: &[u8] = b"HTTP/1.1 200 OK\r\nX-A: 1\r\n b\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            // Must terminate without panicking; every cut is Truncated.
            assert_eq!(
                parse(&raw[..cut]).unwrap_err(),
                HttpError::Truncated,
                "cut {cut}"
            );
        }
        assert_eq!(ok(raw).body, b"hello");
    }

    // ---- classification --------------------------------------------

    #[test]
    fn error_classes_match_the_documented_table() {
        use TransportError::{Permanent, Transient};
        for (err, class) in [
            (HttpError::MalformedStatusLine, Permanent),
            (HttpError::MalformedHeader, Permanent),
            (HttpError::HeadersTooLarge, Permanent),
            (HttpError::BodyTooLarge, Permanent),
            (HttpError::InvalidContentLength, Permanent),
            (HttpError::InvalidChunk, Permanent),
            (HttpError::BadAddress, Permanent),
            (HttpError::Truncated, Transient),
            (HttpError::Status(503), Transient),
            (HttpError::Status(429), Transient),
            (HttpError::Status(404), Permanent),
            (HttpError::Io(io::ErrorKind::ConnectionRefused), Transient),
            (HttpError::Io(io::ErrorKind::ConnectionReset), Transient),
            (HttpError::Io(io::ErrorKind::TimedOut), Transient),
        ] {
            assert_eq!(err.class(), class, "{err:?}");
        }
        assert!(HttpError::Io(io::ErrorKind::TimedOut).is_timeout());
        assert!(!HttpError::Truncated.is_timeout());
    }

    // ---- seeded mutation fuzz (mirrors the PR 5 parser fuzz net) ---

    #[test]
    fn mutation_fuzz_never_panics_and_never_overreads() {
        let bases: [&[u8]; 3] = [
            b"HTTP/1.1 200 OK\r\nContent-Type: application/sparql-results+json\r\nContent-Length: 12\r\n\r\n{\"rows\":[1]}",
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n6\r\n{\"a\":1\r\n1\r\n}\r\n0\r\nX-T: v\r\n\r\n",
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nConnection: close\r\nContent-Length: 4\r\n\r\nbusy",
        ];
        let limits = HttpLimits {
            max_header_bytes: 512,
            max_body_bytes: 512,
        };
        let seed = 0x1799_c0de;
        let mut parsed_ok = 0u32;
        for i in 0..6_000u64 {
            let base = bases[(i % bases.len() as u64) as usize];
            let mut bytes = base.to_vec();
            // 1–3 seeded point mutations per iteration.
            let n_mut = 1 + (mix_chain(seed, &[i, 0]) % 3) as usize;
            for m in 0..n_mut {
                let draw = mix_chain(seed, &[i, 1 + m as u64]);
                let pos = (draw % bytes.len() as u64) as usize;
                bytes[pos] = (draw >> 32) as u8;
            }
            // Occasionally truncate as well.
            if mix_chain(seed, &[i, 9]).is_multiple_of(4) {
                let cut = (mix_chain(seed, &[i, 10]) % (bytes.len() as u64 + 1)) as usize;
                bytes.truncate(cut);
            }
            // The only contract: terminate, and never hand back more body
            // than the caps allow. Both Ok and structured Err are fine.
            if let Ok(resp) = read_response(&mut &bytes[..], &limits) {
                assert!(resp.body.len() <= limits.max_body_bytes);
                parsed_ok += 1;
            }
        }
        // Sanity: the fuzz actually explores both outcomes.
        assert!(parsed_ok > 0, "no mutated response ever parsed");
    }
}
