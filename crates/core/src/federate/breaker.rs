//! Per-endpoint circuit breaker: closed → open → half-open → closed.
//!
//! The breaker watches a sliding window of recent call results. While
//! **closed**, calls flow; once the window holds at least
//! [`BreakerConfig::min_samples`] results and the failure rate reaches
//! [`BreakerConfig::failure_rate_pct`], it trips **open** and fails calls
//! fast (no network, outcome `CircuitOpen`). After
//! [`BreakerConfig::cooldown_nanos`] of (virtual) time it admits probe
//! traffic in **half-open**: [`BreakerConfig::half_open_successes`]
//! consecutive successes close it again (window reset), any failure
//! re-opens it and restarts the cooldown.
//!
//! Half-open probes are **coalesced**: at most one admitted probe is in
//! flight at a time. While a probe is outstanding, further [`allow`] calls
//! return `false` (callers short-circuit to `CircuitOpen`) instead of
//! racing a thundering herd at a barely-recovered endpoint. A granted
//! probe must be resolved by [`record`] — or explicitly released with
//! [`abandon_probe`] if the caller gives up before dispatching.
//!
//! All time is the caller's virtual clock — the breaker never reads wall
//! time, which keeps federated executions deterministic.
//!
//! [`allow`]: CircuitBreaker::allow
//! [`record`]: CircuitBreaker::record
//! [`abandon_probe`]: CircuitBreaker::abandon_probe

/// Breaker tuning knobs. Defaults: 16-sample window, trip at ≥ 50% failures
/// over ≥ 8 samples, 100ms cooldown, 1 probe success to close.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BreakerConfig {
    /// Sliding window size in calls (clamped to 64).
    pub window: u32,
    /// Minimum samples in the window before the breaker may trip.
    pub min_samples: u32,
    /// Trip when `failures * 100 >= failure_rate_pct * samples`.
    pub failure_rate_pct: u8,
    /// Virtual nanoseconds an open breaker waits before admitting probes.
    pub cooldown_nanos: u64,
    /// Consecutive half-open successes required to close.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: 16,
            min_samples: 8,
            failure_rate_pct: 50,
            cooldown_nanos: 100_000_000,
            half_open_successes: 1,
        }
    }
}

/// Observable breaker state.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// One endpoint's breaker. Not thread-safe by itself — the executor keeps
/// each breaker behind its endpoint's runtime lock.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Last `len` results as bits (1 = failure), newest at `pos`.
    bits: u64,
    len: u32,
    pos: u32,
    failures: u32,
    opened_at: u64,
    half_open_ok: u32,
    /// True while a half-open probe has been admitted but not yet recorded.
    probe_in_flight: bool,
}

impl CircuitBreaker {
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        let config = BreakerConfig {
            window: config.window.clamp(1, 64),
            min_samples: config.min_samples.max(1),
            ..config
        };
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            bits: 0,
            len: 0,
            pos: 0,
            failures: 0,
            opened_at: 0,
            half_open_ok: 0,
            probe_in_flight: false,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// May a call proceed at virtual time `now`? Transitions open →
    /// half-open once the cooldown has elapsed. In half-open, admits at
    /// most one probe at a time: a `true` return claims the probe slot
    /// until the next [`CircuitBreaker::record`] (or
    /// [`CircuitBreaker::abandon_probe`]); concurrent callers get `false`.
    pub fn allow(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
            BreakerState::Open => {
                if now.saturating_sub(self.opened_at) >= self.config.cooldown_nanos {
                    self.state = BreakerState::HalfOpen;
                    self.half_open_ok = 0;
                    self.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Virtual nanoseconds until an *open* breaker would admit its next
    /// half-open probe, measured at virtual time `now`; `None` unless the
    /// breaker is open. `Some(0)` means the very next [`allow`] call will
    /// probe. This is the `Retry-After` signal for callers that surface an
    /// open breaker to their own clients.
    ///
    /// [`allow`]: CircuitBreaker::allow
    pub fn cooldown_remaining(&self, now: u64) -> Option<u64> {
        match self.state {
            BreakerState::Open => Some(
                self.opened_at
                    .saturating_add(self.config.cooldown_nanos)
                    .saturating_sub(now),
            ),
            BreakerState::Closed | BreakerState::HalfOpen => None,
        }
    }

    /// Release a probe slot claimed by [`CircuitBreaker::allow`] without
    /// recording a result — for callers that were admitted but bailed out
    /// (e.g. zero remaining deadline budget) before dispatching.
    pub fn abandon_probe(&mut self) {
        self.probe_in_flight = false;
    }

    /// Record a call result observed at virtual time `now`.
    pub fn record(&mut self, now: u64, ok: bool) {
        match self.state {
            BreakerState::Closed => {
                self.push_sample(ok);
                if self.len >= self.config.min_samples
                    && self.failures as u64 * 100
                        >= self.config.failure_rate_pct as u64 * self.len as u64
                {
                    self.trip(now);
                }
            }
            BreakerState::HalfOpen => {
                self.probe_in_flight = false;
                if ok {
                    self.half_open_ok += 1;
                    if self.half_open_ok >= self.config.half_open_successes {
                        self.state = BreakerState::Closed;
                        self.bits = 0;
                        self.len = 0;
                        self.pos = 0;
                        self.failures = 0;
                    }
                } else {
                    self.trip(now);
                }
            }
            // A late result while open (e.g. a racing in-flight call)
            // carries no information the breaker still needs.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: u64) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.half_open_ok = 0;
        self.probe_in_flight = false;
    }

    fn push_sample(&mut self, ok: bool) {
        let bit = 1u64 << self.pos;
        if self.len == self.config.window {
            // Window full: the slot at `pos` holds the oldest sample.
            if self.bits & bit != 0 {
                self.failures -= 1;
            }
        } else {
            self.len += 1;
        }
        if ok {
            self.bits &= !bit;
        } else {
            self.bits |= bit;
            self.failures += 1;
        }
        self.pos = (self.pos + 1) % self.config.window;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_rate_pct: 50,
            cooldown_nanos: 1_000,
            half_open_successes: 2,
        }
    }

    #[test]
    fn trips_at_failure_rate_and_fails_fast() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(0, true);
        b.record(1, false);
        b.record(2, true);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.record(3, false);
        assert_eq!(b.state(), BreakerState::Open, "2/4 failures = 50%");
        assert!(!b.allow(3), "open fails fast");
        assert!(!b.allow(1_002), "cooldown measured from trip time");
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..4 {
            b.record(t, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown elapses → half-open, probes admitted.
        assert!(b.allow(1_004));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // One success is not enough (half_open_successes = 2)...
        b.record(1_005, true);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // ...a failure re-opens and restarts the cooldown...
        b.record(1_006, false);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(1_500));
        // ...and two consecutive probe successes finally close it with a
        // fresh window.
        assert!(b.allow(2_006));
        b.record(2_007, true);
        b.record(2_008, true);
        assert_eq!(b.state(), BreakerState::Closed);
        // Fresh window: three failures alone don't reach min_samples.
        b.record(2_009, false);
        b.record(2_010, false);
        b.record(2_011, false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(2_012, false);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_admits_exactly_one_probe_at_a_time() {
        let mut b = CircuitBreaker::new(cfg());
        for t in 0..4 {
            b.record(t, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // The cooldown-elapsing caller claims the probe slot...
        assert!(b.allow(1_004));
        // ...and every further caller is short-circuited until the probe
        // resolves, even though the breaker is half-open.
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(1_004));
        assert!(!b.allow(1_900));
        // Resolving the probe frees the slot for the next single probe.
        b.record(1_950, true);
        assert!(b.allow(1_951));
        assert!(!b.allow(1_951));
        // An abandoned probe (admitted, never dispatched) must not wedge
        // the endpoint in permanent fast-fail.
        b.abandon_probe();
        assert!(b.allow(1_952));
    }

    #[test]
    fn concurrent_half_open_callers_race_for_one_probe() {
        use std::sync::Mutex;
        let b = Mutex::new(CircuitBreaker::new(cfg()));
        {
            let mut b = b.lock().unwrap();
            for t in 0..4 {
                b.record(t, false);
            }
            assert_eq!(b.state(), BreakerState::Open);
        }
        // Two threads arrive together after the cooldown on the same
        // virtual instant: exactly one may probe.
        let grants: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|_| s.spawn(|| b.lock().unwrap().allow(2_000)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            grants.iter().filter(|&&g| g).count(),
            1,
            "exactly one of two concurrent callers may probe, got {grants:?}"
        );
        // The winning probe's success closes the breaker for everyone.
        let mut b = b.into_inner().unwrap();
        b.record(2_001, true);
        b.record(2_002, true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_remaining_tracks_the_half_open_eta() {
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.cooldown_remaining(0), None, "closed breaker has no ETA");
        for t in 0..4 {
            b.record(t, false);
        }
        // Tripped at t=3, cooldown 1_000 → probe admitted at t=1_003.
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.cooldown_remaining(3), Some(1_000));
        assert_eq!(b.cooldown_remaining(503), Some(500));
        assert_eq!(b.cooldown_remaining(2_000), Some(0), "ETA saturates at 0");
        // Half-open (probe claimed) is no longer "open": no ETA.
        assert!(b.allow(1_003));
        assert_eq!(b.cooldown_remaining(1_003), None);
    }

    #[test]
    fn sliding_window_evicts_old_samples() {
        let mut b = CircuitBreaker::new(cfg());
        // Two early failures spread through a healthy stream — never ≥ 50%
        // at any prefix past min_samples, so the breaker stays closed.
        for (t, ok) in [true, false, true, true, false, true, true, true]
            .into_iter()
            .enumerate()
        {
            b.record(t as u64, ok);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Eight successes slide both failures out of the window entirely.
        for t in 8..16 {
            b.record(t, true);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Three fresh failures are 3/8 < 50% — the evicted history doesn't
        // count against the endpoint...
        b.record(16, false);
        b.record(17, false);
        b.record(18, false);
        assert_eq!(b.state(), BreakerState::Closed);
        // ...but the fourth reaches 4/8 and trips.
        b.record(19, false);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
