//! Pluggable endpoint transport and the seeded fault-injecting mock.

use std::sync::atomic::{AtomicU64, Ordering};

use super::{mix_chain, EndpointId};

/// One subquery dispatch to one endpoint.
#[derive(Copy, Clone, Debug)]
pub struct TransportRequest<'a> {
    pub endpoint: EndpointId,
    /// Rendered `SELECT * WHERE { ... }` subquery text.
    pub query: &'a str,
    /// 1-based attempt number within the current execution (retries
    /// increment it).
    pub attempt: u32,
    /// Remaining deadline budget in virtual nanoseconds. Real transports
    /// should give up once this is spent; the executor treats any reply
    /// whose latency meets or exceeds it as a timeout.
    pub budget_nanos: u64,
}

/// Transport-level failure classification, which drives retry policy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TransportError {
    /// Worth retrying (connection reset, 503, overload shedding, ...).
    Transient,
    /// Retrying cannot help (malformed endpoint, auth refusal, 4xx, ...).
    Permanent,
}

impl TransportError {
    #[inline]
    pub fn is_transient(self) -> bool {
        self == TransportError::Transient
    }

    #[inline]
    pub fn is_permanent(self) -> bool {
        self == TransportError::Permanent
    }
}

/// Retry classification of an HTTP status code, per the taxonomy the real
/// transport and the chaos soak gate share: 2xx is success (`None`);
/// 408/425/429 and every 5xx are load or availability signals worth
/// retrying; everything else (including 3xx — the transport does not
/// follow redirects) indicates a request or endpoint problem retries
/// cannot fix.
pub fn classify_http_status(status: u16) -> Option<TransportError> {
    match status {
        200..=299 => None,
        408 | 425 | 429 | 500..=599 => Some(TransportError::Transient),
        _ => Some(TransportError::Permanent),
    }
}

/// Retry classification of a socket-level error kind: connection-shaped
/// failures (refusal, reset, abort, premature EOF, broken pipe) are
/// transient peer conditions; address/configuration failures are
/// permanent; anything unrecognized defaults to transient so a flaky
/// kernel edge never permanently blacklists an endpoint.
pub fn classify_io_error(kind: std::io::ErrorKind) -> TransportError {
    use std::io::ErrorKind as K;
    match kind {
        K::AddrNotAvailable | K::InvalidInput | K::Unsupported => TransportError::Permanent,
        _ => TransportError::Transient,
    }
}

/// What came back: how long the attempt took (virtual nanoseconds) and
/// either the response payload or a classified error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransportReply {
    pub latency_nanos: u64,
    pub payload: Result<String, TransportError>,
}

/// How subqueries reach endpoints. Implementations must be shareable
/// across the executor's worker threads. The in-tree implementation is the
/// fault-injecting [`MockTransport`]; a real HTTP transport slots in here
/// (see ROADMAP).
pub trait EndpointTransport: Send + Sync {
    fn execute(&self, req: &TransportRequest<'_>) -> TransportReply;
}

/// Per-endpoint fault-injection profile for [`MockTransport`]. All draws
/// come from a seeded stream indexed by (seed, endpoint, request number),
/// so a given seed replays the exact same fault schedule.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FaultSpec {
    /// Floor latency of a successful or failed attempt.
    pub base_latency_nanos: u64,
    /// Uniform extra latency in `[0, jitter_nanos)`.
    pub jitter_nanos: u64,
    /// Percent of requests that fail with [`TransportError::Transient`].
    pub transient_pct: u8,
    /// Percent of requests that fail with [`TransportError::Permanent`].
    pub permanent_pct: u8,
    /// Percent of requests whose latency blows past any budget (the
    /// executor will classify them as timed out).
    pub timeout_pct: u8,
    /// Flapping: when non-zero, requests are windowed in runs of
    /// `flap_period`; every odd window the endpoint is down (all requests
    /// fail transiently), every even window the percentages above apply.
    pub flap_period: u64,
}

impl Default for FaultSpec {
    /// A healthy endpoint: 1ms ± 0.5ms latency, no faults.
    fn default() -> FaultSpec {
        FaultSpec {
            base_latency_nanos: 1_000_000,
            jitter_nanos: 500_000,
            transient_pct: 0,
            permanent_pct: 0,
            timeout_pct: 0,
            flap_period: 0,
        }
    }
}

impl FaultSpec {
    /// `default()` plus a transient-failure rate — the soak-test profile.
    pub fn transient(pct: u8) -> FaultSpec {
        FaultSpec {
            transient_pct: pct,
            ..FaultSpec::default()
        }
    }
}

/// Deterministic fault-injecting transport for tests and benches: latency,
/// error class, and flapping are pure functions of (seed, endpoint,
/// per-endpoint request number). Request numbers are per-endpoint atomic
/// counters, and the executor serializes calls per endpoint, so concurrent
/// executions over distinct endpoints cannot perturb each other's streams.
pub struct MockTransport {
    seed: u64,
    specs: Vec<FaultSpec>,
    counters: Vec<AtomicU64>,
}

impl MockTransport {
    pub fn new(seed: u64, specs: Vec<FaultSpec>) -> MockTransport {
        let counters = specs.iter().map(|_| AtomicU64::new(0)).collect();
        MockTransport {
            seed,
            specs,
            counters,
        }
    }

    /// Total requests this endpoint has seen (including failed attempts).
    pub fn requests_seen(&self, endpoint: EndpointId) -> u64 {
        self.counters[endpoint.0 as usize].load(Ordering::Relaxed)
    }
}

/// FNV-1a over the query text: stamps mock and chaos-proxy payloads so
/// tests can tell which subquery produced which rows.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl EndpointTransport for MockTransport {
    fn execute(&self, req: &TransportRequest<'_>) -> TransportReply {
        let e = req.endpoint.0 as usize;
        let spec = &self.specs[e];
        let n = self.counters[e].fetch_add(1, Ordering::Relaxed);
        let h = mix_chain(self.seed, &[e as u64, n]);
        let mut latency = spec.base_latency_nanos
            + if spec.jitter_nanos > 0 {
                h % spec.jitter_nanos
            } else {
                0
            };
        let flapping_down = spec.flap_period > 0 && (n / spec.flap_period) % 2 == 1;
        let roll = (mix_chain(self.seed, &[e as u64, n, 1]) % 100) as u8;
        let payload = if flapping_down || roll < spec.transient_pct {
            Err(TransportError::Transient)
        } else if roll < spec.transient_pct.saturating_add(spec.permanent_pct) {
            Err(TransportError::Permanent)
        } else if roll
            < spec
                .transient_pct
                .saturating_add(spec.permanent_pct)
                .saturating_add(spec.timeout_pct)
        {
            // A stall: latency exceeds any plausible budget.
            latency = u64::MAX / 4;
            Ok(String::new())
        } else {
            Ok(format!("ep{e}#r{n}:{:016x}", fnv1a(req.query)))
        };
        TransportReply {
            latency_nanos: latency,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(endpoint: u32, query: &str) -> TransportRequest<'_> {
        TransportRequest {
            endpoint: EndpointId(endpoint),
            query,
            attempt: 1,
            budget_nanos: u64::MAX / 2,
        }
    }

    #[test]
    fn http_status_classification_matches_the_documented_taxonomy() {
        assert_eq!(classify_http_status(200), None);
        assert_eq!(classify_http_status(204), None);
        for s in [408u16, 425, 429, 500, 502, 503, 504, 599] {
            assert_eq!(
                classify_http_status(s),
                Some(TransportError::Transient),
                "status {s}"
            );
        }
        for s in [301u16, 400, 401, 403, 404, 410, 418] {
            assert_eq!(
                classify_http_status(s),
                Some(TransportError::Permanent),
                "status {s}"
            );
        }
    }

    #[test]
    fn io_error_kinds_classify_conservatively() {
        use std::io::ErrorKind as K;
        for k in [
            K::ConnectionRefused,
            K::ConnectionReset,
            K::ConnectionAborted,
            K::UnexpectedEof,
            K::BrokenPipe,
            K::TimedOut,
            K::WouldBlock,
            K::Other,
        ] {
            assert!(classify_io_error(k).is_transient(), "{k:?}");
        }
        for k in [K::AddrNotAvailable, K::InvalidInput, K::Unsupported] {
            assert!(classify_io_error(k).is_permanent(), "{k:?}");
        }
    }

    #[test]
    fn same_seed_replays_the_same_fault_schedule() {
        let make =
            || MockTransport::new(99, vec![FaultSpec::transient(30), FaultSpec::transient(30)]);
        let a = make();
        let b = make();
        for i in 0..200 {
            let ep = (i % 2) as u32;
            let ra = a.execute(&req(ep, "SELECT * WHERE { ?s ?p ?o }"));
            let rb = b.execute(&req(ep, "SELECT * WHERE { ?s ?p ?o }"));
            assert_eq!(ra, rb, "request {i} diverged");
        }
        assert_eq!(a.requests_seen(EndpointId(0)), 100);
    }

    #[test]
    fn fault_rates_track_the_spec() {
        let t = MockTransport::new(7, vec![FaultSpec::transient(30)]);
        let mut failures = 0;
        for _ in 0..1000 {
            if t.execute(&req(0, "q")).payload.is_err() {
                failures += 1;
            }
        }
        // 30% nominal; the seeded stream should land well within ±7pp.
        assert!(
            (230..=370).contains(&failures),
            "{failures} transient failures in 1000"
        );
    }

    #[test]
    fn flapping_windows_alternate_up_and_down() {
        let spec = FaultSpec {
            flap_period: 10,
            ..FaultSpec::default()
        };
        let t = MockTransport::new(3, vec![spec]);
        let mut pattern = Vec::new();
        for _ in 0..40 {
            pattern.push(t.execute(&req(0, "q")).payload.is_ok());
        }
        assert!(pattern[..10].iter().all(|&ok| ok), "first window up");
        assert!(pattern[10..20].iter().all(|&ok| !ok), "second window down");
        assert!(pattern[20..30].iter().all(|&ok| ok), "third window up");
        assert!(pattern[30..].iter().all(|&ok| !ok), "fourth window down");
    }

    #[test]
    fn latency_stays_within_base_plus_jitter() {
        let t = MockTransport::new(11, vec![FaultSpec::default()]);
        for _ in 0..100 {
            let r = t.execute(&req(0, "q"));
            assert!(r.latency_nanos >= 1_000_000 && r.latency_nanos < 1_500_000);
        }
    }
}
