//! Test/bench support: a counting wrapper around the system allocator.
//!
//! Shared by the core crate's `tests/alloc_free.rs` and the bench harness
//! so the two zero-allocation checks count identically and cannot drift.
//! Each binary that wants counting must still register it itself:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: sparql_rewrite_core::counting_alloc::CountingAllocator =
//!     sparql_rewrite_core::counting_alloc::CountingAllocator;
//! ```
//!
//! Counts every `alloc`/`alloc_zeroed`/`realloc`; frees are irrelevant to
//! the zero-allocation claim. The counter is process-global — callers that
//! measure a window must ensure nothing else allocates concurrently (e.g.
//! serialize tests around it).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

pub struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Total allocation events since process start (or since the last
/// snapshot's baseline — callers diff two reads).
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}
