//! Sharded rewrite-result cache: serve repeated queries at memcpy speed.
//!
//! The rewriting model is deterministic per (query text, rule set): over a
//! frozen [`crate::align::AlignmentStore`], the same request text always
//! yields the same rewritten text. Real linked-data endpoints see heavily
//! skewed, repeated query workloads, so a serve path that re-runs the full
//! ~µs parse → rewrite → render pipeline for a text it rendered a
//! microsecond ago is leaving an order of magnitude on the table. This
//! module provides the two pieces that close that gap:
//!
//! 1. [`fingerprint_query`] — a **single-pass byte-level canonicalizer**
//!    that maps every textual spelling of one logical query to one 64-bit
//!    fingerprint (plus a canonical-length tag) without allocating and
//!    without parsing: whitespace/comments collapse to single separators,
//!    keywords case-normalize, `$x` normalizes to `?x`, language tags
//!    lowercase, and QNames resolve against the query's own PREFIX table to
//!    their full-IRI spelling (the prologue itself contributes nothing, so
//!    alias renames and unused declarations don't split the cache entry).
//!    A probe therefore costs normalize + hash + memcpy instead of
//!    parse + rewrite + render.
//! 2. [`RewriteCache`] — a sharded, **read-lock-free** map from fingerprint
//!    to rendered rewrite: N power-of-two shards, each a fixed-capacity
//!    open-addressed table of seqlock-versioned slots over a flat
//!    pre-allocated value pool. Readers never block and never allocate;
//!    writers (cache fills) serialize behind a short per-shard spinlock.
//!    Eviction is CLOCK-style second chance over the probe neighborhood.
//!
//! # Conservative canonicalization
//!
//! The canonicalizer must never map two queries with *different* rewrites
//! to one fingerprint, so it only applies transformations the parser itself
//! makes semantically invisible (each one mirrors a documented parser
//! behavior). Spellings it cannot prove equivalent simply fingerprint
//! differently — a harmless missed hit. Text it cannot confidently scan
//! (undeclared prefixes, unterminated tokens — text the parser would reject
//! anyway) returns `None` and the caller serves cold without touching the
//! cache.
//!
//! # Invalidation contract
//!
//! Entries are stamped with a **generation** — by convention the owning
//! store's [`crate::align::AlignmentStore::revision`]. Every `add_*` after
//! a freeze bumps the revision, so all entries cached under the old rule
//! set lazily miss (and become preferred eviction victims), mirroring how
//! the same `add_*` invalidates the dense dispatch tables. No eager scan,
//! no epoch machinery: correctness is a single integer compare per probe.
//!
//! # Memory model
//!
//! The value pool is a flat array of `AtomicU64` words, so concurrent
//! read/overwrite is a *defined* race: a reader that overlaps a writer sees
//! torn words, fails the seqlock version check, and treats the probe as a
//! miss. No `unsafe` anywhere — "memcpy speed" here is a relaxed-atomic
//! word copy, which compiles to the same wide loads/stores.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

use crate::parser::{is_iri_byte, is_name_byte};
use crate::smallvec::SmallVec;

/// Byte-class bitmap baked from the parser's classifiers at compile time:
/// bit 0 = name byte, bit 1 = IRIREF body byte. One table load replaces a
/// chain of range compares in the scanner's per-byte loops, and building
/// it *from* `parser::is_name_byte` / `is_iri_byte` means the scanner can
/// never drift from the tokenizer.
static CLASS: [u8; 256] = {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        let c = i as u8;
        if is_name_byte(c) {
            t[i] |= 1;
        }
        if is_iri_byte(c) {
            t[i] |= 2;
        }
        i += 1;
    }
    t
};

#[inline]
fn name_byte(c: u8) -> bool {
    CLASS[c as usize] & 1 != 0
}

#[inline]
fn iri_byte(c: u8) -> bool {
    CLASS[c as usize] & 2 != 0
}

/// Keywords the parser matches case-insensitively; the canonicalizer feeds
/// them uppercased so `select` and `SELECT` fingerprint identically. (`a`,
/// `true`, and `false` are matched case-sensitively by the parser and are
/// deliberately absent.)
const KEYWORDS: &[&str] = &[
    "SELECT", "WHERE", "PREFIX", "OPTIONAL", "UNION", "FILTER", "GRAPH", "SERVICE", "MINUS",
];

/// Canonical identity of one query text: a 64-bit hash of the normalized
/// byte stream plus the stream's length as a cheap secondary discriminator
/// (two queries must collide on both to alias).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct QueryFingerprint {
    /// Hash of the normalized byte stream; never 0 (0 is the vacant-slot
    /// sentinel, real hashes are remapped).
    hash: u64,
    /// Length of the normalized byte stream.
    norm_len: u32,
}

impl QueryFingerprint {
    /// Construct from raw parts. Exposed for tests and for callers that
    /// key the cache by something other than SPARQL text; `hash == 0` is
    /// remapped to 1 (0 is the vacant-slot sentinel).
    pub fn from_parts(hash: u64, norm_len: u32) -> QueryFingerprint {
        QueryFingerprint {
            hash: if hash == 0 { 1 } else { hash },
            norm_len,
        }
    }
}

/// Streaming 64-bit hash over the normalized byte stream.
///
/// Bytes accumulate in a small stack buffer and are digested 8 at a time
/// (Fx-style rotate-xor-multiply over little-endian words), so the digest
/// depends only on the byte *stream*, never on how the scanner chunks its
/// `push_bytes` calls — a QName expanded as three slices (`<`, base,
/// local) hashes identically to the same IRI fed as one slice. Buffering
/// instead of packing a word incrementally keeps the per-byte hot path at
/// one store + one increment; the mix loop runs on whole cache-resident
/// words when the buffer drains.
struct Fingerprinter {
    hash: u64,
    buf: [u8; Self::BUF],
    buf_len: usize,
    len: u32,
}

/// Per-process random fingerprint seed. Query text is attacker-controlled
/// at a public endpoint and the digest function is public, so an *unseeded*
/// hash would let an adversary precompute two distinct queries with one
/// fingerprint offline and poison the cache (query A served query B's
/// rewrite). Folding OS entropy into the initial state (via `RandomState`,
/// the same source `HashMap` uses for its DoS resistance) makes the
/// colliding pair depend on a value the attacker never sees. Fingerprints
/// are therefore stable within a process — all a cache key needs — but
/// deliberately differ across processes.
fn process_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::OnceLock;
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(0x5eed);
        h.finish()
    })
}

impl Fingerprinter {
    const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
    const K: u64 = 0x517c_c1b7_2722_0a95;
    /// Multiple of 8 so a full drain leaves no remainder.
    const BUF: usize = 256;

    fn new() -> Fingerprinter {
        Fingerprinter {
            hash: Self::SEED ^ process_seed(),
            buf: [0; Self::BUF],
            buf_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::K);
    }

    /// Digest every complete 8-byte word in the buffer; the 0–7 byte tail
    /// moves to the front and stays pending (stream chunking must not
    /// influence word boundaries).
    fn drain(&mut self) {
        let words = self.buf_len / 8;
        for i in 0..words {
            let w = u64::from_le_bytes(self.buf[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
            self.mix(w);
        }
        let rem = self.buf_len % 8;
        self.buf.copy_within(words * 8..self.buf_len, 0);
        self.buf_len = rem;
    }

    #[inline]
    fn push(&mut self, b: u8) {
        if self.buf_len == Self::BUF {
            self.drain();
        }
        self.buf[self.buf_len] = b;
        self.buf_len += 1;
        self.len = self.len.wrapping_add(1);
    }

    #[inline]
    fn push_bytes(&mut self, s: &[u8]) {
        let mut s = s;
        while !s.is_empty() {
            let room = Self::BUF - self.buf_len;
            if room == 0 {
                self.drain();
                continue;
            }
            let take = room.min(s.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&s[..take]);
            self.buf_len += take;
            self.len = self.len.wrapping_add(take as u32);
            s = &s[take..];
        }
    }

    fn finish(mut self) -> QueryFingerprint {
        self.drain();
        if self.buf_len > 0 {
            // Pack the 1–7 byte tail, tagged with its length so trailing
            // NULs in the stream can't alias an empty tail.
            let mut w = (self.buf_len as u64) << 56;
            for (i, &b) in self.buf[..self.buf_len].iter().enumerate() {
                w |= (b as u64) << (8 * i);
            }
            self.mix(w);
        }
        let len = self.len;
        self.mix(len as u64);
        // Fold high-bit entropy down (Fx's multiply drives it upward) so
        // both the shard selector and the slot index see mixed bits.
        let h = self.hash;
        QueryFingerprint::from_parts(h ^ (h >> 32), len)
    }
}

/// One `PREFIX name: <iri>` binding as byte spans into the scanned input.
/// Spans (not slices) keep the scratch `Copy + Default` for [`SmallVec`].
#[derive(Copy, Clone, Default)]
struct PrefixBinding {
    name_start: u32,
    name_end: u32,
    iri_start: u32,
    iri_end: u32,
}

/// Single-pass canonicalizing scanner. Mirrors the parser's tokenizer
/// byte-for-byte (same `is_name_byte` / `is_iri_byte` classifiers) but
/// feeds a [`Fingerprinter`] instead of building tokens.
struct Scanner<'a> {
    input: &'a str,
    pos: usize,
    fp: Fingerprinter,
    prefixes: SmallVec<PrefixBinding, 8>,
    /// Whether any token has been fed yet (controls separators).
    any: bool,
}

impl<'a> Scanner<'a> {
    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes()
    }

    fn skip_trivia(&mut self) {
        let b = self.bytes();
        while self.pos < b.len() {
            match b[self.pos] {
                b' ' | b'\t' | b'\r' | b'\n' => self.pos += 1,
                b'#' => {
                    while self.pos < b.len() && b[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Start a new token in the normalized stream: whitespace runs between
    /// tokens collapse to exactly one separator byte.
    #[inline]
    fn sep(&mut self) {
        if self.any {
            self.fp.push(b' ');
        }
        self.any = true;
    }

    /// Resolve `prefix` against the scanned PREFIX table; later
    /// declarations shadow earlier ones, matching the parser.
    fn lookup_prefix(&self, prefix: &str) -> Option<&'a str> {
        self.prefixes.as_slice().iter().rev().find_map(|p| {
            let name = &self.input[p.name_start as usize..p.name_end as usize];
            (name == prefix).then(|| &self.input[p.iri_start as usize..p.iri_end as usize])
        })
    }

    /// Consume a name-byte run (possibly containing one `:`, like the
    /// tokenizer's word/QName scan) and return `(text, has_colon)`.
    fn scan_name_token(&mut self) -> (&'a str, bool) {
        let b = self.bytes();
        let start = self.pos;
        let mut has_colon = false;
        while self.pos < b.len() && (name_byte(b[self.pos]) || (b[self.pos] == b':' && !has_colon))
        {
            if b[self.pos] == b':' {
                has_colon = true;
            }
            self.pos += 1;
        }
        (&self.input[start..self.pos], has_colon)
    }

    /// Scan the PREFIX prologue, recording bindings without feeding any
    /// bytes: the prologue only defines aliases, and every QName is fed in
    /// its resolved full-IRI spelling, so the declarations themselves are
    /// canonically invisible (alias renames, reordering, and unused
    /// prefixes all fingerprint identically).
    fn scan_prologue(&mut self) -> Option<()> {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let b = self.bytes();
            let Some(&c) = b.get(self.pos) else {
                return Some(());
            };
            if !(name_byte(c) && c != b':') {
                return Some(());
            }
            let (word, has_colon) = self.scan_name_token();
            if has_colon || !word.eq_ignore_ascii_case("PREFIX") {
                self.pos = start;
                return Some(());
            }
            self.skip_trivia();
            // `name:` — name bytes then a colon, nothing else (a QName with
            // a non-final colon is a parse error; bail to the cold path).
            let (name, has_colon) = self.scan_name_token();
            if !has_colon || !name.ends_with(':') {
                return None;
            }
            let name = &name[..name.len() - 1];
            self.skip_trivia();
            let b = self.bytes();
            if b.get(self.pos) != Some(&b'<') {
                return None;
            }
            let iri_start = self.pos + 1;
            let mut end = iri_start;
            while end < b.len() && iri_byte(b[end]) {
                end += 1;
            }
            if b.get(end) != Some(&b'>') {
                return None;
            }
            self.pos = end + 1;
            let base = self.input.as_ptr() as usize;
            let name_start = (name.as_ptr() as usize - base) as u32;
            self.prefixes.push(PrefixBinding {
                name_start,
                name_end: name_start + name.len() as u32,
                iri_start: iri_start as u32,
                iri_end: end as u32,
            });
        }
    }

    /// Feed a QName in its resolved `<base + local>` spelling, so the
    /// aliased and full-IRI spellings of one term share a fingerprint.
    fn feed_qname(&mut self, qname: &str) -> Option<()> {
        let colon = qname.find(':')?;
        let base = self.lookup_prefix(&qname[..colon])?;
        self.fp.push(b'<');
        self.fp.push_bytes(base.as_bytes());
        self.fp.push_bytes(&qname.as_bytes()[colon + 1..]);
        self.fp.push(b'>');
        Some(())
    }

    /// Scan a literal starting at the opening quote; feeds the body
    /// verbatim, the language tag lowercased (the parser interns `"x"@EN`
    /// and `"x"@en` to one symbol), and a QName datatype in its expanded
    /// `^^<iri>` spelling (ditto).
    fn scan_literal(&mut self) -> Option<()> {
        let b = self.bytes();
        let start = self.pos;
        self.pos += 1;
        loop {
            match b.get(self.pos) {
                None => return None,
                Some(b'\\') => {
                    if self.pos + 1 >= b.len() {
                        return None;
                    }
                    self.pos += 2;
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => self.pos += 1,
            }
        }
        self.fp.push_bytes(&b[start..self.pos]);
        if b.get(self.pos) == Some(&b'@') {
            self.pos += 1;
            self.fp.push(b'@');
            let tag_start = self.pos;
            while self
                .bytes()
                .get(self.pos)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'-')
            {
                self.fp.push(b[self.pos].to_ascii_lowercase());
                self.pos += 1;
            }
            if self.pos == tag_start {
                return None;
            }
        } else if b.get(self.pos) == Some(&b'^') && b.get(self.pos + 1) == Some(&b'^') {
            self.pos += 2;
            self.fp.push_bytes(b"^^");
            if b.get(self.pos) == Some(&b'<') {
                let dt_start = self.pos;
                self.pos += 1;
                while self.pos < b.len() && b[self.pos] != b'>' {
                    self.pos += 1;
                }
                if b.get(self.pos) != Some(&b'>') {
                    return None;
                }
                self.pos += 1;
                self.fp.push_bytes(&b[dt_start..self.pos]);
            } else {
                let (dtype, has_colon) = self.scan_name_token();
                if dtype.is_empty() || !has_colon {
                    return None;
                }
                self.feed_qname(dtype)?;
            }
        }
        Some(())
    }

    /// Scan a bare numeric literal exactly like the tokenizer (fraction dot
    /// consumed only when a digit follows) and feed it verbatim.
    fn scan_numeric(&mut self) -> Option<()> {
        let b = self.bytes();
        let start = self.pos;
        if b[self.pos] == b'+' || b[self.pos] == b'-' {
            self.pos += 1;
        }
        while b.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if b.get(self.pos) == Some(&b'.') && b.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
            while b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        }
        if b.get(self.pos).is_some_and(|&c| name_byte(c)) {
            return None;
        }
        self.fp.push_bytes(&b[start..self.pos]);
        Some(())
    }

    /// Scan the query body token by token.
    fn scan_body(&mut self) -> Option<()> {
        loop {
            self.skip_trivia();
            let b = self.bytes();
            let Some(&c) = b.get(self.pos) else {
                return Some(());
            };
            self.sep();
            match c {
                b'{' | b'}' | b'(' | b')' | b'.' | b';' | b',' | b'*' | b'=' => {
                    self.pos += 1;
                    self.fp.push(c);
                }
                b'!' | b'>' => {
                    self.pos += 1;
                    self.fp.push(c);
                    if self.bytes().get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        self.fp.push(b'=');
                    }
                }
                b'&' | b'|' => {
                    if b.get(self.pos + 1) != Some(&c) {
                        return None;
                    }
                    self.pos += 2;
                    self.fp.push(c);
                    self.fp.push(c);
                }
                b'<' => {
                    // IRI if a `>`-terminated IRIREF body follows, else the
                    // `<` / `<=` operator — same disambiguation as the
                    // tokenizer's `scan_angle`.
                    let mut end = self.pos + 1;
                    while end < b.len() && iri_byte(b[end]) {
                        end += 1;
                    }
                    if b.get(end) == Some(&b'>') {
                        self.fp.push_bytes(&b[self.pos..end + 1]);
                        self.pos = end + 1;
                    } else {
                        self.pos += 1;
                        self.fp.push(b'<');
                        if self.bytes().get(self.pos) == Some(&b'=') {
                            self.pos += 1;
                            self.fp.push(b'=');
                        }
                    }
                }
                b'?' | b'$' => {
                    // `$x` and `?x` parse identically; canonical sigil `?`.
                    self.pos += 1;
                    let (name, has_colon) = self.scan_name_token();
                    if name.is_empty() || has_colon {
                        return None;
                    }
                    self.fp.push(b'?');
                    self.fp.push_bytes(name.as_bytes());
                }
                b'"' => self.scan_literal()?,
                b'_' if b.get(self.pos + 1) == Some(&b':') => {
                    self.pos += 2;
                    let (name, has_colon) = self.scan_name_token();
                    if name.is_empty() || has_colon {
                        return None;
                    }
                    self.fp.push_bytes(b"_:");
                    self.fp.push_bytes(name.as_bytes());
                }
                c if c.is_ascii_digit() => self.scan_numeric()?,
                b'+' | b'-' if b.get(self.pos + 1).is_some_and(u8::is_ascii_digit) => {
                    self.scan_numeric()?
                }
                c if name_byte(c) || c == b':' => {
                    let (text, has_colon) = self.scan_name_token();
                    if has_colon {
                        self.feed_qname(text)?;
                    } else if let Some(kw) = KEYWORDS.iter().find(|k| text.eq_ignore_ascii_case(k))
                    {
                        self.fp.push_bytes(kw.as_bytes());
                    } else {
                        self.fp.push_bytes(text.as_bytes());
                    }
                }
                _ => return None,
            }
        }
    }
}

/// Canonicalize and fingerprint one query text in a single pass — no
/// allocation (up to 8 PREFIX declarations; more spill a scratch vector),
/// no parsing, ~100ns for a typical request.
///
/// Returns `None` for text the scanner cannot confidently canonicalize
/// (undeclared prefixes, unterminated tokens, bytes outside the grammar) —
/// exactly the texts the parser rejects. The caller should serve such
/// requests through the cold path without touching the cache.
pub fn fingerprint_query(text: &str) -> Option<QueryFingerprint> {
    let mut scanner = Scanner {
        input: text,
        pos: 0,
        fp: Fingerprinter::new(),
        prefixes: SmallVec::new(),
        any: false,
    };
    scanner.scan_prologue()?;
    scanner.scan_body()?;
    Some(scanner.fp.finish())
}

/// Fingerprint the **raw** bytes of a request — no canonicalization, pure
/// word-at-a-time hashing (a few ns per 100 bytes). This is the first-level
/// cache key for byte-identical repeats, which dominate real endpoint
/// traffic (clients re-send the same string); [`fingerprint_query`] is the
/// second level that folds re-*spellings* onto one entry.
///
/// Safe to mix with canonical fingerprints in one [`RewriteCache`]: the
/// canonical stream of a query is itself a valid spelling of that query
/// (single separators, expanded IRIs, normalized keywords), so even a text
/// whose raw bytes *are* some query's canonical stream maps to the same
/// rewrite either way.
pub fn fingerprint_raw(text: &str) -> QueryFingerprint {
    let mut fp = Fingerprinter::new();
    fp.push_bytes(text.as_bytes());
    fp.finish()
}

/// Linear-probe window: an entry lives within `PROBE` slots of its home
/// index, so lookups touch a bounded neighborhood and eviction (which must
/// keep entries findable) picks victims inside the same window.
const PROBE: usize = 8;

/// Sizing knobs for [`RewriteCache`]. Shard and slot counts round up to
/// powers of two; `value_cap` rounds up to a multiple of 8 (the pool is
/// word-granular). Defaults: 8 shards × 1024 slots × 2 KiB ≈ 16 MiB of
/// value pool — thousands of distinct hot queries, far beyond the hot set
/// of a skewed endpoint workload.
#[derive(Copy, Clone, Debug)]
pub struct CacheConfig {
    pub shards: usize,
    pub slots_per_shard: usize,
    /// Maximum cacheable rendered-rewrite size in bytes; longer results are
    /// simply not cached.
    pub value_cap: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 8,
            slots_per_shard: 1024,
            value_cap: 2048,
        }
    }
}

/// Slot metadata. The value bytes live in the shard's word pool at the
/// slot's fixed offset; `version` is a seqlock (odd = write in progress)
/// that makes the fp/gen/len/value group read consistently without locks.
struct Slot {
    version: AtomicU32,
    /// CLOCK reference bit: set on hit, cleared by the eviction hand.
    refbit: AtomicU32,
    /// Fingerprint hash; 0 = never written.
    fp: AtomicU64,
    norm_len: AtomicU32,
    /// Generation (store revision) the entry was rendered under.
    gen: AtomicU64,
    /// Value length in bytes (≤ `value_cap`).
    val_len: AtomicU32,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU32::new(0),
            refbit: AtomicU32::new(0),
            fp: AtomicU64::new(0),
            norm_len: AtomicU32::new(0),
            gen: AtomicU64::new(0),
            val_len: AtomicU32::new(0),
        }
    }
}

struct Shard {
    /// Writer spinlock: fills/evictions are rare relative to hits and
    /// complete in sub-µs, so a spin (not a parking mutex) keeps the write
    /// path dependency-free and the struct `const`-free.
    lock: AtomicU32,
    /// CLOCK hand: rotating start offset within the probe window.
    hand: AtomicU32,
    slots: Box<[Slot]>,
    /// Flat value pool: `slots.len() * words_per_slot` relaxed-atomic words.
    /// Racing reads of words being overwritten are defined behavior; the
    /// seqlock version check discards torn copies.
    pool: Box<[AtomicU64]>,
    /// Inserts refused because the value exceeded `value_cap`. Oversized
    /// rewrites (UNION blowups) are the queries that would benefit most
    /// from caching, so the bypass rate is an observability signal, not
    /// noise — surfaced via [`RewriteCache::oversize_bypasses`].
    bypassed: AtomicU64,
    /// Probe-level hit/miss counters (one lookup = one count; the serve
    /// engine's two-level raw→canonical keying therefore books a
    /// canonical hit as one miss *and* one hit — see [`CacheStats`]).
    hits: AtomicU64,
    misses: AtomicU64,
    /// Live entries overwritten by an insert for a *different* key —
    /// capacity pressure made visible (refreshes of the same key are not
    /// evictions).
    evictions: AtomicU64,
}

/// Point-in-time observability snapshot of one shard, taken by
/// [`RewriteCache::stats`].
#[derive(Copy, Clone, Default, Debug)]
pub struct ShardCacheStats {
    /// Slots holding a written entry (never decreases: slots are
    /// overwritten, not emptied).
    pub occupancy: usize,
    /// Total slots in the shard.
    pub slots: usize,
    /// Probe-level lookup hits/misses (see [`CacheStats::hit_ratio`] for
    /// the caveat on two-level keying).
    pub hits: u64,
    pub misses: u64,
    /// Live entries overwritten by an insert under a different key.
    pub evictions: u64,
    /// Inserts refused because the value exceeded the cache's value cap.
    pub oversize_bypasses: u64,
}

/// Aggregated cache observability: per-shard occupancy, eviction, and
/// hit/miss counters, snapshotted without stopping traffic (counters are
/// relaxed atomics; occupancy is a racy-but-monotone scan).
///
/// Hit/miss counters are **probe-level**: every [`RewriteCache::lookup`]
/// books exactly one hit or miss. A caller probing the same cache under
/// two keys per request (the serve engine's raw→canonical levels) will
/// therefore see a lower probe hit ratio than its request-level hit rate
/// — both are real signals, they answer different questions.
#[derive(Clone, Default, Debug)]
pub struct CacheStats {
    pub per_shard: Vec<ShardCacheStats>,
}

impl CacheStats {
    /// Written slots across all shards.
    pub fn occupancy(&self) -> usize {
        self.per_shard.iter().map(|s| s.occupancy).sum()
    }

    /// Total slot capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.per_shard.iter().map(|s| s.slots).sum()
    }

    pub fn hits(&self) -> u64 {
        self.per_shard.iter().map(|s| s.hits).sum()
    }

    pub fn misses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.misses).sum()
    }

    pub fn evictions(&self) -> u64 {
        self.per_shard.iter().map(|s| s.evictions).sum()
    }

    pub fn oversize_bypasses(&self) -> u64 {
        self.per_shard.iter().map(|s| s.oversize_bypasses).sum()
    }

    /// Probe-level hit ratio in `[0, 1]`; 0.0 before any lookup.
    pub fn hit_ratio(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// Sharded, read-lock-free map from [`QueryFingerprint`] to rendered
/// rewrite bytes. See the module docs for the design; the public surface
/// is just [`RewriteCache::lookup`] and [`RewriteCache::insert`].
pub struct RewriteCache {
    shards: Box<[Shard]>,
    value_cap: usize,
    words_per_slot: usize,
}

impl Default for RewriteCache {
    fn default() -> RewriteCache {
        RewriteCache::new(CacheConfig::default())
    }
}

impl RewriteCache {
    pub fn new(config: CacheConfig) -> RewriteCache {
        let n_shards = config.shards.max(1).next_power_of_two();
        let n_slots = config.slots_per_shard.max(PROBE).next_power_of_two();
        let value_cap = config.value_cap.max(8).div_ceil(8) * 8;
        let words_per_slot = value_cap / 8;
        let shards = (0..n_shards)
            .map(|_| Shard {
                lock: AtomicU32::new(0),
                hand: AtomicU32::new(0),
                slots: (0..n_slots).map(|_| Slot::new()).collect(),
                pool: (0..n_slots * words_per_slot)
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                bypassed: AtomicU64::new(0),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                evictions: AtomicU64::new(0),
            })
            .collect();
        RewriteCache {
            shards,
            value_cap,
            words_per_slot,
        }
    }

    /// Maximum cacheable value size in bytes (config's `value_cap`, rounded
    /// up to a word multiple). Size reusable read buffers to this.
    #[inline]
    pub fn value_cap(&self) -> usize {
        self.value_cap
    }

    /// Total slot capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shards[0].slots.len()
    }

    /// Inserts refused because the value exceeded [`RewriteCache::value_cap`]
    /// — queries that will re-render on every request. Summed across
    /// shards; monotone over the cache's lifetime.
    pub fn oversize_bypasses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.bypassed.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot per-shard observability: occupancy, probe-level hit/miss
    /// counters, evictions, and oversize bypasses. The occupancy scan
    /// walks every slot (relaxed loads), so treat this as an operator
    /// endpoint, not a hot-path call.
    pub fn stats(&self) -> CacheStats {
        let per_shard = self
            .shards
            .iter()
            .map(|s| ShardCacheStats {
                occupancy: s
                    .slots
                    .iter()
                    .filter(|slot| slot.fp.load(Ordering::Relaxed) != 0)
                    .count(),
                slots: s.slots.len(),
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
                oversize_bypasses: s.bypassed.load(Ordering::Relaxed),
            })
            .collect();
        CacheStats { per_shard }
    }

    /// Shard for a fingerprint (high hash bits) and home slot within it
    /// (low hash bits) — distinct bit ranges so shard and slot selection
    /// stay uncorrelated.
    #[inline]
    fn place(&self, fp: QueryFingerprint) -> (&Shard, usize) {
        let shard = &self.shards[(fp.hash >> 48) as usize & (self.shards.len() - 1)];
        let slot = fp.hash as usize & (shard.slots.len() - 1);
        (shard, slot)
    }

    /// Look up `fp` under generation `gen`, copying the cached bytes into
    /// `out` (cleared first) on a hit. Lock-free and allocation-free once
    /// `out` has `value_cap` capacity; a probe that races a concurrent
    /// overwrite fails its version check and reports a miss.
    ///
    /// On `true`, `out` holds bytes some `insert` stored verbatim under the
    /// same (fingerprint, generation) — for this crate's use, the rendered
    /// rewrite `String`, so they are valid UTF-8.
    pub fn lookup(&self, fp: QueryFingerprint, gen: u64, out: &mut Vec<u8>) -> bool {
        let (shard, home) = self.place(fp);
        let mask = shard.slots.len() - 1;
        for i in 0..PROBE {
            let idx = (home + i) & mask;
            let slot = &shard.slots[idx];
            let v1 = slot.version.load(Ordering::Acquire);
            let sfp = slot.fp.load(Ordering::Relaxed);
            if sfp == 0 {
                // Slots are never emptied once written, so a vacant slot
                // terminates the probe: nothing was ever pushed past it.
                shard.misses.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            if v1 & 1 == 1
                || sfp != fp.hash
                || slot.norm_len.load(Ordering::Relaxed) != fp.norm_len
                || slot.gen.load(Ordering::Relaxed) != gen
            {
                continue;
            }
            let len = slot.val_len.load(Ordering::Relaxed) as usize;
            if len > self.value_cap {
                continue; // torn metadata; the version check would fail anyway
            }
            // Word-granular copy-out straight into `out`'s storage:
            // resize once (no per-word capacity checks), then overwrite by
            // 8-byte chunks. The words are relaxed atomic loads, so racing
            // an overwrite is defined — torn bytes are discarded below.
            let n_words = len.div_ceil(8);
            out.clear();
            out.resize(n_words * 8, 0);
            let base = idx * self.words_per_slot;
            for (chunk, w) in out
                .chunks_exact_mut(8)
                .zip(&shard.pool[base..base + n_words])
            {
                chunk.copy_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
            }
            out.truncate(len);
            // Order the data loads before the validating version re-read.
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) == v1 {
                slot.refbit.store(1, Ordering::Relaxed);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            // Torn copy (entry was overwritten mid-read): treat as a miss —
            // the cold path will re-render and refresh the entry.
            shard.misses.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        false
    }

    /// Insert `value` for `fp` under generation `gen`. Values longer than
    /// [`RewriteCache::value_cap`] are not cached — the bypass is counted
    /// per shard and surfaced by [`RewriteCache::oversize_bypasses`].
    /// Writers serialize per shard behind a spinlock; victim choice is:
    /// refresh the matching entry, else a never-written slot, else a
    /// stale-generation entry, else CLOCK second-chance over the probe
    /// window.
    pub fn insert(&self, fp: QueryFingerprint, gen: u64, value: &[u8]) {
        let (shard, home) = self.place(fp);
        if value.len() > self.value_cap {
            shard.bypassed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mask = shard.slots.len() - 1;
        while shard.lock.swap(1, Ordering::Acquire) != 0 {
            std::hint::spin_loop();
        }
        let mut victim = None;
        let mut stale = None;
        for i in 0..PROBE {
            let idx = (home + i) & mask;
            let slot = &shard.slots[idx];
            let sfp = slot.fp.load(Ordering::Relaxed);
            if sfp == 0 {
                victim = Some(idx);
                break;
            }
            if sfp == fp.hash && slot.norm_len.load(Ordering::Relaxed) == fp.norm_len {
                victim = Some(idx);
                break;
            }
            if stale.is_none() && slot.gen.load(Ordering::Relaxed) != gen {
                stale = Some(idx);
            }
        }
        let idx = victim.or(stale).unwrap_or_else(|| {
            // CLOCK second chance over the probe window: sweep from the
            // shard hand clearing reference bits; the first slot found
            // clear is the victim. Two sweeps bound the scan — after one
            // full sweep every bit is clear.
            let start = shard.hand.load(Ordering::Relaxed) as usize;
            let mut chosen = (home + (start % PROBE)) & mask;
            for k in 0..2 * PROBE {
                let idx = (home + ((start + k) % PROBE)) & mask;
                if shard.slots[idx].refbit.swap(0, Ordering::Relaxed) == 0 {
                    chosen = idx;
                    shard
                        .hand
                        .store(((start + k + 1) % PROBE) as u32, Ordering::Relaxed);
                    break;
                }
            }
            chosen
        });

        let slot = &shard.slots[idx];
        let prev_fp = slot.fp.load(Ordering::Relaxed);
        if prev_fp != 0 && prev_fp != fp.hash {
            // Overwriting a live entry for a different key: capacity (or
            // staleness) pushed something out. Same-key refreshes are not
            // evictions.
            shard.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let v = slot.version.load(Ordering::Relaxed);
        // Seqlock write: odd version first, then data, then even version.
        slot.version.store(v.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        slot.fp.store(fp.hash, Ordering::Relaxed);
        slot.norm_len.store(fp.norm_len, Ordering::Relaxed);
        slot.gen.store(gen, Ordering::Relaxed);
        slot.val_len.store(value.len() as u32, Ordering::Relaxed);
        let base = idx * self.words_per_slot;
        let mut chunks = value.chunks_exact(8);
        let mut wi = base;
        for c in &mut chunks {
            shard.pool[wi].store(
                u64::from_le_bytes(c.try_into().expect("8-byte chunk")),
                Ordering::Relaxed,
            );
            wi += 1;
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            shard.pool[wi].store(u64::from_le_bytes(buf), Ordering::Relaxed);
        }
        slot.version.store(v.wrapping_add(2), Ordering::Release);
        slot.refbit.store(1, Ordering::Relaxed);
        shard.lock.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(text: &str) -> QueryFingerprint {
        fingerprint_query(text).unwrap_or_else(|| panic!("uncacheable: {text:?}"))
    }

    #[test]
    fn whitespace_and_comments_collapse() {
        let a = fp("SELECT * WHERE { ?s <http://p> ?o }");
        assert_eq!(a, fp("SELECT  *\n\tWHERE  {\n  ?s <http://p> ?o\n}\n"));
        assert_eq!(a, fp("SELECT * # projection\nWHERE { ?s <http://p> ?o }"));
        assert_ne!(a, fp("SELECT * WHERE { ?s <http://q> ?o }"));
        assert_ne!(
            a,
            fp("SELECT * WHERE { ?s <http://p> ?o . ?s <http://p> ?o }")
        );
    }

    #[test]
    fn keyword_case_normalizes_but_terms_stay_case_sensitive() {
        let a = fp("SELECT * WHERE { ?s <http://p> ?o }");
        assert_eq!(a, fp("select * where { ?s <http://p> ?o }"));
        assert_eq!(a, fp("Select * Where { ?s <http://p> ?o }"));
        // Variable names and IRIs are case-sensitive.
        assert_ne!(a, fp("SELECT * WHERE { ?S <http://p> ?o }"));
        assert_ne!(a, fp("SELECT * WHERE { ?s <HTTP://p> ?o }"));
        // `true`/`false` are case-sensitive in the parser: `TRUE` is a
        // different (invalid) word and must not merge with `true`.
        assert_ne!(
            fp("SELECT * WHERE { ?s <http://p> true }"),
            fp("SELECT * WHERE { ?s <http://p> TRUE }")
        );
    }

    #[test]
    fn dollar_sigil_and_lang_tag_case_normalize() {
        assert_eq!(
            fp("SELECT ?x WHERE { ?x <http://p> ?y }"),
            fp("SELECT $x WHERE { $x <http://p> $y }")
        );
        assert_eq!(
            fp("SELECT * WHERE { ?s <http://p> \"x\"@EN-gb }"),
            fp("SELECT * WHERE { ?s <http://p> \"x\"@en-GB }")
        );
        // Literal bodies are untouched.
        assert_ne!(
            fp("SELECT * WHERE { ?s <http://p> \"X\" }"),
            fp("SELECT * WHERE { ?s <http://p> \"x\" }")
        );
    }

    #[test]
    fn prefix_aliases_resolve_to_one_fingerprint() {
        let full = fp("SELECT * WHERE { ?s <http://ex.org/ns#name> ?o }");
        // Alias spelling, renamed alias, extra unused declaration, and
        // shadowed redeclaration all canonicalize to the full-IRI stream.
        assert_eq!(
            full,
            fp("PREFIX ex: <http://ex.org/ns#> SELECT * WHERE { ?s ex:name ?o }")
        );
        assert_eq!(
            full,
            fp("PREFIX zz: <http://ex.org/ns#> SELECT * WHERE { ?s zz:name ?o }")
        );
        assert_eq!(
            full,
            fp("PREFIX a: <http://other/> PREFIX b: <http://ex.org/ns#> \
                SELECT * WHERE { ?s b:name ?o }")
        );
        assert_eq!(
            full,
            fp("PREFIX p: <http://other/> PREFIX p: <http://ex.org/ns#> \
                SELECT * WHERE { ?s p:name ?o }")
        );
        // Datatype QNames expand too.
        assert_eq!(
            fp("PREFIX x: <http://t/> SELECT * WHERE { ?s <http://p> \"3\"^^x:int }"),
            fp("SELECT * WHERE { ?s <http://p> \"3\"^^<http://t/int> }")
        );
        // Different expansion, different fingerprint.
        assert_ne!(
            full,
            fp("PREFIX ex: <http://ex.org/other#> SELECT * WHERE { ?s ex:name ?o }")
        );
    }

    #[test]
    fn uncacheable_texts_return_none() {
        for text in [
            "SELECT * WHERE { ?s und:eclared ?o }",
            "SELECT * WHERE { ?s <http://p> \"unterminated }",
            "SELECT * WHERE { ?s <http://p> \"x\"@ }",
            "SELECT * WHERE { ?s <http://p> ?o FILTER(?o & 1) }",
            "PREFIX broken <http://p> SELECT * WHERE { ?s ?p ?o }",
            "SELECT * WHERE { ? <http://p> ?o }",
            "SELECT * WHERE { ?s <http://p> 3abc }",
            "SELECT * WHERE { ?s <http://p> ?o } \x01",
        ] {
            assert_eq!(fingerprint_query(text), None, "cached {text:?}");
        }
    }

    #[test]
    fn operator_spellings_do_not_merge() {
        // `<` as comparison vs `<=`: distinct streams.
        assert_ne!(
            fp("SELECT * WHERE { ?s <http://p> ?o FILTER(?o < 3) }"),
            fp("SELECT * WHERE { ?s <http://p> ?o FILTER(?o <= 3) }")
        );
        // Adjacent tokens never concatenate across the separator.
        assert_ne!(
            fp("SELECT ?a ?b WHERE { ?a <http://p> ?b }"),
            fp("SELECT ?ab WHERE { ?ab <http://p> ?ab }")
        );
    }

    #[test]
    fn fingerprint_is_chunking_independent() {
        // One stream fed as many small writes vs few large ones.
        let mut a = Fingerprinter::new();
        for b in b"abcdefghijklmnopqrstuvwxyz0123456789" {
            a.push(*b);
        }
        let mut b = Fingerprinter::new();
        b.push_bytes(b"abc");
        b.push_bytes(b"defghijklmnop");
        b.push_bytes(b"qrstuvwxyz0123456789");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn cache_round_trips_and_terminates_probes() {
        let cache = RewriteCache::new(CacheConfig {
            shards: 2,
            slots_per_shard: 16,
            value_cap: 64,
        });
        let mut buf = Vec::new();
        let k = fp("SELECT * WHERE { ?s <http://p0> ?o }");
        assert!(!cache.lookup(k, 0, &mut buf));
        cache.insert(k, 0, b"rewritten-0");
        assert!(cache.lookup(k, 0, &mut buf));
        assert_eq!(buf, b"rewritten-0");
        // Refresh in place.
        cache.insert(k, 0, b"rewritten-0b");
        assert!(cache.lookup(k, 0, &mut buf));
        assert_eq!(buf, b"rewritten-0b");
        // Oversized values are not cached — and each refusal is counted.
        assert_eq!(cache.oversize_bypasses(), 0);
        let big = fp("SELECT * WHERE { ?s <http://big> ?o }");
        cache.insert(big, 0, &[b'x'; 65]);
        assert!(!cache.lookup(big, 0, &mut buf));
        assert_eq!(cache.oversize_bypasses(), 1);
        cache.insert(big, 0, &[b'x'; 200]);
        assert_eq!(cache.oversize_bypasses(), 2);
        // A value exactly at the cap is cacheable, not a bypass.
        cache.insert(big, 0, &[b'y'; 64]);
        assert!(cache.lookup(big, 0, &mut buf));
        assert_eq!(cache.oversize_bypasses(), 2);
    }

    #[test]
    fn generation_mismatch_misses_and_recovers() {
        let cache = RewriteCache::new(CacheConfig::default());
        let k = fp("SELECT * WHERE { ?s <http://p> ?o }");
        let mut buf = Vec::new();
        cache.insert(k, 7, b"under-rev-7");
        assert!(cache.lookup(k, 7, &mut buf));
        // Rule set changed (revision bumped): stale entry must miss.
        assert!(!cache.lookup(k, 8, &mut buf));
        cache.insert(k, 8, b"under-rev-8");
        assert!(cache.lookup(k, 8, &mut buf));
        assert_eq!(buf, b"under-rev-8");
        assert!(!cache.lookup(k, 7, &mut buf));
    }

    #[test]
    fn eviction_keeps_recent_entries_findable() {
        // Tiny cache, many inserts: churn far past capacity, then verify
        // the most recent insert is always servable.
        let cache = RewriteCache::new(CacheConfig {
            shards: 1,
            slots_per_shard: 8,
            value_cap: 64,
        });
        let mut buf = Vec::new();
        for i in 0..256 {
            let text = format!("SELECT * WHERE {{ ?s <http://p{i}> ?o }}");
            let k = fp(&text);
            let val = format!("result-{i}");
            cache.insert(k, 0, val.as_bytes());
            assert!(cache.lookup(k, 0, &mut buf), "just-inserted {i} missing");
            assert_eq!(buf, val.as_bytes());
        }
    }

    #[test]
    fn stats_track_occupancy_hits_misses_and_evictions() {
        let cache = RewriteCache::new(CacheConfig {
            shards: 1,
            slots_per_shard: 8,
            value_cap: 64,
        });
        let mut buf = Vec::new();
        let s0 = cache.stats();
        assert_eq!((s0.occupancy(), s0.capacity()), (0, 8));
        assert_eq!((s0.hits(), s0.misses(), s0.evictions()), (0, 0, 0));
        assert_eq!(s0.hit_ratio(), 0.0);

        let k = fp("SELECT * WHERE { ?s <http://p0> ?o }");
        assert!(!cache.lookup(k, 0, &mut buf)); // miss
        cache.insert(k, 0, b"v0");
        assert!(cache.lookup(k, 0, &mut buf)); // hit
        let s1 = cache.stats();
        assert_eq!((s1.occupancy(), s1.hits(), s1.misses()), (1, 1, 1));
        assert!((s1.hit_ratio() - 0.5).abs() < 1e-9);
        // Refreshing the same key is not an eviction.
        cache.insert(k, 0, b"v0b");
        assert_eq!(cache.stats().evictions(), 0);

        // Churn far past the 8-slot capacity: evictions must be counted
        // and occupancy saturates at capacity.
        for i in 0..64 {
            let text = format!("SELECT * WHERE {{ ?s <http://p{i}> ?o }}");
            cache.insert(fp(&text), 0, b"x");
        }
        let s2 = cache.stats();
        assert!(
            s2.evictions() > 0,
            "64 inserts into 8 slots evicted nothing"
        );
        assert!(s2.occupancy() <= s2.capacity());
        assert!(s2.occupancy() > 1);
        // Oversize bypasses are surfaced through the same snapshot.
        cache.insert(fp("SELECT * WHERE { ?s <http://big> ?o }"), 0, &[b'x'; 65]);
        assert_eq!(cache.stats().oversize_bypasses(), 1);
    }

    #[test]
    fn from_parts_never_produces_the_vacant_sentinel() {
        assert_eq!(QueryFingerprint::from_parts(0, 5).hash, 1);
        assert_eq!(QueryFingerprint::from_parts(3, 5).hash, 3);
    }
}
