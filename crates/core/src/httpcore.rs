//! Shared bounded HTTP/1.1 framing primitives.
//!
//! One implementation of line reading, header scanning (obs-folds,
//! `Content-Length` agreement, `Transfer-Encoding: chunked`, `Connection`
//! tokens), chunked-body decoding, and deadline-armed socket reads — used
//! by **both** sides of the system: the federation client transport
//! ([`crate::federate::HttpTransport`] parses endpoint responses with
//! [`read_response`]) and the server front end (`crates/server` parses
//! incoming requests with the same [`read_line_bounded`] /
//! [`read_headers`] / [`read_chunked_body_into`] primitives). Sharing the
//! module is a correctness stance, not a convenience: the client's chaos
//! suite (`tests/http_chaos.rs`) and the server's malformed-request
//! battery pin the *same* byte-level framing code, so the two sides cannot
//! drift apart in how they count header budgets, unfold continuations, or
//! reject a lying `Content-Length`.
//!
//! Every reader is pure over [`BufRead`] and charges consumed bytes
//! against explicit budgets, so the full edge-case surface is testable on
//! byte slices with no sockets involved. The one socket-aware piece is
//! [`DeadlineReader`]: a [`Read`] adapter over `&TcpStream` that re-arms
//! the OS read timeout to the remaining deadline before *every* syscall,
//! which bounds total read time even against a slow-loris peer that keeps
//! each individual syscall short.

use std::cell::Cell;
use std::io::{self, BufRead, Read};
use std::net::TcpStream;
use std::time::Instant;

/// Caps on what a framing reader will buffer. Exceeding either is a
/// *permanent* error: a peer that ships multi-megabyte headers is broken,
/// not busy.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct HttpLimits {
    /// Start line + all header bytes (folded continuations included).
    pub max_header_bytes: usize,
    /// Decoded body bytes (Content-Length or summed chunks).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> HttpLimits {
        HttpLimits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Structured failure of one HTTP exchange. The retry classification
/// (`class()`) lives with the federation client in `federate::http`; the
/// server maps these onto response-status classes instead.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HttpError {
    /// First line was not `HTTP/1.x <3-digit status> ...`.
    MalformedStatusLine,
    /// A header line without a colon, or a fold with no header to extend.
    MalformedHeader,
    /// Start line + headers exceeded [`HttpLimits::max_header_bytes`].
    HeadersTooLarge,
    /// Declared or decoded body exceeded [`HttpLimits::max_body_bytes`].
    BodyTooLarge,
    /// Unparseable or self-contradictory `Content-Length`.
    InvalidContentLength,
    /// Bad chunk-size line, missing chunk CRLF, or oversized chunk header.
    InvalidChunk,
    /// The peer closed the connection mid-status, mid-header, or mid-body.
    Truncated,
    /// The endpoint authority did not resolve to a socket address.
    BadAddress,
    /// Non-2xx response status (body was drained, connection preserved).
    Status(u16),
    /// Socket-level error; `TimedOut` means the deadline budget expired.
    Io(io::ErrorKind),
}

impl HttpError {
    /// True when the failure is the deadline budget running out — the
    /// client transport reports these with `latency_nanos >= budget` so
    /// the executor classifies the attempt as timed out, not merely
    /// failed; the server maps them to `408 Request Timeout`.
    pub fn is_timeout(&self) -> bool {
        matches!(self, HttpError::Io(io::ErrorKind::TimedOut))
    }

    /// Canonicalize an [`io::Error`] into the framing taxonomy.
    pub fn from_io(e: &io::Error) -> HttpError {
        match e.kind() {
            // Unix reports an expired SO_RCVTIMEO/SO_SNDTIMEO as WouldBlock.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                HttpError::Io(io::ErrorKind::TimedOut)
            }
            io::ErrorKind::UnexpectedEof => HttpError::Truncated,
            kind => HttpError::Io(kind),
        }
    }
}

/// One parsed HTTP response.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub body: Vec<u8>,
    /// The connection must not be reused: the peer said `Connection:
    /// close` or the body was EOF-framed.
    pub close: bool,
}

/// Framing facts a header block declares, collected by [`read_headers`].
#[derive(Copy, Clone, Default, PartialEq, Eq, Debug)]
pub struct HeaderFraming {
    /// Agreed `Content-Length` (duplicates must match; conflicts are a
    /// request-smuggling-shaped protocol violation and error out).
    pub content_length: Option<u64>,
    /// `Transfer-Encoding` contained the `chunked` token.
    pub chunked: bool,
    /// `Connection` contained the `close` token.
    pub close: bool,
    /// `Connection` contained the `keep-alive` token (the HTTP/1.0
    /// opt-in; HTTP/1.1 keeps alive by default).
    pub keep_alive: bool,
}

/// Read one HTTP/1.1 response from `r`, enforcing `limits`.
///
/// Handles the full framing surface a real endpoint can emit: status
/// line, header obs-folds, `Content-Length` bodies, `chunked` transfer
/// coding (extensions and trailers included), EOF-framed bodies, and
/// bodiless 204/304 responses. Pure over any [`BufRead`], which is what
/// lets the edge-case battery and the mutation fuzz run on byte slices
/// with no sockets involved.
pub fn read_response<R: BufRead>(
    r: &mut R,
    limits: &HttpLimits,
) -> Result<HttpResponse, HttpError> {
    let mut header_budget = limits.max_header_bytes;
    let mut line = Vec::new();
    let mut pending = Vec::new();
    read_line_bounded(r, &mut line, &mut header_budget, HttpError::HeadersTooLarge)?;
    let status = parse_status_line(&line)?;

    let mut framing = HeaderFraming::default();
    read_headers(
        r,
        &mut line,
        &mut pending,
        &mut header_budget,
        &mut framing,
        &mut |_, _| {},
    )?;
    let mut close = framing.close;

    let body = if status == 204 || status == 304 {
        Vec::new()
    } else if framing.chunked {
        let mut body = Vec::new();
        read_chunked_body_into(r, limits, &mut body)?;
        body
    } else if let Some(n) = framing.content_length {
        if n > limits.max_body_bytes as u64 {
            return Err(HttpError::BodyTooLarge);
        }
        let mut body = vec![0u8; n as usize];
        r.read_exact(&mut body)
            .map_err(|e| HttpError::from_io(&e))?;
        body
    } else {
        // No framing at all: the body runs to EOF and the connection is
        // spent.
        close = true;
        read_to_end_bounded(r, limits.max_body_bytes)?
    };
    Ok(HttpResponse {
        status,
        body,
        close,
    })
}

/// `HTTP/1.<d> <3-digit status> [reason]`.
pub fn parse_status_line(line: &[u8]) -> Result<u16, HttpError> {
    let rest = match line.strip_prefix(b"HTTP/1.") {
        Some(r) => r,
        None => return Err(HttpError::MalformedStatusLine),
    };
    if rest.len() < 5
        || !rest[0].is_ascii_digit()
        || rest[1] != b' '
        || !rest[2..5].iter().all(u8::is_ascii_digit)
        || (rest.len() > 5 && rest[5] != b' ')
    {
        return Err(HttpError::MalformedStatusLine);
    }
    let status =
        (rest[2] - b'0') as u16 * 100 + (rest[3] - b'0') as u16 * 10 + (rest[4] - b'0') as u16;
    if status < 100 {
        return Err(HttpError::MalformedStatusLine);
    }
    Ok(status)
}

/// Read a header block (everything after the start line, up to and
/// including the blank line), unfolding obs-fold continuations and
/// charging every byte against `*budget`.
///
/// Framing-relevant headers (`Content-Length`, `Transfer-Encoding`,
/// `Connection`) land in `framing`; every *other* logical header is handed
/// to `extra(name, value)` with surrounding whitespace trimmed — the
/// server uses this for `Content-Type`, the client ignores it. `line` and
/// `pending` are caller-owned scratch so a steady-state server loop can
/// run this without allocating.
pub fn read_headers<R: BufRead>(
    r: &mut R,
    line: &mut Vec<u8>,
    pending: &mut Vec<u8>,
    budget: &mut usize,
    framing: &mut HeaderFraming,
    extra: &mut dyn FnMut(&[u8], &[u8]),
) -> Result<(), HttpError> {
    pending.clear();
    loop {
        read_line_bounded(r, line, budget, HttpError::HeadersTooLarge)?;
        if line.is_empty() {
            process_header(pending, framing, extra)?;
            return Ok(());
        }
        if line[0] == b' ' || line[0] == b'\t' {
            if pending.is_empty() {
                return Err(HttpError::MalformedHeader);
            }
            pending.push(b' ');
            pending.extend_from_slice(trim_ascii(line));
        } else {
            process_header(pending, framing, extra)?;
            pending.clear();
            pending.extend_from_slice(line);
        }
    }
}

fn process_header(
    header: &[u8],
    framing: &mut HeaderFraming,
    extra: &mut dyn FnMut(&[u8], &[u8]),
) -> Result<(), HttpError> {
    if header.is_empty() {
        return Ok(());
    }
    let colon = match header.iter().position(|&b| b == b':') {
        Some(c) => c,
        None => return Err(HttpError::MalformedHeader),
    };
    let name = trim_ascii(&header[..colon]);
    let value = trim_ascii(&header[colon + 1..]);
    if name.eq_ignore_ascii_case(b"content-length") {
        if value.is_empty() || !value.iter().all(u8::is_ascii_digit) || value.len() > 18 {
            return Err(HttpError::InvalidContentLength);
        }
        let mut n = 0u64;
        for &d in value {
            n = n * 10 + (d - b'0') as u64;
        }
        // Duplicate headers must agree; conflicting lengths are a
        // request-smuggling-shaped protocol violation.
        if framing
            .content_length
            .replace(n)
            .is_some_and(|prev| prev != n)
        {
            return Err(HttpError::InvalidContentLength);
        }
    } else if name.eq_ignore_ascii_case(b"transfer-encoding") {
        if contains_token_ci(value, b"chunked") {
            framing.chunked = true;
        }
    } else if name.eq_ignore_ascii_case(b"connection") {
        if contains_token_ci(value, b"close") {
            framing.close = true;
        }
        if contains_token_ci(value, b"keep-alive") {
            framing.keep_alive = true;
        }
    } else {
        extra(name, value);
    }
    Ok(())
}

/// Decode a `chunked` body into `body` (appending), enforcing
/// `limits.max_body_bytes` on the decoded total. Chunk-size lines and the
/// trailer section get their own small budgets — a peer streaming an
/// endless size line is broken, not large.
pub fn read_chunked_body_into<R: BufRead>(
    r: &mut R,
    limits: &HttpLimits,
    body: &mut Vec<u8>,
) -> Result<(), HttpError> {
    let mut line = Vec::new();
    loop {
        let mut chunk_budget = 256usize;
        read_line_bounded(r, &mut line, &mut chunk_budget, HttpError::InvalidChunk)?;
        let size_part = match line.iter().position(|&b| b == b';') {
            Some(p) => &line[..p],
            None => &line[..],
        };
        let size_part = trim_ascii(size_part);
        if size_part.is_empty() || size_part.len() > 8 {
            return Err(HttpError::InvalidChunk);
        }
        let mut size = 0usize;
        for &b in size_part {
            let d = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(HttpError::InvalidChunk),
            };
            size = size * 16 + d as usize;
        }
        if size == 0 {
            // Trailer section: headers we ignore, up to the empty line.
            let mut trailer_budget = 4096usize;
            loop {
                read_line_bounded(r, &mut line, &mut trailer_budget, HttpError::InvalidChunk)?;
                if line.is_empty() {
                    return Ok(());
                }
            }
        }
        if body.len() + size > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
        let start = body.len();
        body.resize(start + size, 0);
        r.read_exact(&mut body[start..])
            .map_err(|e| HttpError::from_io(&e))?;
        let mut crlf = [0u8; 2];
        r.read_exact(&mut crlf)
            .map_err(|e| HttpError::from_io(&e))?;
        if crlf != *b"\r\n" {
            return Err(HttpError::InvalidChunk);
        }
    }
}

/// Read one `\n`-terminated line (CR stripped) into `out`, charging the
/// consumed bytes against `*budget` and failing with `overflow` once it
/// is exceeded. EOF before the terminator is [`HttpError::Truncated`].
pub fn read_line_bounded<R: BufRead>(
    r: &mut R,
    out: &mut Vec<u8>,
    budget: &mut usize,
    overflow: HttpError,
) -> Result<(), HttpError> {
    out.clear();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) => return Err(HttpError::from_io(&e)),
        };
        if buf.is_empty() {
            return Err(HttpError::Truncated);
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if pos + 1 > *budget {
                    return Err(overflow);
                }
                *budget -= pos + 1;
                out.extend_from_slice(&buf[..pos]);
                r.consume(pos + 1);
                if out.last() == Some(&b'\r') {
                    out.pop();
                }
                return Ok(());
            }
            None => {
                let n = buf.len();
                if n > *budget {
                    return Err(overflow);
                }
                *budget -= n;
                out.extend_from_slice(buf);
                r.consume(n);
            }
        }
    }
}

/// Read to EOF, failing with [`HttpError::BodyTooLarge`] past `cap`.
pub fn read_to_end_bounded<R: BufRead>(r: &mut R, cap: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = Vec::new();
    loop {
        let buf = match r.fill_buf() {
            Ok(b) => b,
            Err(e) => return Err(HttpError::from_io(&e)),
        };
        if buf.is_empty() {
            return Ok(body);
        }
        if body.len() + buf.len() > cap {
            return Err(HttpError::BodyTooLarge);
        }
        body.extend_from_slice(buf);
        let n = buf.len();
        r.consume(n);
    }
}

/// Trim ASCII space/tab from both ends.
pub fn trim_ascii(mut s: &[u8]) -> &[u8] {
    while let [b' ' | b'\t', rest @ ..] = s {
        s = rest;
    }
    while let [rest @ .., b' ' | b'\t'] = s {
        s = rest;
    }
    s
}

/// Does a comma-separated header value contain `token` (ASCII
/// case-insensitive)?
pub fn contains_token_ci(value: &[u8], token: &[u8]) -> bool {
    value
        .split(|&b| b == b',')
        .any(|part| trim_ascii(part).eq_ignore_ascii_case(token))
}

/// A [`Read`] over `&TcpStream` that re-arms the socket read timeout to
/// the remaining deadline before every syscall and fails with `TimedOut`
/// once the deadline passes — which bounds *total* read time even against
/// a slow-loris peer that keeps each individual syscall short.
///
/// The deadline is interior-mutable so a server connection loop can
/// re-arm it between requests through `BufReader::get_ref()` without
/// tearing down the buffered reader (and the bytes it already holds).
pub struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    deadline: Cell<Instant>,
    got_any: Cell<bool>,
}

impl<'a> DeadlineReader<'a> {
    pub fn new(stream: &'a TcpStream, deadline: Instant) -> DeadlineReader<'a> {
        DeadlineReader {
            stream,
            deadline: Cell::new(deadline),
            got_any: Cell::new(false),
        }
    }

    /// Replace the deadline governing subsequent reads (per-request
    /// re-arm on a keep-alive connection).
    pub fn set_deadline(&self, deadline: Instant) {
        self.deadline.set(deadline);
    }

    /// Whether any byte has been read since construction or the last
    /// [`DeadlineReader::reset_got_any`] — the signal that separates an
    /// idle peer from one that died mid-message.
    pub fn got_any(&self) -> bool {
        self.got_any.get()
    }

    pub fn reset_got_any(&self) {
        self.got_any.set(false);
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = match self.deadline.get().checked_duration_since(Instant::now()) {
            Some(d) if !d.is_zero() => d,
            _ => return Err(io::Error::new(io::ErrorKind::TimedOut, "deadline expired")),
        };
        self.stream.set_read_timeout(Some(remaining))?;
        let mut raw: &TcpStream = self.stream;
        let n = raw.read(buf)?;
        if n > 0 {
            self.got_any.set(true);
        }
        Ok(n)
    }
}
