//! Standalone SPARQL rewriting front end over a small built-in demo
//! alignment set. Binds a TCP port, serves the SPARQL protocol
//! (`GET /sparql?query=…`, `POST /sparql`), and shuts down gracefully on
//! stdin EOF (e.g. `Ctrl-D`, or the end of a piped script).
//!
//! ```text
//! server [--addr 127.0.0.1:8080] [--workers N] [--queue N]
//! curl 'http://127.0.0.1:8080/sparql?query=SELECT%20*%20WHERE%20%7B%20%3Fs%20%3Chttp%3A%2F%2Fsrc.example.org%2Fonto%2Fname%3E%20%3Fo%20%7D'
//! ```

use std::io::Read;
use std::process::exit;
use std::sync::Arc;

use sparql_rewrite_core::{
    AlignmentStore, CacheConfig, Interner, ServeEngine, Term, TriplePattern,
};
use sparql_rewrite_server::request::RequestError;
use sparql_rewrite_server::{Server, ServerConfig};

/// A small cross-ontology alignment set so the binary demonstrates real
/// rewrites out of the box: `src.example.org/onto/*` terms map onto
/// `tgt.example.org/onto/*`, including one 1:2 predicate split that
/// exercises the UNION expansion.
fn demo_engine() -> ServeEngine {
    let mut interner = Interner::new();
    let mut store = AlignmentStore::new();
    let iri = |it: &mut Interner, s: &str| Term::iri(it.intern(s));
    let var_s = Term::var(interner.intern("s"));
    let var_o = Term::var(interner.intern("o"));

    for (src, tgt) in [
        (
            "http://src.example.org/onto/name",
            "http://tgt.example.org/onto/label",
        ),
        (
            "http://src.example.org/onto/homepage",
            "http://tgt.example.org/onto/url",
        ),
        (
            "http://src.example.org/onto/knows",
            "http://tgt.example.org/onto/acquaintedWith",
        ),
    ] {
        let lhs = TriplePattern::new(var_s, iri(&mut interner, src), var_o);
        let rhs = vec![TriplePattern::new(var_s, iri(&mut interner, tgt), var_o)];
        store.add_predicate(lhs, rhs).expect("valid demo template");
    }
    // 1:2 split: `member` matches two target predicates → UNION branches.
    let member = iri(&mut interner, "http://src.example.org/onto/member");
    for tgt in [
        "http://tgt.example.org/onto/memberOf",
        "http://tgt.example.org/onto/affiliatedWith",
    ] {
        let lhs = TriplePattern::new(var_s, member, var_o);
        let rhs = vec![TriplePattern::new(var_s, iri(&mut interner, tgt), var_o)];
        store.add_predicate(lhs, rhs).expect("valid demo template");
    }
    for (src, tgt) in [
        (
            "http://src.example.org/ent/acme",
            "http://tgt.example.org/ent/acme-corp",
        ),
        (
            "http://src.example.org/ent/widget",
            "http://tgt.example.org/ent/widget-x",
        ),
    ] {
        store
            .add_entity(iri(&mut interner, src), iri(&mut interner, tgt))
            .expect("valid demo entity alignment");
    }
    ServeEngine::with_cache(store, interner, Some(CacheConfig::default()))
}

fn main() {
    let mut addr = String::from("127.0.0.1:8080");
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut take = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = take("--addr"),
            "--workers" => {
                config.workers = take("--workers").parse().unwrap_or_else(|_| {
                    eprintln!("--workers needs an integer");
                    exit(2);
                })
            }
            "--queue" => {
                config.queue_capacity = take("--queue").parse().unwrap_or_else(|_| {
                    eprintln!("--queue needs an integer");
                    exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: server [--addr HOST:PORT] [--workers N] [--queue N]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
    }

    let engine = Arc::new(demo_engine());
    let server = match Server::spawn(engine, config, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            exit(1);
        }
    };
    println!("listening on http://{}/sparql", server.local_addr());
    println!("EOF on stdin (Ctrl-D) shuts down gracefully");

    // Block until stdin closes, then drain.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    let stats = server.stats();
    let cache = server.engine().and_then(|e| e.cache_stats());
    let report = server.shutdown();
    println!(
        "accepted {} | served {} | shed {} | panics {} | errors {}",
        stats.accepted,
        stats.served,
        stats.shed,
        stats.panics,
        stats.errors_total(),
    );
    for (label, count) in RequestError::labels().iter().zip(stats.error_classes) {
        if count > 0 {
            println!("  {label}: {count}");
        }
    }
    if let Some(cache) = cache {
        println!(
            "cache: occupancy {}/{} | hit ratio {:.3} | evictions {} | oversize bypasses {}",
            cache.occupancy(),
            cache.capacity(),
            cache.hit_ratio(),
            cache.evictions(),
            cache.oversize_bypasses(),
        );
    }
    println!(
        "drain: {:?} elapsed, {} queued connections dropped",
        report.elapsed, report.dropped_from_queue
    );
}
