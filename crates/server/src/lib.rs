//! Overload-safe SPARQL HTTP front end over the rewriting serve engine.
//!
//! Thread-per-worker blocking I/O over `std::net` — no async runtime, no
//! dependencies. One acceptor thread and N worker threads share one
//! [`ServeEngine`] behind an `Arc`; each worker pins its own
//! [`ServeScratch`] + [`RequestScratch`] + response buffer, so the warm
//! request path (keep-alive connection, cache hit) performs **zero heap
//! allocations** end to end through the socket — the bench harness gates
//! on that with the counting allocator.
//!
//! The server runs in one of two modes. **Single-store** ([`Server::spawn`])
//! serves rewrites from one [`ServeEngine`]. **Federated**
//! ([`Server::spawn_federated`]) plans each query across per-endpoint
//! alignment stores and dispatches the subqueries over real HTTP; the
//! per-endpoint outcomes map onto explicit degraded-mode semantics:
//!
//! ```text
//! every endpoint served   → 200, envelope "partial":false
//! some endpoints served   → 200, envelope "partial":true
//!                           + X-Endpoint-Status: ep0=served,ep1=timed-out,…
//! no endpoint served      → 502 Bad Gateway (504 if any endpoint timed
//!                           out), Retry-After from the soonest breaker
//!                           half-open ETA
//! ```
//!
//! Both modes expose a read-only observability surface: `GET /healthz`
//! (readiness keyed on drain state, queue saturation, and breaker states)
//! and `GET /stats` (JSON counters, per-class request errors, drain
//! accounting, per-route log-spaced latency histograms, cache and
//! federation state).
//!
//! The request lifecycle is a strict state machine:
//!
//! ```text
//!            accept
//!              │
//!       queue full? ──yes──► SHED: 503 + Retry-After, close
//!              │                  (written by the acceptor, O(1),
//!            queued                before any request byte is read)
//!              │
//!        worker picks up
//!              │
//!      ┌──── IDLE ◄────────────────────────────┐
//!      │  wait first byte                      │
//!      │  (keep-alive idle deadline)           │
//!      │       │                               │
//!      │     PARSE — request deadline armed    │
//!      │       │     onto every socket read    │
//!      │   ┌───┴─────────┐                     │
//!      │ malformed     framed                  │
//!      │   │             │                     │
//!      │ 4xx, close    SERVE (engine)          │
//!      │               ┌─┴──────────┐          │
//!      │          parse error     rewritten    │
//!      │               │            │          │
//!      │          400, keep      200, keep ────┘
//!      │               └────────────┘
//!      └── idle timeout / peer close / drain → connection closed
//! ```
//!
//! Overload never queues unboundedly: admission is a bounded queue and
//! the shed path is O(1) — the acceptor writes a prebuilt `503` +
//! `Retry-After` and closes, without parsing a byte. Slow peers never
//! hold a worker past the request deadline: the shared
//! [`DeadlineReader`] re-arms the socket timeout before every read.
//! Worker panics are isolated per connection (`catch_unwind` → best-effort
//! `500`, scratch rebuilt, worker lives on). Shutdown stops accepting,
//! lets in-flight requests run out their request deadline, bounds all
//! *new* waiting by the drain deadline, and reports what was dropped —
//! so total shutdown time is bounded by `request_deadline +
//! drain_deadline`.
//!
//! [`DeadlineReader`]: sparql_rewrite_core::httpcore::DeadlineReader

pub mod request;

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sparql_rewrite_core::httpcore::{DeadlineReader, HttpLimits};
use sparql_rewrite_core::{
    parse_query_into, BreakerState, EndpointId, EndpointOutcome, ExecutorConfig, FederatedExecutor,
    FederatedResult, FederationPlanner, HttpConfig, HttpEndpoint, HttpTransport, Interner,
    ParseScratch, RewriteLimits, ServeEngine, ServeScratch,
};

use request::{read_request, RequestError, RequestScratch, Route, ERROR_CLASSES, N_ROUTES};

/// Tunables for one [`Server`]. The defaults are sized for a loopback
/// bench profile, not production traffic — every knob exists so the soak
/// can pin deterministic behavior.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns one engine scratch).
    pub workers: usize,
    /// Accepted-but-unserved connection cap; beyond it the acceptor sheds.
    pub queue_capacity: usize,
    /// Header/body byte caps for request parsing.
    pub limits: HttpLimits,
    /// Budget from first request byte to fully framed request; re-armed
    /// onto every socket read (slow-loris bound).
    pub request_deadline: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub keep_alive_idle: Duration,
    /// On shutdown: bound on all *new* waiting (queue pickup, idle waits).
    /// In-flight request reads armed before shutdown still run out their
    /// `request_deadline`, so total drain ≤ `request_deadline +
    /// drain_deadline`.
    pub drain_deadline: Duration,
    /// `Retry-After` seconds advertised on the shed path.
    pub retry_after_secs: u32,
    /// Query route path (SPARQL protocol endpoint), e.g. `/sparql`.
    pub route: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            limits: HttpLimits::default(),
            request_deadline: Duration::from_secs(2),
            keep_alive_idle: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(1),
            retry_after_secs: 1,
            route: String::from("/sparql"),
        }
    }
}

/// Where one federation endpoint is served: the endpoint IRI the planner
/// knows it by, plus the HTTP authority/path to dispatch to.
#[derive(Clone, Debug)]
pub struct EndpointRoute {
    /// Endpoint IRI exactly as registered with the planner (no angle
    /// brackets), e.g. `http://ep0.example.org/sparql`.
    pub iri: String,
    /// `host:port` to connect to.
    pub authority: String,
    /// Request path on that host, e.g. `/sparql`.
    pub path: String,
}

/// Everything needed to serve the query route in federated mode.
pub struct FederationConfig {
    /// The planner holding the per-endpoint alignment stores.
    pub planner: FederationPlanner,
    /// The interner the planner's rules were built with; each worker
    /// clones it so request parsing resolves to the planner's symbols.
    pub interner: Interner,
    /// One route per planner endpoint (any order; matched by IRI).
    pub routes: Vec<EndpointRoute>,
    /// Executor tuning (deadline, retries, breaker).
    pub executor: ExecutorConfig,
    /// HTTP transport tuning.
    pub http: HttpConfig,
    /// Rewrite limits for per-endpoint subquery generation.
    pub limits: RewriteLimits,
    /// Record a deterministic per-request outcome transcript
    /// ([`Server::federation_transcript`]). Grows without bound — meant
    /// for soak gating, not production.
    pub record_outcomes: bool,
}

/// Structured startup rejection for a malformed federation config —
/// always an `Err`, never a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FederationConfigError {
    /// No routes given, or the planner has no endpoints.
    NoEndpoints,
    /// A route names an IRI the planner never registered.
    UnknownEndpointIri(String),
    /// Two routes name the same endpoint IRI.
    DuplicateEndpoint(String),
    /// A planner endpoint has no route to dispatch to.
    MissingRoute(String),
}

impl fmt::Display for FederationConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationConfigError::NoEndpoints => write!(f, "federation has no endpoints"),
            FederationConfigError::UnknownEndpointIri(iri) => {
                write!(f, "route names unknown endpoint IRI {iri}")
            }
            FederationConfigError::DuplicateEndpoint(iri) => {
                write!(f, "duplicate route for endpoint IRI {iri}")
            }
            FederationConfigError::MissingRoute(iri) => {
                write!(f, "no route for planner endpoint {iri}")
            }
        }
    }
}

impl std::error::Error for FederationConfigError {}

/// Why [`Server::spawn_federated`] failed: rejected config or socket
/// setup failure.
#[derive(Debug)]
pub enum SpawnError {
    Config(FederationConfigError),
    Io(io::Error),
}

impl fmt::Display for SpawnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpawnError::Config(e) => write!(f, "federation config: {e}"),
            SpawnError::Io(e) => write!(f, "spawn: {e}"),
        }
    }
}

impl std::error::Error for SpawnError {}

impl From<FederationConfigError> for SpawnError {
    fn from(e: FederationConfigError) -> SpawnError {
        SpawnError::Config(e)
    }
}

impl From<io::Error> for SpawnError {
    fn from(e: io::Error) -> SpawnError {
        SpawnError::Io(e)
    }
}

/// Outcome-class names in [`FederationStats::outcomes`] order — also the
/// vocabulary of the `X-Endpoint-Status` header and the envelope
/// `outcome` field.
pub const OUTCOME_CLASSES: [&str; 4] = ["served", "timed-out", "circuit-open", "retries-exhausted"];

fn outcome_class(o: &EndpointOutcome) -> usize {
    match o {
        EndpointOutcome::Served { .. } => 0,
        EndpointOutcome::TimedOut { .. } => 1,
        EndpointOutcome::CircuitOpen { .. } => 2,
        EndpointOutcome::ExhaustedRetries { .. } => 3,
    }
}

fn outcome_attempts(o: &EndpointOutcome) -> u32 {
    match *o {
        EndpointOutcome::Served { attempts, .. }
        | EndpointOutcome::TimedOut { attempts, .. }
        | EndpointOutcome::CircuitOpen { attempts }
        | EndpointOutcome::ExhaustedRetries { attempts, .. } => attempts,
    }
}

/// Snapshot of federated-serving counters ([`Server::federation_stats`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FederationStats {
    /// Per-endpoint-execution outcome tallies, [`OUTCOME_CLASSES`] order.
    pub outcomes: [u64; 4],
    /// Responses where every endpoint served (`200`, `"partial":false`).
    pub complete_responses: u64,
    /// Mixed responses (`200` with `"partial":true`).
    pub partial_responses: u64,
    /// All-degraded responses answered `502`.
    pub gateway_unavailable: u64,
    /// All-degraded responses answered `504` (some endpoint timed out).
    pub gateway_timeouts: u64,
    /// Endpoint executions that overshot `deadline + backoff.max_nanos`.
    pub deadline_breaches: u64,
    /// Transport worker panics caught inside the executor.
    pub transport_panics: u64,
    /// Keep-alive connections the transport reused.
    pub reused_connections: u64,
    /// Transparent reconnects after a dead pooled connection.
    pub transparent_reconnects: u64,
    /// Current breaker state per endpoint (dense id order).
    pub breakers: Vec<BreakerState>,
}

/// Federated-mode serving state shared across workers.
struct FederationRuntime {
    planner: FederationPlanner,
    executor: FederatedExecutor<HttpTransport>,
    interner: Interner,
    limits: RewriteLimits,
    /// Per-endpoint outcome tallies, [`OUTCOME_CLASSES`] order.
    outcome_counts: [AtomicU64; 4],
    complete_responses: AtomicU64,
    partial_responses: AtomicU64,
    gateway_unavailable: AtomicU64,
    gateway_timeouts: AtomicU64,
    /// Endpoint executions that overshot `deadline + backoff.max_nanos`.
    deadline_breaches: AtomicU64,
    /// Request sequence for transcript lines.
    seq: AtomicU64,
    transcript: Option<Mutex<String>>,
}

impl FederationRuntime {
    /// `Retry-After` seconds for an all-degraded response: ceiling of the
    /// soonest breaker half-open ETA, else the configured shed default.
    fn retry_after_secs(&self, fallback: u32) -> u64 {
        match self.executor.soonest_half_open_nanos() {
            Some(n) => n.div_ceil(1_000_000_000).max(1),
            None => u64::from(fallback.max(1)),
        }
    }
}

/// Validate a [`FederationConfig`] against its planner and build the
/// shared runtime. Every malformation is a structured error, never a
/// panic.
fn build_federation(fed: FederationConfig) -> Result<FederationRuntime, FederationConfigError> {
    let n = fed.planner.n_endpoints();
    if n == 0 || fed.routes.is_empty() {
        return Err(FederationConfigError::NoEndpoints);
    }
    let mut slots: Vec<Option<HttpEndpoint>> = (0..n).map(|_| None).collect();
    for route in &fed.routes {
        let id = (0..n).find(|&e| {
            let term = fed.planner.endpoint_term(EndpointId(e as u32));
            fed.interner.resolve(term.symbol()) == route.iri
        });
        let Some(id) = id else {
            return Err(FederationConfigError::UnknownEndpointIri(route.iri.clone()));
        };
        if slots[id].is_some() {
            return Err(FederationConfigError::DuplicateEndpoint(route.iri.clone()));
        }
        slots[id] = Some(HttpEndpoint::new(
            route.authority.clone(),
            route.path.clone(),
        ));
    }
    let mut endpoints = Vec::with_capacity(n);
    for (e, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(ep) => endpoints.push(ep),
            None => {
                let term = fed.planner.endpoint_term(EndpointId(e as u32));
                return Err(FederationConfigError::MissingRoute(
                    fed.interner.resolve(term.symbol()).to_string(),
                ));
            }
        }
    }
    let transport = HttpTransport::new(endpoints, fed.http);
    let executor = FederatedExecutor::new(transport, n, fed.executor);
    Ok(FederationRuntime {
        planner: fed.planner,
        executor,
        interner: fed.interner,
        limits: fed.limits,
        outcome_counts: std::array::from_fn(|_| AtomicU64::new(0)),
        complete_responses: AtomicU64::new(0),
        partial_responses: AtomicU64::new(0),
        gateway_unavailable: AtomicU64::new(0),
        gateway_timeouts: AtomicU64::new(0),
        deadline_breaches: AtomicU64::new(0),
        seq: AtomicU64::new(0),
        transcript: fed.record_outcomes.then(|| Mutex::new(String::new())),
    })
}

/// What the query route serves: one engine, or a federation. One value
/// per server; the size skew between the variants is irrelevant.
#[allow(clippy::large_enum_variant)]
enum ServeMode {
    Single(Arc<ServeEngine>),
    Federated(FederationRuntime),
}

/// Number of log-spaced latency bins per route: bin `i` covers
/// `[2^(10+i), 2^(11+i))` nanoseconds — 1 µs up to 2 s — with the first
/// and last bins absorbing under/overflow.
pub const LATENCY_BINS: usize = 22;

/// Lower bound (nanoseconds) of latency bin `i`.
pub fn latency_bin_lower_nanos(i: usize) -> u64 {
    1u64 << (10 + i.min(LATENCY_BINS - 1))
}

/// Fixed log2-binned latency histogram (relaxed atomics, lock-free).
/// Server-side wall-clock only — never part of determinism transcripts.
struct LatencyHistogram {
    bins: [AtomicU64; LATENCY_BINS],
}

impl LatencyHistogram {
    fn new() -> LatencyHistogram {
        LatencyHistogram {
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, nanos: u64) {
        let lg = 63 - nanos.max(1).leading_zeros() as usize;
        let bin = lg.saturating_sub(10).min(LATENCY_BINS - 1);
        self.bins[bin].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> [u64; LATENCY_BINS] {
        std::array::from_fn(|i| self.bins[i].load(Ordering::Relaxed))
    }
}

/// Monotone counters + gauges, updated with relaxed atomics off the hot
/// path's shared cache lines (per-request accounting that must be exact
/// per class is one `fetch_add` per outcome).
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    panics: AtomicU64,
    idle_closes: AtomicU64,
    in_flight: AtomicUsize,
    dropped_from_queue: AtomicU64,
    class_counts: [AtomicU64; ERROR_CLASSES],
}

impl Counters {
    fn new() -> Counters {
        Counters {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            idle_closes: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            dropped_from_queue: AtomicU64::new(0),
            class_counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn count(&self, e: RequestError) {
        self.class_counts[e.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// One coherent-enough read of the server's counters (each counter is an
/// independent relaxed load).
#[derive(Clone, Debug, Default)]
pub struct StatsSnapshot {
    /// Connections the acceptor took off the listener.
    pub accepted: u64,
    /// Connections refused with `503` because the queue was full.
    pub shed: u64,
    /// Requests answered `200`.
    pub served: u64,
    /// Worker panics caught at the connection boundary.
    pub panics: u64,
    /// Keep-alive connections that ended idle (timeout or clean EOF).
    pub idle_closes: u64,
    /// Connections currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Connections currently being handled by workers.
    pub in_flight: usize,
    /// Queued connections refused with `503` during shutdown drain.
    pub dropped_from_queue: u64,
    /// Per-[`RequestError`]-class counts, [`RequestError::labels`] order.
    pub error_classes: [u64; ERROR_CLASSES],
    /// Per-route server-side latency histograms ([`Route::index`] order:
    /// query, healthz, stats); bin `i` counts responses with latency in
    /// `[latency_bin_lower_nanos(i), latency_bin_lower_nanos(i+1))`.
    /// Wall-clock — excluded from determinism comparisons by design.
    pub latency: [[u64; LATENCY_BINS]; N_ROUTES],
}

impl StatsSnapshot {
    /// Count for one error class.
    pub fn class(&self, e: RequestError) -> u64 {
        self.error_classes[e.index()]
    }

    /// Sum of all error-class counts.
    pub fn errors_total(&self) -> u64 {
        self.error_classes.iter().sum()
    }
}

/// Bounded accept→work handoff. `try_push` is O(1) and never blocks the
/// acceptor; `notify_one` wakes exactly one worker.
struct Queue {
    inner: Mutex<VecDeque<TcpStream>>,
    cond: Condvar,
    capacity: usize,
}

impl Queue {
    fn try_push(&self, s: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.capacity {
            return Err(s);
        }
        q.push_back(s);
        drop(q);
        self.cond.notify_one();
        Ok(())
    }

    fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// State shared by the acceptor, the workers, and the [`Server`] handle.
struct Shared {
    mode: ServeMode,
    config: ServerConfig,
    latency: [LatencyHistogram; N_ROUTES],
    queue: Queue,
    shutdown: AtomicBool,
    /// Base instant for `drain_at_nanos` (atomics can't hold `Instant`).
    base: Instant,
    /// Drain deadline as nanos since `base`; `u64::MAX` = not draining.
    drain_at_nanos: AtomicU64,
    stats: Counters,
    shed_response: Vec<u8>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain_at_nanos.load(Ordering::Acquire) != u64::MAX
    }

    fn drain_instant(&self) -> Option<Instant> {
        let n = self.drain_at_nanos.load(Ordering::Acquire);
        (n != u64::MAX).then(|| self.base + Duration::from_nanos(n))
    }

    fn drain_expired(&self) -> bool {
        self.drain_instant().is_some_and(|d| Instant::now() >= d)
    }

    /// `now + budget`, capped by the drain deadline once draining.
    fn eff_deadline(&self, budget: Duration) -> Instant {
        let t = Instant::now() + budget;
        match self.drain_instant() {
            Some(d) if d < t => d,
            _ => t,
        }
    }

    /// Worker-side pickup: blocks (in 20ms condvar slices) until a
    /// connection is available or shutdown empties the well. Once the
    /// drain deadline has passed, remaining queued connections are left
    /// for [`Server::shutdown`] to refuse with `503`.
    fn pop_conn(&self) -> Option<TcpStream> {
        let mut q = self
            .queue
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.shutdown.load(Ordering::Acquire) && self.drain_expired() {
                return None;
            }
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .queue
                .cond
                .wait_timeout(q, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// What graceful shutdown observed.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Wall time from `shutdown()` entry to all threads joined.
    pub elapsed: Duration,
    /// Queued-but-never-served connections refused with `503` at the end.
    pub dropped_from_queue: usize,
    /// The configured drain deadline (for gating `elapsed` against).
    pub drain_deadline: Duration,
    /// The configured request deadline; `elapsed` is bounded by
    /// `drain_deadline + request_deadline` (in-flight reads run out).
    pub request_deadline: Duration,
}

impl DrainReport {
    /// Did the drain complete within its documented bound (plus `slack`
    /// for scheduling noise)?
    pub fn within_bound(&self, slack: Duration) -> bool {
        self.elapsed <= self.drain_deadline + self.request_deadline + slack
    }
}

/// A running server: an acceptor thread, `config.workers` worker threads,
/// and this handle. Dropping the handle without calling
/// [`Server::shutdown`] leaks the threads (they keep serving).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and start serving `engine` with `config` (single-store mode).
    pub fn spawn(engine: Arc<ServeEngine>, config: ServerConfig, addr: &str) -> io::Result<Server> {
        Server::spawn_mode(ServeMode::Single(engine), config, addr)
    }

    /// Bind `addr` and serve the query route in federated mode: each
    /// request is planned across `fed.planner`'s endpoints and dispatched
    /// over HTTP per `fed.routes`. The config is validated first; every
    /// malformation is a structured [`SpawnError::Config`].
    pub fn spawn_federated(
        fed: FederationConfig,
        config: ServerConfig,
        addr: &str,
    ) -> Result<Server, SpawnError> {
        let runtime = build_federation(fed)?;
        Ok(Server::spawn_mode(
            ServeMode::Federated(runtime),
            config,
            addr,
        )?)
    }

    fn spawn_mode(mode: ServeMode, config: ServerConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shed_response = render_shed(config.retry_after_secs);
        let n_workers = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            mode,
            latency: std::array::from_fn(|_| LatencyHistogram::new()),
            queue: Queue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                cond: Condvar::new(),
                capacity,
            },
            config,
            shutdown: AtomicBool::new(false),
            base: Instant::now(),
            drain_at_nanos: AtomicU64::new(u64::MAX),
            stats: Counters::new(),
            shed_response,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sparql-accept".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sparql-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the server (cache stats live there); `None` in
    /// federated mode.
    pub fn engine(&self) -> Option<&Arc<ServeEngine>> {
        match &self.shared.mode {
            ServeMode::Single(engine) => Some(engine),
            ServeMode::Federated(_) => None,
        }
    }

    /// Federated-mode counters; `None` in single-store mode.
    pub fn federation_stats(&self) -> Option<FederationStats> {
        let ServeMode::Federated(fed) = &self.shared.mode else {
            return None;
        };
        Some(FederationStats {
            outcomes: std::array::from_fn(|i| fed.outcome_counts[i].load(Ordering::Relaxed)),
            complete_responses: fed.complete_responses.load(Ordering::Relaxed),
            partial_responses: fed.partial_responses.load(Ordering::Relaxed),
            gateway_unavailable: fed.gateway_unavailable.load(Ordering::Relaxed),
            gateway_timeouts: fed.gateway_timeouts.load(Ordering::Relaxed),
            deadline_breaches: fed.deadline_breaches.load(Ordering::Relaxed),
            transport_panics: fed.executor.caught_panics(),
            reused_connections: fed.executor.transport().reused_connections(),
            transparent_reconnects: fed.executor.transport().transparent_reconnects(),
            breakers: fed.executor.breaker_states(),
        })
    }

    /// Clone of the deterministic per-request outcome transcript; `None`
    /// unless federated with `record_outcomes`.
    pub fn federation_transcript(&self) -> Option<String> {
        let ServeMode::Federated(fed) = &self.shared.mode else {
            return None;
        };
        fed.transcript
            .as_ref()
            .map(|t| t.lock().unwrap_or_else(PoisonError::into_inner).clone())
    }

    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.stats;
        StatsSnapshot {
            accepted: c.accepted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            idle_closes: c.idle_closes.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.depth(),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            dropped_from_queue: c.dropped_from_queue.load(Ordering::Relaxed),
            error_classes: std::array::from_fn(|i| c.class_counts[i].load(Ordering::Relaxed)),
            latency: std::array::from_fn(|r| self.shared.latency[r].snapshot()),
        }
    }

    /// Graceful shutdown: stop accepting, bound new waiting by the drain
    /// deadline, let in-flight reads run out their request deadline, join
    /// everything, refuse leftovers with `503`.
    pub fn shutdown(mut self) -> DrainReport {
        let start = Instant::now();
        let shared = &self.shared;
        let drain_at = start + shared.config.drain_deadline;
        shared.drain_at_nanos.store(
            drain_at.duration_since(shared.base).as_nanos() as u64,
            Ordering::Release,
        );
        shared.shutdown.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        shared.queue.cond.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let mut dropped = 0usize;
        let mut q = shared
            .queue
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while let Some(stream) = q.pop_front() {
            dropped += 1;
            write_shed(&stream, &shared.shed_response);
        }
        drop(q);
        shared
            .stats
            .dropped_from_queue
            .fetch_add(dropped as u64, Ordering::Relaxed);
        DrainReport {
            elapsed: start.elapsed(),
            dropped_from_queue: dropped,
            drain_deadline: shared.config.drain_deadline,
            request_deadline: shared.config.request_deadline,
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // The shutdown wake-up connection (or a straggler).
                    drop(stream);
                    return;
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if let Err(stream) = shared.queue.try_push(stream) {
                    // O(1) load shed: prebuilt bytes, no parsing, short
                    // write timeout so a dead peer can't stall accepts.
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    write_shed(&stream, &shared.shed_response);
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure (e.g. fd pressure): back off a
                // beat instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Per-worker serve state, matching the server's [`ServeMode`]. One
/// value per worker thread, alive for the thread's whole life; boxing
/// would only add a pointer chase on the serve path.
#[allow(clippy::large_enum_variant)]
enum WorkerScratch {
    Single(ServeScratch),
    Federated(FedScratch),
}

/// Federated-mode per-worker buffers: a cloned interner (so parsing
/// resolves to the planner's symbols without cross-worker locking),
/// parse scratch, and response-building buffers.
struct FedScratch {
    interner: Interner,
    parse: ParseScratch,
    body: String,
    status_header: String,
}

fn new_worker_scratch(shared: &Shared) -> WorkerScratch {
    match &shared.mode {
        ServeMode::Single(engine) => WorkerScratch::Single(engine.scratch()),
        ServeMode::Federated(fed) => WorkerScratch::Federated(FedScratch {
            interner: fed.interner.clone(),
            parse: ParseScratch::new(),
            body: String::new(),
            status_header: String::new(),
        }),
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = new_worker_scratch(shared);
    let mut req_scratch = RequestScratch::new();
    let mut resp = Vec::with_capacity(4096);
    while let Some(stream) = shared.pop_conn() {
        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(shared, &stream, &mut scratch, &mut req_scratch, &mut resp);
        }));
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            // Panic isolation: count it, answer what we can, rebuild the
            // scratches (their invariants may not have survived), live on.
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            resp.clear();
            render_response(&mut resp, 500, b"internal error\n", "text/plain", true);
            let _ = (&stream).write_all(&resp);
            let _ = stream.shutdown(Shutdown::Both);
            scratch = new_worker_scratch(shared);
            req_scratch = RequestScratch::new();
        }
    }
}

/// Outcome of waiting for the first byte of the next request.
enum FirstByte {
    Ready,
    Idle,
    Gone,
}

fn wait_first_byte(r: &mut BufReader<DeadlineReader<'_>>) -> FirstByte {
    match r.fill_buf() {
        Ok([]) => FirstByte::Idle, // clean EOF between requests
        Ok(_) => FirstByte::Ready,
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) =>
        {
            FirstByte::Idle
        }
        Err(_) => FirstByte::Gone,
    }
}

/// Serve one connection: keep-alive loop of idle-wait → deadline-armed
/// request read → engine serve → response. Every return closes the
/// connection (the stream drops with the caller's scope).
fn handle_connection(
    shared: &Shared,
    stream: &TcpStream,
    scratch: &mut WorkerScratch,
    req_scratch: &mut RequestScratch,
    resp: &mut Vec<u8>,
) {
    let _ = stream.set_nodelay(true);
    let reader = DeadlineReader::new(stream, Instant::now() + shared.config.keep_alive_idle);
    let mut r = BufReader::with_capacity(8 * 1024, reader);
    loop {
        // IDLE: between requests the only budget is the idle deadline
        // (capped by the drain deadline once shutdown begins).
        r.get_ref()
            .set_deadline(shared.eff_deadline(shared.config.keep_alive_idle));
        match wait_first_byte(&mut r) {
            FirstByte::Ready => {}
            FirstByte::Idle => {
                shared.stats.idle_closes.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FirstByte::Gone => return,
        }
        // PARSE: the first byte arrived; every subsequent read re-arms
        // the socket timeout to what's left of the request deadline.
        r.get_ref()
            .set_deadline(shared.eff_deadline(shared.config.request_deadline));
        let _ = stream.set_write_timeout(Some(shared.config.request_deadline));
        match read_request(
            &mut r,
            &shared.config.limits,
            shared.config.route.as_bytes(),
            req_scratch,
        ) {
            Ok(req) => {
                let t0 = Instant::now();
                let close = !req.keep_alive || shared.draining();
                match req.route {
                    Route::Query => serve_query(shared, scratch, req_scratch, resp, close),
                    Route::Health => render_health(shared, resp, close),
                    Route::Stats => render_stats(shared, resp, close),
                }
                // Framed-request → rendered-response latency, pre-write.
                shared.latency[req.route.index()].record(t0.elapsed().as_nanos() as u64);
                if write_all(stream, resp).is_err() || close {
                    return;
                }
            }
            Err(e) => {
                shared.stats.count(e);
                if let Some(status) = e.status() {
                    render_response(resp, status, e.label().as_bytes(), "text/plain", true);
                    if write_all(stream, resp).is_ok() {
                        // The peer may still be mid-send; a hard close now
                        // could RST the response out of their buffer.
                        linger_close(stream);
                    }
                }
                return;
            }
        }
    }
}

/// SERVE one framed query per the serve mode. A SPARQL-level failure
/// (parse or plan) is the one 4xx that keeps the connection — the HTTP
/// framing was clean, so we are still in sync.
fn serve_query(
    shared: &Shared,
    scratch: &mut WorkerScratch,
    req_scratch: &RequestScratch,
    resp: &mut Vec<u8>,
    close: bool,
) {
    match (&shared.mode, scratch) {
        (ServeMode::Single(engine), WorkerScratch::Single(serve_scratch)) => {
            match engine.serve(&req_scratch.query, serve_scratch) {
                Ok(out) => {
                    render_response(resp, 200, out.as_bytes(), "application/sparql-query", close);
                    shared.stats.served.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    let e = RequestError::QueryUnparseable;
                    shared.stats.count(e);
                    render_response(resp, 400, e.label().as_bytes(), "text/plain", close);
                }
            }
        }
        (ServeMode::Federated(fed), WorkerScratch::Federated(fs)) => {
            serve_federated(shared, fed, &req_scratch.query, fs, resp, close);
        }
        // Scratches are built from the mode, so the pairs always match.
        _ => unreachable!("worker scratch does not match serve mode"),
    }
}

/// Federated serve: parse → plan per endpoint → dispatch over HTTP → map
/// the per-endpoint outcomes onto one response.
///
/// * every endpoint served → `200`, envelope `"partial":false`
/// * some served → `200`, `"partial":true` + `X-Endpoint-Status` detail
/// * none served → `502` (`504` if any endpoint timed out) with
///   `Retry-After` from the soonest breaker half-open ETA
fn serve_federated(
    shared: &Shared,
    fed: &FederationRuntime,
    query: &str,
    fs: &mut FedScratch,
    resp: &mut Vec<u8>,
    close: bool,
) {
    use std::fmt::Write as _;
    let seq = fed.seq.fetch_add(1, Ordering::Relaxed);
    let planned = parse_query_into(query, &mut fs.interner, &mut fs.parse)
        .ok()
        .and_then(|()| {
            fed.planner
                .plan_for_dispatch(fs.parse.query_ref(), &fs.interner, fed.limits)
                .ok()
        });
    let Some(plan) = planned else {
        let e = RequestError::QueryUnparseable;
        shared.stats.count(e);
        if let Some(t) = &fed.transcript {
            let mut t = t.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = writeln!(t, "r{seq} reject query_unparseable");
        }
        render_response(resp, 400, e.label().as_bytes(), "text/plain", close);
        return;
    };
    let result = fed.executor.execute(&plan.endpoints);

    let ceiling = {
        let c = fed.executor.config();
        c.deadline_nanos.saturating_add(c.backoff.max_nanos)
    };
    let mut any_timeout = false;
    for report in &result.reports {
        fed.outcome_counts[outcome_class(&report.outcome)].fetch_add(1, Ordering::Relaxed);
        let elapsed = match report.outcome {
            EndpointOutcome::Served { latency_nanos, .. } => latency_nanos,
            EndpointOutcome::TimedOut { elapsed_nanos, .. } => {
                any_timeout = true;
                elapsed_nanos
            }
            _ => 0,
        };
        if elapsed > ceiling {
            fed.deadline_breaches.fetch_add(1, Ordering::Relaxed);
        }
    }
    if let Some(t) = &fed.transcript {
        let mut t = t.lock().unwrap_or_else(PoisonError::into_inner);
        for report in &result.reports {
            // Outcome classes, attempts, and row payloads only — never
            // wall-clock nanos — so two same-seed runs compare bytewise.
            let _ = writeln!(
                t,
                "r{seq} ep={} {} a={} rows={}",
                report.endpoint.0,
                OUTCOME_CLASSES[outcome_class(&report.outcome)],
                outcome_attempts(&report.outcome),
                report.rows.as_deref().unwrap_or("-"),
            );
        }
    }

    let n = result.reports.len();
    let served = result.served_count();
    render_envelope(
        fed,
        &result,
        plan.n_residual_patterns,
        served < n,
        &mut fs.body,
    );
    if served == n {
        fed.complete_responses.fetch_add(1, Ordering::Relaxed);
        shared.stats.served.fetch_add(1, Ordering::Relaxed);
        render_response(resp, 200, fs.body.as_bytes(), "application/json", close);
    } else {
        endpoint_status_header(&result, &mut fs.status_header);
        let extra = [("X-Endpoint-Status", fs.status_header.as_bytes())];
        if served > 0 {
            fed.partial_responses.fetch_add(1, Ordering::Relaxed);
            shared.stats.served.fetch_add(1, Ordering::Relaxed);
            render_with(
                resp,
                200,
                fs.body.as_bytes(),
                "application/json",
                close,
                None,
                &extra,
            );
        } else {
            let status = if any_timeout { 504 } else { 502 };
            let counter = if any_timeout {
                &fed.gateway_timeouts
            } else {
                &fed.gateway_unavailable
            };
            counter.fetch_add(1, Ordering::Relaxed);
            let retry = fed.retry_after_secs(shared.config.retry_after_secs);
            render_unavailable(
                resp,
                status,
                retry,
                fs.body.as_bytes(),
                "application/json",
                close,
                &extra,
            );
        }
    }
}

/// Hand-rolled JSON result envelope. Byte-deterministic for a fixed
/// outcome sequence: no latency or timestamp fields.
fn render_envelope(
    fed: &FederationRuntime,
    result: &FederatedResult,
    n_residual_patterns: usize,
    partial: bool,
    out: &mut String,
) {
    use std::fmt::Write as _;
    out.clear();
    let _ = write!(
        out,
        "{{\"partial\":{partial},\"residual_patterns\":{n_residual_patterns},\"endpoints\":["
    );
    for (i, report) in result.reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let iri = fed
            .interner
            .resolve(fed.planner.endpoint_term(report.endpoint).symbol());
        let _ = write!(out, "{{\"id\":{},\"iri\":\"", report.endpoint.0);
        push_json_escaped(out, iri);
        let _ = write!(
            out,
            "\",\"outcome\":\"{}\",\"attempts\":{}",
            OUTCOME_CLASSES[outcome_class(&report.outcome)],
            outcome_attempts(&report.outcome),
        );
        if let Some(rows) = &report.rows {
            out.push_str(",\"rows\":\"");
            push_json_escaped(out, rows);
            out.push('"');
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// `X-Endpoint-Status` value: `ep0=served,ep1=timed-out,…` in plan order.
fn endpoint_status_header(result: &FederatedResult, out: &mut String) {
    use std::fmt::Write as _;
    out.clear();
    for (i, report) in result.reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "ep{}={}",
            report.endpoint.0,
            OUTCOME_CLASSES[outcome_class(&report.outcome)]
        );
    }
}

/// Minimal JSON string escape: quote, backslash, and control bytes.
fn push_json_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `GET /healthz`: readiness probe. Not ready (`503` + reason body +
/// `Retry-After`) while draining, with a saturated admission queue, or —
/// federated — with every breaker open; otherwise `200 ok`.
fn render_health(shared: &Shared, resp: &mut Vec<u8>, close: bool) {
    let reason_body: Option<&[u8]> = if shared.draining() {
        Some(b"draining\n")
    } else if shared.queue.depth() >= shared.queue.capacity {
        Some(b"queue-full\n")
    } else if let ServeMode::Federated(fed) = &shared.mode {
        let states = fed.executor.breaker_states();
        let all_open = !states.is_empty() && states.iter().all(|s| *s == BreakerState::Open);
        all_open.then_some(b"breakers-open\n".as_slice())
    } else {
        None
    };
    match reason_body {
        Some(body) => {
            let retry = match &shared.mode {
                ServeMode::Federated(fed) => fed.retry_after_secs(shared.config.retry_after_secs),
                ServeMode::Single(_) => u64::from(shared.config.retry_after_secs.max(1)),
            };
            render_unavailable(resp, 503, retry, body, "text/plain", close, &[]);
        }
        None => render_response(resp, 200, b"ok\n", "text/plain", close),
    }
}

/// `GET /stats`: JSON counters snapshot. Builds into a fresh `String` —
/// the observability surface is off the zero-alloc hot path by design.
fn render_stats(shared: &Shared, resp: &mut Vec<u8>, close: bool) {
    use std::fmt::Write as _;
    let c = &shared.stats;
    let mut s = String::with_capacity(2048);
    let _ = write!(
        s,
        "{{\"accepted\":{},\"shed\":{},\"served\":{},\"worker_panics\":{},\"idle_closes\":{},\"queue_depth\":{},\"queue_capacity\":{},\"in_flight\":{}",
        c.accepted.load(Ordering::Relaxed),
        c.shed.load(Ordering::Relaxed),
        c.served.load(Ordering::Relaxed),
        c.panics.load(Ordering::Relaxed),
        c.idle_closes.load(Ordering::Relaxed),
        shared.queue.depth(),
        shared.queue.capacity,
        c.in_flight.load(Ordering::Relaxed),
    );
    s.push_str(",\"errors\":{");
    for (i, label) in RequestError::labels().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\"{label}\":{}",
            c.class_counts[i].load(Ordering::Relaxed)
        );
    }
    s.push('}');
    let _ = write!(
        s,
        ",\"drain\":{{\"draining\":{},\"dropped_from_queue\":{},\"drain_deadline_ms\":{},\"request_deadline_ms\":{}}}",
        shared.draining(),
        c.dropped_from_queue.load(Ordering::Relaxed),
        shared.config.drain_deadline.as_millis(),
        shared.config.request_deadline.as_millis(),
    );
    s.push_str(",\"latency_nanos\":{\"bin_lower\":[");
    for i in 0..LATENCY_BINS {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{}", latency_bin_lower_nanos(i));
    }
    s.push(']');
    for (name, hist) in [
        ("query", &shared.latency[Route::Query.index()]),
        ("healthz", &shared.latency[Route::Health.index()]),
        ("stats", &shared.latency[Route::Stats.index()]),
    ] {
        let _ = write!(s, ",\"{name}\":[");
        for (i, v) in hist.snapshot().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{v}");
        }
        s.push(']');
    }
    s.push('}');
    match &shared.mode {
        ServeMode::Single(engine) => {
            if let Some(stats) = engine.cache_stats() {
                let (grows, shrinks) = engine.cache_resizes();
                let _ = write!(
                    s,
                    ",\"cache\":{{\"occupancy\":{},\"capacity\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"oversize_bypasses\":{},\"value_cap\":{},\"grows\":{},\"shrinks\":{}}}",
                    stats.occupancy(),
                    stats.capacity(),
                    stats.hits(),
                    stats.misses(),
                    stats.evictions(),
                    stats.oversize_bypasses(),
                    engine.cache_value_cap().unwrap_or(0),
                    grows,
                    shrinks,
                );
            }
        }
        ServeMode::Federated(fed) => {
            let _ = write!(
                s,
                ",\"federation\":{{\"complete\":{},\"partial\":{},\"gateway_502\":{},\"gateway_504\":{},\"deadline_breaches\":{},\"transport_panics\":{},\"reused_connections\":{},\"transparent_reconnects\":{}",
                fed.complete_responses.load(Ordering::Relaxed),
                fed.partial_responses.load(Ordering::Relaxed),
                fed.gateway_unavailable.load(Ordering::Relaxed),
                fed.gateway_timeouts.load(Ordering::Relaxed),
                fed.deadline_breaches.load(Ordering::Relaxed),
                fed.executor.caught_panics(),
                fed.executor.transport().reused_connections(),
                fed.executor.transport().transparent_reconnects(),
            );
            s.push_str(",\"outcomes\":{");
            for (i, name) in OUTCOME_CLASSES.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "\"{name}\":{}",
                    fed.outcome_counts[i].load(Ordering::Relaxed)
                );
            }
            s.push_str("},\"breakers\":[");
            for (i, st) in fed.executor.breaker_states().iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{st:?}\"");
            }
            s.push_str("]}");
        }
    }
    s.push('}');
    render_response(resp, 200, s.as_bytes(), "application/json", close);
}

/// `Write` goes through `impl Write for &TcpStream` (shared reference,
/// interior syscall) — this pins the reborrow the method call needs.
fn write_all(mut s: &TcpStream, buf: &[u8]) -> io::Result<()> {
    s.write_all(buf)
}

/// Half-close and briefly drain so an error response survives a peer
/// that is still writing (close-with-unread-data triggers RST).
fn linger_close(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let until = Instant::now() + Duration::from_millis(150);
    let mut buf = [0u8; 4096];
    let mut drained = 0usize;
    let mut s = stream;
    while drained < 64 * 1024 && Instant::now() < until {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Shed-path write: prebuilt bytes, bounded write, brief linger.
fn write_shed(stream: &TcpStream, bytes: &[u8]) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut s = stream;
    if s.write_all(bytes).is_ok() {
        let _ = stream.shutdown(Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
        let mut buf = [0u8; 1024];
        let _ = s.read(&mut buf);
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// The one response renderer: status line, `Content-Type`, optional
/// `Retry-After`, extra headers, `Content-Length`, optional
/// `Connection: close`, body. Allocation-free once `buf` has capacity —
/// the 200 hot path reuses one buffer per worker.
fn render_with(
    buf: &mut Vec<u8>,
    status: u16,
    body: &[u8],
    content_type: &str,
    close: bool,
    retry_after_secs: Option<u64>,
    extra: &[(&str, &[u8])],
) {
    buf.clear();
    buf.extend_from_slice(b"HTTP/1.1 ");
    push_decimal(buf, status as u64);
    buf.push(b' ');
    buf.extend_from_slice(reason(status).as_bytes());
    buf.extend_from_slice(b"\r\nContent-Type: ");
    buf.extend_from_slice(content_type.as_bytes());
    if let Some(secs) = retry_after_secs {
        buf.extend_from_slice(b"\r\nRetry-After: ");
        push_decimal(buf, secs);
    }
    for (name, value) in extra {
        buf.extend_from_slice(b"\r\n");
        buf.extend_from_slice(name.as_bytes());
        buf.extend_from_slice(b": ");
        buf.extend_from_slice(value);
    }
    buf.extend_from_slice(b"\r\nContent-Length: ");
    push_decimal(buf, body.len() as u64);
    if close {
        buf.extend_from_slice(b"\r\nConnection: close");
    }
    buf.extend_from_slice(b"\r\n\r\n");
    buf.extend_from_slice(body);
}

/// Render a plain response (no `Retry-After`, no extra headers).
fn render_response(buf: &mut Vec<u8>, status: u16, body: &[u8], content_type: &str, close: bool) {
    render_with(buf, status, body, content_type, close, None, &[]);
}

/// Render a `Retry-After`-bearing unavailability response — the single
/// helper behind the prebuilt shed `503`, the federated all-degraded
/// `502`/`504`, and the not-ready health probe.
fn render_unavailable(
    buf: &mut Vec<u8>,
    status: u16,
    retry_after_secs: u64,
    body: &[u8],
    content_type: &str,
    close: bool,
    extra: &[(&str, &[u8])],
) {
    render_with(
        buf,
        status,
        body,
        content_type,
        close,
        Some(retry_after_secs),
        extra,
    );
}

/// The prebuilt overload response the acceptor writes on the shed path.
fn render_shed(retry_after_secs: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(160);
    render_unavailable(
        &mut buf,
        503,
        u64::from(retry_after_secs),
        b"overloaded\n",
        "text/plain",
        true,
        &[],
    );
    buf
}

fn push_decimal(out: &mut Vec<u8>, mut n: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_and_gateway_responses_share_retry_after() {
        let shed = render_shed(7);
        let text = String::from_utf8_lossy(&shed).into_owned();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("\r\nRetry-After: 7\r\n"));
        assert!(text.contains("\r\nConnection: close\r\n"));
        assert!(text.ends_with("\r\n\r\noverloaded\n"));

        let mut buf = Vec::new();
        render_unavailable(&mut buf, 502, 3, b"{}", "application/json", true, &[]);
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(text.starts_with("HTTP/1.1 502 Bad Gateway\r\n"));
        assert!(text.contains("\r\nRetry-After: 3\r\n"));

        let mut buf = Vec::new();
        render_unavailable(
            &mut buf,
            504,
            1,
            b"{}",
            "application/json",
            false,
            &[("X-Endpoint-Status", b"ep0=timed-out")],
        );
        let text = String::from_utf8_lossy(&buf).into_owned();
        assert!(text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"));
        assert!(text.contains("\r\nRetry-After: 1\r\n"));
        assert!(text.contains("\r\nX-Endpoint-Status: ep0=timed-out\r\n"));
    }

    #[test]
    fn shed_bytes_unchanged_by_helper_unification() {
        // Pin the exact byte shape the overload soak's shed assertions
        // rely on (body, header order, close semantics).
        let expected: &[u8] = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nRetry-After: 1\r\nContent-Length: 11\r\nConnection: close\r\n\r\noverloaded\n";
        assert_eq!(render_shed(1), expected);
    }

    #[test]
    fn latency_bins_are_log_spaced_and_saturating() {
        let h = LatencyHistogram::new();
        h.record(0); // clamps into bin 0
        h.record(1_023); // below 2^10 → bin 0
        h.record(1_024); // 2^10 → bin 0 lower bound
        h.record(2_048); // 2^11 → bin 1
        h.record(u64::MAX); // saturates into the last bin
        let snap = h.snapshot();
        assert_eq!(snap[0], 3);
        assert_eq!(snap[1], 1);
        assert_eq!(snap[LATENCY_BINS - 1], 1);
        assert_eq!(snap.iter().sum::<u64>(), 5);
        assert_eq!(latency_bin_lower_nanos(0), 1 << 10);
        assert_eq!(latency_bin_lower_nanos(LATENCY_BINS - 1), 1 << 31);
    }
}
