//! Overload-safe SPARQL HTTP front end over the rewriting serve engine.
//!
//! Thread-per-worker blocking I/O over `std::net` — no async runtime, no
//! dependencies. One acceptor thread and N worker threads share one
//! [`ServeEngine`] behind an `Arc`; each worker pins its own
//! [`ServeScratch`] + [`RequestScratch`] + response buffer, so the warm
//! request path (keep-alive connection, cache hit) performs **zero heap
//! allocations** end to end through the socket — the bench harness gates
//! on that with the counting allocator.
//!
//! The request lifecycle is a strict state machine:
//!
//! ```text
//!            accept
//!              │
//!       queue full? ──yes──► SHED: 503 + Retry-After, close
//!              │                  (written by the acceptor, O(1),
//!            queued                before any request byte is read)
//!              │
//!        worker picks up
//!              │
//!      ┌──── IDLE ◄────────────────────────────┐
//!      │  wait first byte                      │
//!      │  (keep-alive idle deadline)           │
//!      │       │                               │
//!      │     PARSE — request deadline armed    │
//!      │       │     onto every socket read    │
//!      │   ┌───┴─────────┐                     │
//!      │ malformed     framed                  │
//!      │   │             │                     │
//!      │ 4xx, close    SERVE (engine)          │
//!      │               ┌─┴──────────┐          │
//!      │          parse error     rewritten    │
//!      │               │            │          │
//!      │          400, keep      200, keep ────┘
//!      │               └────────────┘
//!      └── idle timeout / peer close / drain → connection closed
//! ```
//!
//! Overload never queues unboundedly: admission is a bounded queue and
//! the shed path is O(1) — the acceptor writes a prebuilt `503` +
//! `Retry-After` and closes, without parsing a byte. Slow peers never
//! hold a worker past the request deadline: the shared
//! [`DeadlineReader`] re-arms the socket timeout before every read.
//! Worker panics are isolated per connection (`catch_unwind` → best-effort
//! `500`, scratch rebuilt, worker lives on). Shutdown stops accepting,
//! lets in-flight requests run out their request deadline, bounds all
//! *new* waiting by the drain deadline, and reports what was dropped —
//! so total shutdown time is bounded by `request_deadline +
//! drain_deadline`.
//!
//! [`DeadlineReader`]: sparql_rewrite_core::httpcore::DeadlineReader

pub mod request;

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sparql_rewrite_core::httpcore::{DeadlineReader, HttpLimits};
use sparql_rewrite_core::{ServeEngine, ServeScratch};

use request::{read_request, RequestError, RequestScratch, ERROR_CLASSES};

/// Tunables for one [`Server`]. The defaults are sized for a loopback
/// bench profile, not production traffic — every knob exists so the soak
/// can pin deterministic behavior.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns one engine scratch).
    pub workers: usize,
    /// Accepted-but-unserved connection cap; beyond it the acceptor sheds.
    pub queue_capacity: usize,
    /// Header/body byte caps for request parsing.
    pub limits: HttpLimits,
    /// Budget from first request byte to fully framed request; re-armed
    /// onto every socket read (slow-loris bound).
    pub request_deadline: Duration,
    /// How long a keep-alive connection may sit idle between requests.
    pub keep_alive_idle: Duration,
    /// On shutdown: bound on all *new* waiting (queue pickup, idle waits).
    /// In-flight request reads armed before shutdown still run out their
    /// `request_deadline`, so total drain ≤ `request_deadline +
    /// drain_deadline`.
    pub drain_deadline: Duration,
    /// `Retry-After` seconds advertised on the shed path.
    pub retry_after_secs: u32,
    /// Query route path (SPARQL protocol endpoint), e.g. `/sparql`.
    pub route: String,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            limits: HttpLimits::default(),
            request_deadline: Duration::from_secs(2),
            keep_alive_idle: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(1),
            retry_after_secs: 1,
            route: String::from("/sparql"),
        }
    }
}

/// Monotone counters + gauges, updated with relaxed atomics off the hot
/// path's shared cache lines (per-request accounting that must be exact
/// per class is one `fetch_add` per outcome).
struct Counters {
    accepted: AtomicU64,
    shed: AtomicU64,
    served: AtomicU64,
    panics: AtomicU64,
    idle_closes: AtomicU64,
    in_flight: AtomicUsize,
    class_counts: [AtomicU64; ERROR_CLASSES],
}

impl Counters {
    fn new() -> Counters {
        Counters {
            accepted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            served: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            idle_closes: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            class_counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn count(&self, e: RequestError) {
        self.class_counts[e.index()].fetch_add(1, Ordering::Relaxed);
    }
}

/// One coherent-enough read of the server's counters (each counter is an
/// independent relaxed load).
#[derive(Clone, Debug, Default)]
pub struct StatsSnapshot {
    /// Connections the acceptor took off the listener.
    pub accepted: u64,
    /// Connections refused with `503` because the queue was full.
    pub shed: u64,
    /// Requests answered `200`.
    pub served: u64,
    /// Worker panics caught at the connection boundary.
    pub panics: u64,
    /// Keep-alive connections that ended idle (timeout or clean EOF).
    pub idle_closes: u64,
    /// Connections currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Connections currently being handled by workers.
    pub in_flight: usize,
    /// Per-[`RequestError`]-class counts, [`RequestError::labels`] order.
    pub error_classes: [u64; ERROR_CLASSES],
}

impl StatsSnapshot {
    /// Count for one error class.
    pub fn class(&self, e: RequestError) -> u64 {
        self.error_classes[e.index()]
    }

    /// Sum of all error-class counts.
    pub fn errors_total(&self) -> u64 {
        self.error_classes.iter().sum()
    }
}

/// Bounded accept→work handoff. `try_push` is O(1) and never blocks the
/// acceptor; `notify_one` wakes exactly one worker.
struct Queue {
    inner: Mutex<VecDeque<TcpStream>>,
    cond: Condvar,
    capacity: usize,
}

impl Queue {
    fn try_push(&self, s: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.capacity {
            return Err(s);
        }
        q.push_back(s);
        drop(q);
        self.cond.notify_one();
        Ok(())
    }

    fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// State shared by the acceptor, the workers, and the [`Server`] handle.
struct Shared {
    engine: Arc<ServeEngine>,
    config: ServerConfig,
    queue: Queue,
    shutdown: AtomicBool,
    /// Base instant for `drain_at_nanos` (atomics can't hold `Instant`).
    base: Instant,
    /// Drain deadline as nanos since `base`; `u64::MAX` = not draining.
    drain_at_nanos: AtomicU64,
    stats: Counters,
    shed_response: Vec<u8>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.drain_at_nanos.load(Ordering::Acquire) != u64::MAX
    }

    fn drain_instant(&self) -> Option<Instant> {
        let n = self.drain_at_nanos.load(Ordering::Acquire);
        (n != u64::MAX).then(|| self.base + Duration::from_nanos(n))
    }

    fn drain_expired(&self) -> bool {
        self.drain_instant().is_some_and(|d| Instant::now() >= d)
    }

    /// `now + budget`, capped by the drain deadline once draining.
    fn eff_deadline(&self, budget: Duration) -> Instant {
        let t = Instant::now() + budget;
        match self.drain_instant() {
            Some(d) if d < t => d,
            _ => t,
        }
    }

    /// Worker-side pickup: blocks (in 20ms condvar slices) until a
    /// connection is available or shutdown empties the well. Once the
    /// drain deadline has passed, remaining queued connections are left
    /// for [`Server::shutdown`] to refuse with `503`.
    fn pop_conn(&self) -> Option<TcpStream> {
        let mut q = self
            .queue
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.shutdown.load(Ordering::Acquire) && self.drain_expired() {
                return None;
            }
            if let Some(s) = q.pop_front() {
                return Some(s);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            let (guard, _) = self
                .queue
                .cond
                .wait_timeout(q, Duration::from_millis(20))
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }
}

/// What graceful shutdown observed.
#[derive(Clone, Debug)]
pub struct DrainReport {
    /// Wall time from `shutdown()` entry to all threads joined.
    pub elapsed: Duration,
    /// Queued-but-never-served connections refused with `503` at the end.
    pub dropped_from_queue: usize,
    /// The configured drain deadline (for gating `elapsed` against).
    pub drain_deadline: Duration,
    /// The configured request deadline; `elapsed` is bounded by
    /// `drain_deadline + request_deadline` (in-flight reads run out).
    pub request_deadline: Duration,
}

impl DrainReport {
    /// Did the drain complete within its documented bound (plus `slack`
    /// for scheduling noise)?
    pub fn within_bound(&self, slack: Duration) -> bool {
        self.elapsed <= self.drain_deadline + self.request_deadline + slack
    }
}

/// A running server: an acceptor thread, `config.workers` worker threads,
/// and this handle. Dropping the handle without calling
/// [`Server::shutdown`] leaks the threads (they keep serving).
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral loopback port)
    /// and start serving `engine` with `config`.
    pub fn spawn(engine: Arc<ServeEngine>, config: ServerConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shed_response = render_shed(config.retry_after_secs);
        let n_workers = config.workers.max(1);
        let capacity = config.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            engine,
            queue: Queue {
                inner: Mutex::new(VecDeque::with_capacity(capacity)),
                cond: Condvar::new(),
                capacity,
            },
            config,
            shutdown: AtomicBool::new(false),
            base: Instant::now(),
            drain_at_nanos: AtomicU64::new(u64::MAX),
            stats: Counters::new(),
            shed_response,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sparql-accept".into())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sparql-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the server (cache stats live there).
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.shared.engine
    }

    pub fn stats(&self) -> StatsSnapshot {
        let c = &self.shared.stats;
        StatsSnapshot {
            accepted: c.accepted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            served: c.served.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            idle_closes: c.idle_closes.load(Ordering::Relaxed),
            queue_depth: self.shared.queue.depth(),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            error_classes: std::array::from_fn(|i| c.class_counts[i].load(Ordering::Relaxed)),
        }
    }

    /// Graceful shutdown: stop accepting, bound new waiting by the drain
    /// deadline, let in-flight reads run out their request deadline, join
    /// everything, refuse leftovers with `503`.
    pub fn shutdown(mut self) -> DrainReport {
        let start = Instant::now();
        let shared = &self.shared;
        let drain_at = start + shared.config.drain_deadline;
        shared.drain_at_nanos.store(
            drain_at.duration_since(shared.base).as_nanos() as u64,
            Ordering::Release,
        );
        shared.shutdown.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        shared.queue.cond.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let mut dropped = 0usize;
        let mut q = shared
            .queue
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while let Some(stream) = q.pop_front() {
            dropped += 1;
            write_shed(&stream, &shared.shed_response);
        }
        drop(q);
        DrainReport {
            elapsed: start.elapsed(),
            dropped_from_queue: dropped,
            drain_deadline: shared.config.drain_deadline,
            request_deadline: shared.config.request_deadline,
        }
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    // The shutdown wake-up connection (or a straggler).
                    drop(stream);
                    return;
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if let Err(stream) = shared.queue.try_push(stream) {
                    // O(1) load shed: prebuilt bytes, no parsing, short
                    // write timeout so a dead peer can't stall accepts.
                    shared.stats.shed.fetch_add(1, Ordering::Relaxed);
                    write_shed(&stream, &shared.shed_response);
                }
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept failure (e.g. fd pressure): back off a
                // beat instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut serve_scratch = shared.engine.scratch();
    let mut req_scratch = RequestScratch::new();
    let mut resp = Vec::with_capacity(4096);
    while let Some(stream) = shared.pop_conn() {
        shared.stats.in_flight.fetch_add(1, Ordering::Relaxed);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle_connection(
                shared,
                &stream,
                &mut serve_scratch,
                &mut req_scratch,
                &mut resp,
            );
        }));
        shared.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        if outcome.is_err() {
            // Panic isolation: count it, answer what we can, rebuild the
            // scratches (their invariants may not have survived), live on.
            shared.stats.panics.fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            resp.clear();
            render_response(&mut resp, 500, b"internal error\n", "text/plain", true);
            let _ = (&stream).write_all(&resp);
            let _ = stream.shutdown(Shutdown::Both);
            serve_scratch = shared.engine.scratch();
            req_scratch = RequestScratch::new();
        }
    }
}

/// Outcome of waiting for the first byte of the next request.
enum FirstByte {
    Ready,
    Idle,
    Gone,
}

fn wait_first_byte(r: &mut BufReader<DeadlineReader<'_>>) -> FirstByte {
    match r.fill_buf() {
        Ok([]) => FirstByte::Idle, // clean EOF between requests
        Ok(_) => FirstByte::Ready,
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
            ) =>
        {
            FirstByte::Idle
        }
        Err(_) => FirstByte::Gone,
    }
}

/// Serve one connection: keep-alive loop of idle-wait → deadline-armed
/// request read → engine serve → response. Every return closes the
/// connection (the stream drops with the caller's scope).
fn handle_connection(
    shared: &Shared,
    stream: &TcpStream,
    serve_scratch: &mut ServeScratch,
    req_scratch: &mut RequestScratch,
    resp: &mut Vec<u8>,
) {
    let _ = stream.set_nodelay(true);
    let reader = DeadlineReader::new(stream, Instant::now() + shared.config.keep_alive_idle);
    let mut r = BufReader::with_capacity(8 * 1024, reader);
    loop {
        // IDLE: between requests the only budget is the idle deadline
        // (capped by the drain deadline once shutdown begins).
        r.get_ref()
            .set_deadline(shared.eff_deadline(shared.config.keep_alive_idle));
        match wait_first_byte(&mut r) {
            FirstByte::Ready => {}
            FirstByte::Idle => {
                shared.stats.idle_closes.fetch_add(1, Ordering::Relaxed);
                return;
            }
            FirstByte::Gone => return,
        }
        // PARSE: the first byte arrived; every subsequent read re-arms
        // the socket timeout to what's left of the request deadline.
        r.get_ref()
            .set_deadline(shared.eff_deadline(shared.config.request_deadline));
        let _ = stream.set_write_timeout(Some(shared.config.request_deadline));
        match read_request(
            &mut r,
            &shared.config.limits,
            shared.config.route.as_bytes(),
            req_scratch,
        ) {
            Ok(req) => {
                let close = !req.keep_alive || shared.draining();
                // SERVE: cache hit or full pipeline; a SPARQL-level parse
                // failure is the one 4xx that keeps the connection (the
                // HTTP framing was clean, so we are still in sync).
                match shared.engine.serve(&req_scratch.query, serve_scratch) {
                    Ok(out) => {
                        render_response(
                            resp,
                            200,
                            out.as_bytes(),
                            "application/sparql-query",
                            close,
                        );
                        shared.stats.served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        let e = RequestError::QueryUnparseable;
                        shared.stats.count(e);
                        render_response(resp, 400, e.label().as_bytes(), "text/plain", close);
                    }
                }
                if write_all(stream, resp).is_err() || close {
                    return;
                }
            }
            Err(e) => {
                shared.stats.count(e);
                if let Some(status) = e.status() {
                    render_response(resp, status, e.label().as_bytes(), "text/plain", true);
                    if write_all(stream, resp).is_ok() {
                        // The peer may still be mid-send; a hard close now
                        // could RST the response out of their buffer.
                        linger_close(stream);
                    }
                }
                return;
            }
        }
    }
}

/// `Write` goes through `impl Write for &TcpStream` (shared reference,
/// interior syscall) — this pins the reborrow the method call needs.
fn write_all(mut s: &TcpStream, buf: &[u8]) -> io::Result<()> {
    s.write_all(buf)
}

/// Half-close and briefly drain so an error response survives a peer
/// that is still writing (close-with-unread-data triggers RST).
fn linger_close(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let until = Instant::now() + Duration::from_millis(150);
    let mut buf = [0u8; 4096];
    let mut drained = 0usize;
    let mut s = stream;
    while drained < 64 * 1024 && Instant::now() < until {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Shed-path write: prebuilt bytes, bounded write, brief linger.
fn write_shed(stream: &TcpStream, bytes: &[u8]) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let mut s = stream;
    if s.write_all(bytes).is_ok() {
        let _ = stream.shutdown(Shutdown::Write);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
        let mut buf = [0u8; 1024];
        let _ = s.read(&mut buf);
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Render a full response into `buf` (cleared first). Allocation-free
/// once `buf` has capacity — the 200 hot path reuses one buffer per
/// worker.
fn render_response(buf: &mut Vec<u8>, status: u16, body: &[u8], content_type: &str, close: bool) {
    buf.clear();
    buf.extend_from_slice(b"HTTP/1.1 ");
    push_decimal(buf, status as u64);
    buf.push(b' ');
    buf.extend_from_slice(reason(status).as_bytes());
    buf.extend_from_slice(b"\r\nContent-Type: ");
    buf.extend_from_slice(content_type.as_bytes());
    buf.extend_from_slice(b"\r\nContent-Length: ");
    push_decimal(buf, body.len() as u64);
    if close {
        buf.extend_from_slice(b"\r\nConnection: close");
    }
    buf.extend_from_slice(b"\r\n\r\n");
    buf.extend_from_slice(body);
}

/// The prebuilt overload response the acceptor writes on the shed path.
fn render_shed(retry_after_secs: u32) -> Vec<u8> {
    let body = b"overloaded\n";
    let mut buf = Vec::with_capacity(160);
    buf.extend_from_slice(
        b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nRetry-After: ",
    );
    push_decimal(&mut buf, retry_after_secs as u64);
    buf.extend_from_slice(b"\r\nContent-Length: ");
    push_decimal(&mut buf, body.len() as u64);
    buf.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    buf.extend_from_slice(body);
    buf
}

fn push_decimal(out: &mut Vec<u8>, mut n: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}
