//! SPARQL-protocol request parsing over the shared `httpcore` framing
//! primitives.
//!
//! The reader accepts the two protocol bindings the SPARQL 1.1 Protocol
//! defines for queries: `GET <route>?query=<urlencoded>` and
//! `POST <route>` with either an `application/sparql-query` body (the
//! query verbatim) or an `application/x-www-form-urlencoded` body
//! carrying `query=`. Everything else — and every way a request can be
//! malformed, oversized, slow, or truncated — degrades to a
//! [`RequestError`] that maps onto exactly one HTTP status and one
//! per-class counter. There is deliberately no "unknown error" class:
//! a failure the taxonomy cannot name is a bug the malformed-request
//! battery should catch, not a 500.
//!
//! All parsing state lives in the caller-owned [`RequestScratch`], so a
//! keep-alive connection loop reads request after request with zero heap
//! allocations once the scratch buffers are warm (the chunked-body path
//! is the one exception and is not on the healthy-traffic profile).

use std::io::BufRead;
use std::str;

use sparql_rewrite_core::httpcore::{
    read_chunked_body_into, read_headers, read_line_bounded, trim_ascii, HeaderFraming, HttpError,
    HttpLimits,
};

/// Every way one request can fail, each with a fixed response status
/// ([`RequestError::status`]) and a stable counter slot
/// ([`RequestError::index`]). `Closed` is the one class with no status:
/// the peer is gone (or died mid-message), so there is nobody to answer.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RequestError {
    /// Request line was not `METHOD SP target SP HTTP/1.<0|1>`, or a GET
    /// declared a body.
    BadRequestLine,
    /// Header without a colon, or an obs-fold with nothing to extend.
    BadHeader,
    /// Request line + headers exceeded [`HttpLimits::max_header_bytes`].
    HeadersTooLarge,
    /// Declared or decoded body exceeded [`HttpLimits::max_body_bytes`].
    BodyTooLarge,
    /// Unparseable or self-contradictory `Content-Length`.
    InvalidContentLength,
    /// Malformed chunked transfer coding.
    InvalidChunk,
    /// POST with neither `Content-Length` nor chunked framing.
    LengthRequired,
    /// A method other than GET or POST.
    MethodNotAllowed,
    /// POST body with a `Content-Type` that is neither SPARQL binding.
    UnsupportedMediaType,
    /// Target path is not the configured query route.
    NotFound,
    /// No `query` parameter (GET query string / form body).
    MissingQuery,
    /// Broken percent-encoding or non-UTF-8 query text.
    BadEncoding,
    /// Framing was fine; the SPARQL text did not parse. The connection
    /// stays usable — this is the only error class that keeps it.
    QueryUnparseable,
    /// The per-request deadline expired mid-read (slow loris, stalled
    /// peer): answered `408` and closed.
    Timeout,
    /// Peer disconnected before completing the request; no response.
    Closed,
}

/// Number of [`RequestError`] classes (sizing for counter arrays).
pub const ERROR_CLASSES: usize = 15;

impl RequestError {
    /// Stable counter slot for this class.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Counter label, also used as the error-response body.
    pub fn label(self) -> &'static str {
        match self {
            RequestError::BadRequestLine => "bad_request_line",
            RequestError::BadHeader => "bad_header",
            RequestError::HeadersTooLarge => "headers_too_large",
            RequestError::BodyTooLarge => "body_too_large",
            RequestError::InvalidContentLength => "invalid_content_length",
            RequestError::InvalidChunk => "invalid_chunk",
            RequestError::LengthRequired => "length_required",
            RequestError::MethodNotAllowed => "method_not_allowed",
            RequestError::UnsupportedMediaType => "unsupported_media_type",
            RequestError::NotFound => "not_found",
            RequestError::MissingQuery => "missing_query",
            RequestError::BadEncoding => "bad_encoding",
            RequestError::QueryUnparseable => "query_unparseable",
            RequestError::Timeout => "timeout",
            RequestError::Closed => "closed",
        }
    }

    /// All labels in [`RequestError::index`] order.
    pub fn labels() -> [&'static str; ERROR_CLASSES] {
        [
            RequestError::BadRequestLine,
            RequestError::BadHeader,
            RequestError::HeadersTooLarge,
            RequestError::BodyTooLarge,
            RequestError::InvalidContentLength,
            RequestError::InvalidChunk,
            RequestError::LengthRequired,
            RequestError::MethodNotAllowed,
            RequestError::UnsupportedMediaType,
            RequestError::NotFound,
            RequestError::MissingQuery,
            RequestError::BadEncoding,
            RequestError::QueryUnparseable,
            RequestError::Timeout,
            RequestError::Closed,
        ]
        .map(RequestError::label)
    }

    /// Response status for this class; `None` means the peer is gone and
    /// no response is written.
    pub fn status(self) -> Option<u16> {
        match self {
            RequestError::BadRequestLine
            | RequestError::BadHeader
            | RequestError::InvalidContentLength
            | RequestError::InvalidChunk
            | RequestError::MissingQuery
            | RequestError::BadEncoding
            | RequestError::QueryUnparseable => Some(400),
            RequestError::NotFound => Some(404),
            RequestError::MethodNotAllowed => Some(405),
            RequestError::Timeout => Some(408),
            RequestError::LengthRequired => Some(411),
            RequestError::BodyTooLarge => Some(413),
            RequestError::UnsupportedMediaType => Some(415),
            RequestError::HeadersTooLarge => Some(431),
            RequestError::Closed => None,
        }
    }
}

/// Map a framing-layer failure onto the request taxonomy.
fn lift(e: HttpError) -> RequestError {
    match e {
        HttpError::MalformedHeader => RequestError::BadHeader,
        HttpError::HeadersTooLarge => RequestError::HeadersTooLarge,
        HttpError::BodyTooLarge => RequestError::BodyTooLarge,
        HttpError::InvalidContentLength => RequestError::InvalidContentLength,
        HttpError::InvalidChunk => RequestError::InvalidChunk,
        HttpError::Truncated => RequestError::Closed,
        e if e.is_timeout() => RequestError::Timeout,
        HttpError::Io(_) => RequestError::Closed,
        // Response-side classes can't come out of the request readers.
        HttpError::MalformedStatusLine | HttpError::BadAddress | HttpError::Status(_) => {
            RequestError::BadRequestLine
        }
    }
}

/// Which server surface a request addressed. The query route is the
/// configured SPARQL path; `/healthz` and `/stats` are fixed read-only
/// observability routes that accept `GET` only.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Route {
    /// The configured SPARQL query route (default `/sparql`).
    Query,
    /// `GET /healthz` — readiness probe.
    Health,
    /// `GET /stats` — JSON counters snapshot.
    Stats,
}

impl Route {
    /// Stable slot for per-route arrays (latency histograms).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Number of [`Route`] variants (sizing for per-route arrays).
pub const N_ROUTES: usize = 3;

/// One successfully framed request; for [`Route::Query`] the query text
/// is in [`RequestScratch::query`].
#[derive(Copy, Clone, Debug)]
pub struct Request {
    /// HTTP/1.1 default, `Connection` tokens applied (`close` wins over
    /// `keep-alive`).
    pub keep_alive: bool,
    /// Which surface the request addressed.
    pub route: Route,
}

/// Caller-owned buffers for [`read_request`]; reuse across requests for
/// an allocation-free steady state.
pub struct RequestScratch {
    line: Vec<u8>,
    pending: Vec<u8>,
    target: Vec<u8>,
    body: Vec<u8>,
    decode: Vec<u8>,
    content_type: Vec<u8>,
    /// Decoded SPARQL query text of the last successful read.
    pub query: String,
}

impl Default for RequestScratch {
    fn default() -> RequestScratch {
        RequestScratch::new()
    }
}

impl RequestScratch {
    pub fn new() -> RequestScratch {
        RequestScratch {
            line: Vec::new(),
            pending: Vec::new(),
            target: Vec::new(),
            body: Vec::new(),
            decode: Vec::new(),
            content_type: Vec::new(),
            query: String::new(),
        }
    }
}

/// Read and decode one SPARQL-protocol request from `r`. On success the
/// query text is in `scratch.query`; on failure the connection state is
/// unspecified and (except [`RequestError::QueryUnparseable`], which this
/// function never returns — SPARQL parsing happens in the engine) the
/// caller must close after responding.
pub fn read_request<R: BufRead>(
    r: &mut R,
    limits: &HttpLimits,
    route: &[u8],
    scratch: &mut RequestScratch,
) -> Result<Request, RequestError> {
    let RequestScratch {
        line,
        pending,
        target,
        body,
        decode,
        content_type,
        query,
    } = scratch;
    query.clear();
    body.clear();
    content_type.clear();

    let mut budget = limits.max_header_bytes;
    read_line_bounded(r, line, &mut budget, HttpError::HeadersTooLarge).map_err(lift)?;
    let (is_post, http11) = {
        let mut parts = line.splitn(3, |&b| b == b' ');
        let method = parts.next().unwrap_or(&[]);
        let tgt = parts.next().unwrap_or(&[]);
        let version = parts.next().unwrap_or(&[]);
        let http11 = match version {
            b"HTTP/1.1" => true,
            b"HTTP/1.0" => false,
            _ => return Err(RequestError::BadRequestLine),
        };
        if tgt.is_empty() {
            return Err(RequestError::BadRequestLine);
        }
        let is_post = match method {
            b"GET" => false,
            b"POST" => true,
            m if !m.is_empty() && m.iter().all(u8::is_ascii_uppercase) => {
                return Err(RequestError::MethodNotAllowed)
            }
            _ => return Err(RequestError::BadRequestLine),
        };
        target.clear();
        target.extend_from_slice(tgt);
        (is_post, http11)
    };

    let mut framing = HeaderFraming::default();
    read_headers(
        r,
        line,
        pending,
        &mut budget,
        &mut framing,
        &mut |name, value| {
            if name.eq_ignore_ascii_case(b"content-type") {
                content_type.clear();
                content_type.extend_from_slice(value);
            }
        },
    )
    .map_err(lift)?;
    let keep_alive = if framing.close {
        false
    } else if http11 {
        true
    } else {
        framing.keep_alive
    };

    let (path, query_string) = match target.iter().position(|&b| b == b'?') {
        Some(p) => (&target[..p], Some(&target[p + 1..])),
        None => (&target[..], None),
    };
    let route_kind = if path == route {
        Route::Query
    } else if path == b"/healthz" {
        Route::Health
    } else if path == b"/stats" {
        Route::Stats
    } else {
        return Err(RequestError::NotFound);
    };

    if !is_post {
        // A GET that declares a body would desynchronize keep-alive
        // framing; reject rather than guess.
        if framing.chunked || framing.content_length.is_some_and(|n| n > 0) {
            return Err(RequestError::BadRequestLine);
        }
        if route_kind != Route::Query {
            // Observability routes take no query parameter.
            return Ok(Request {
                keep_alive,
                route: route_kind,
            });
        }
        let raw = query_string
            .and_then(|qs| find_param(qs, b"query"))
            .ok_or(RequestError::MissingQuery)?;
        percent_decode_into(raw, decode).map_err(|()| RequestError::BadEncoding)?;
        let text = str::from_utf8(decode).map_err(|_| RequestError::BadEncoding)?;
        query.push_str(text);
        return Ok(Request {
            keep_alive,
            route: Route::Query,
        });
    }
    if route_kind != Route::Query {
        // The observability surface is read-only; refuse before the body
        // read so a POST flood cannot buy body-sized work from it.
        return Err(RequestError::MethodNotAllowed);
    }

    // POST: read the framed body, then decode per Content-Type.
    if framing.chunked {
        read_chunked_body_into(r, limits, body).map_err(lift)?;
    } else if let Some(n) = framing.content_length {
        if n > limits.max_body_bytes as u64 {
            return Err(RequestError::BodyTooLarge);
        }
        body.resize(n as usize, 0);
        r.read_exact(body)
            .map_err(|e| lift(HttpError::from_io(&e)))?;
    } else {
        return Err(RequestError::LengthRequired);
    }

    let essence = media_essence(content_type);
    if essence.is_empty() || essence.eq_ignore_ascii_case(b"application/sparql-query") {
        let text = str::from_utf8(body).map_err(|_| RequestError::BadEncoding)?;
        query.push_str(text);
    } else if essence.eq_ignore_ascii_case(b"application/x-www-form-urlencoded") {
        let raw = find_param(body, b"query").ok_or(RequestError::MissingQuery)?;
        percent_decode_into(raw, decode).map_err(|()| RequestError::BadEncoding)?;
        let text = str::from_utf8(decode).map_err(|_| RequestError::BadEncoding)?;
        query.push_str(text);
    } else {
        return Err(RequestError::UnsupportedMediaType);
    }
    Ok(Request {
        keep_alive,
        route: Route::Query,
    })
}

/// The media type without parameters: `application/sparql-query;
/// charset=utf-8` → `application/sparql-query`.
fn media_essence(content_type: &[u8]) -> &[u8] {
    let essence = match content_type.iter().position(|&b| b == b';') {
        Some(p) => &content_type[..p],
        None => content_type,
    };
    trim_ascii(essence)
}

/// First `name=value` pair in an `application/x-www-form-urlencoded`
/// byte string; pairs without `=` are skipped.
fn find_param<'a>(qs: &'a [u8], name: &[u8]) -> Option<&'a [u8]> {
    qs.split(|&b| b == b'&').find_map(|pair| {
        let eq = pair.iter().position(|&b| b == b'=')?;
        (&pair[..eq] == name).then(|| &pair[eq + 1..])
    })
}

/// URL-decode `src` into `out` (cleared first): `+` → space, `%XX` → byte.
/// Errors on truncated or non-hex escapes.
#[allow(clippy::result_unit_err)] // sole caller maps Err to RequestError::BadEncoding
pub fn percent_decode_into(src: &[u8], out: &mut Vec<u8>) -> Result<(), ()> {
    out.clear();
    let mut i = 0;
    while i < src.len() {
        match src[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                if i + 2 >= src.len() {
                    return Err(());
                }
                let hi = hex_val(src[i + 1]).ok_or(())?;
                let lo = hex_val(src[i + 2]).ok_or(())?;
                out.push(hi * 16 + lo);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Ok(())
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encode `text` as a `query=` parameter value into `out`
/// (appending). The inverse of [`percent_decode_into`] for client use —
/// the bench harness's chaos client renders GET requests with it.
pub fn percent_encode_into(text: &str, out: &mut Vec<u8>) {
    for &b in text.as_bytes() {
        match b {
            b' ' => out.push(b'+'),
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => out.push(b),
            _ => {
                const HEX: &[u8; 16] = b"0123456789ABCDEF";
                out.push(b'%');
                out.push(HEX[(b >> 4) as usize]);
                out.push(HEX[(b & 0xf) as usize]);
            }
        }
    }
}
