//! Live loopback tests for the HTTP front end: real sockets, real
//! threads, tiny deadlines. Each test spawns its own server on an
//! ephemeral port and talks to it with the shared `httpcore` response
//! reader — the same framing code the federation client uses.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparql_rewrite_core::httpcore::{read_response, HttpLimits, HttpResponse};
use sparql_rewrite_core::{
    AlignmentStore, CacheConfig, Interner, ServeEngine, Term, TriplePattern,
};
use sparql_rewrite_server::request::RequestError;
use sparql_rewrite_server::{Server, ServerConfig};

fn test_engine() -> Arc<ServeEngine> {
    let mut interner = Interner::new();
    let mut store = AlignmentStore::new();
    let var_s = Term::var(interner.intern("s"));
    let var_o = Term::var(interner.intern("o"));
    let src = Term::iri(interner.intern("http://src.example.org/onto/p"));
    let tgt = Term::iri(interner.intern("http://tgt.example.org/onto/q"));
    store
        .add_predicate(
            TriplePattern::new(var_s, src, var_o),
            vec![TriplePattern::new(var_s, tgt, var_o)],
        )
        .expect("valid rule");
    Arc::new(ServeEngine::with_cache(
        store,
        interner,
        Some(CacheConfig::default()),
    ))
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 8,
        request_deadline: Duration::from_millis(400),
        keep_alive_idle: Duration::from_millis(400),
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

fn send_and_read(stream: &mut TcpStream, request: &[u8]) -> HttpResponse {
    stream.write_all(request).expect("request write");
    let mut r = BufReader::new(stream.try_clone().expect("clone"));
    read_response(&mut r, &HttpLimits::default()).expect("response parse")
}

const QUERY: &str = "SELECT * WHERE { ?s <http://src.example.org/onto/p> ?o }";

#[test]
fn get_and_post_round_trip_with_rewriting() {
    let server = Server::spawn(test_engine(), quick_config(), "127.0.0.1:0").expect("spawn");
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    let get = b"GET /sparql?query=SELECT+*+WHERE+%7B+%3Fs+%3Chttp%3A%2F%2Fsrc.example.org%2Fonto%2Fp%3E+%3Fo+%7D HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    let resp = send_and_read(&mut stream, get);
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).expect("utf8 body");
    assert!(
        body.contains("http://tgt.example.org/onto/q"),
        "GET response not rewritten: {body}"
    );

    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut post = Vec::new();
    post.extend_from_slice(
        b"POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: ",
    );
    post.extend_from_slice(QUERY.len().to_string().as_bytes());
    post.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    post.extend_from_slice(QUERY.as_bytes());
    let resp2 = send_and_read(&mut stream, &post);
    assert_eq!(resp2.status, 200);
    assert_eq!(
        String::from_utf8(resp2.body).unwrap(),
        body,
        "GET and POST disagree"
    );

    let stats = server.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.panics, 0);
    let report = server.shutdown();
    assert_eq!(report.dropped_from_queue, 0);
}

#[test]
fn keep_alive_serves_many_and_survives_unparseable_queries() {
    let server = Server::spawn(test_engine(), quick_config(), "127.0.0.1:0").expect("spawn");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    let good =
        b"GET /sparql?query=SELECT+*+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D HTTP/1.1\r\nHost: t\r\n\r\n";
    let bad_sparql = b"GET /sparql?query=SELECT+WHERE+%7B HTTP/1.1\r\nHost: t\r\n\r\n";
    // good → bad SPARQL (400, connection kept) → good again, same socket.
    let r1 = send_and_read(&mut stream, good);
    assert_eq!(r1.status, 200);
    let r2 = send_and_read(&mut stream, bad_sparql);
    assert_eq!(r2.status, 400);
    assert!(!r2.close, "SPARQL parse failure must keep the connection");
    let r3 = send_and_read(&mut stream, good);
    assert_eq!(r3.status, 200);

    let stats = server.stats();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.class(RequestError::QueryUnparseable), 1);
    server.shutdown();
}

#[test]
fn framing_errors_get_structured_statuses_and_close() {
    let server = Server::spawn(test_engine(), quick_config(), "127.0.0.1:0").expect("spawn");
    let addr = server.local_addr();
    let cases: &[(&[u8], u16)] = &[
        (b"GET /nope?query=x HTTP/1.1\r\n\r\n", 404),
        (b"PUT /sparql?query=x HTTP/1.1\r\n\r\n", 405),
        (b"POST /sparql HTTP/1.1\r\n\r\nSELECT", 411),
        (b"bogus nonsense\r\n\r\n", 400),
        (
            b"POST /sparql HTTP/1.1\r\nContent-Type: text/turtle\r\nContent-Length: 1\r\n\r\nx",
            415,
        ),
    ];
    for (req, want_status) in cases {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let resp = send_and_read(&mut stream, req);
        assert_eq!(
            resp.status,
            *want_status,
            "request {:?}",
            String::from_utf8_lossy(req)
        );
        assert!(resp.close, "framing errors must close the connection");
    }
    let stats = server.stats();
    assert_eq!(stats.class(RequestError::NotFound), 1);
    assert_eq!(stats.class(RequestError::MethodNotAllowed), 1);
    assert_eq!(stats.class(RequestError::LengthRequired), 1);
    assert_eq!(stats.class(RequestError::BadRequestLine), 1);
    assert_eq!(stats.class(RequestError::UnsupportedMediaType), 1);
    server.shutdown();
}

/// Slow loris: a peer that sends half a request and stalls gets `408`
/// once the request deadline expires — the worker is never held longer.
#[test]
fn stalled_request_times_out_with_408() {
    let server = Server::spawn(test_engine(), quick_config(), "127.0.0.1:0").expect("spawn");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(b"GET /sparql?query=x HT")
        .expect("partial write");
    let start = Instant::now();
    let mut r = BufReader::new(stream.try_clone().unwrap());
    let resp = read_response(&mut r, &HttpLimits::default()).expect("timeout response");
    let waited = start.elapsed();
    assert_eq!(resp.status, 408);
    assert!(
        waited >= Duration::from_millis(250) && waited < Duration::from_secs(3),
        "408 after {waited:?}, deadline was 400ms"
    );
    assert_eq!(server.stats().class(RequestError::Timeout), 1);
    server.shutdown();
}

/// Queue-full admission control: with every worker blocked and the queue
/// full, a new connection is shed with `503` + `Retry-After` *fast* — the
/// acceptor never waits on workers.
#[test]
fn overload_sheds_with_503_and_retry_after() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        request_deadline: Duration::from_millis(800),
        keep_alive_idle: Duration::from_millis(800),
        drain_deadline: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::spawn(test_engine(), config, "127.0.0.1:0").expect("spawn");
    let addr = server.local_addr();

    // Blocker: occupies the single worker mid-request.
    let mut blocker = TcpStream::connect(addr).expect("blocker connect");
    blocker.write_all(b"GET /spar").expect("blocker partial");
    let t0 = Instant::now();
    while server.stats().in_flight < 1 {
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "worker never picked up blocker"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // Filler: parks in the queue (sends nothing).
    let _filler = TcpStream::connect(addr).expect("filler connect");
    while server.stats().queue_depth < 1 {
        assert!(t0.elapsed() < Duration::from_secs(2), "queue never filled");
        std::thread::sleep(Duration::from_millis(5));
    }
    // Probe: must be shed immediately.
    let probe = TcpStream::connect(addr).expect("probe connect");
    let start = Instant::now();
    let mut r = BufReader::new(probe.try_clone().unwrap());
    let resp = read_response(&mut r, &HttpLimits::default()).expect("shed response");
    let latency = start.elapsed();
    assert_eq!(resp.status, 503);
    assert!(resp.close);
    assert_eq!(resp.body, b"overloaded\n");
    assert!(
        latency < Duration::from_millis(300),
        "shed path took {latency:?}; it must not wait on workers"
    );
    assert_eq!(server.stats().shed, 1);
    drop(probe);

    // Shutdown while blocked: the blocker runs out its request deadline,
    // the parked filler is refused; total time obeys the documented bound.
    let report = server.shutdown();
    assert_eq!(
        report.dropped_from_queue, 1,
        "parked filler must be refused at drain end"
    );
    assert!(
        report.within_bound(Duration::from_millis(500)),
        "drain took {:?} (bound {:?} + {:?})",
        report.elapsed,
        report.drain_deadline,
        report.request_deadline
    );
}

/// An idle server drains essentially instantly.
#[test]
fn clean_shutdown_is_fast_and_drops_nothing() {
    let server = Server::spawn(test_engine(), quick_config(), "127.0.0.1:0").expect("spawn");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let good = b"GET /sparql?query=SELECT+*+WHERE+%7B+%3Fs+%3Fp+%3Fo+%7D HTTP/1.1\r\nConnection: close\r\n\r\n";
    assert_eq!(send_and_read(&mut stream, good).status, 200);
    drop(stream);
    let report = server.shutdown();
    assert_eq!(report.dropped_from_queue, 0);
    assert!(
        report.elapsed < report.drain_deadline + Duration::from_millis(200),
        "idle drain took {:?}",
        report.elapsed
    );
}
