//! Malformed-request battery for the server's request reader: every way a
//! request can be malformed, oversized, truncated, or mis-typed must map
//! onto exactly the documented [`RequestError`] class — never a panic,
//! never a hang (the readers are pure over in-memory byte slices, so a
//! hang here would be an unbounded loop, which the budgets forbid).
//!
//! The deterministic battery pins one case per failure class (and the
//! healthy variants around them); the seeded mutation fuzz then slams the
//! same reader with thousands of single-edit corruptions of known-good
//! requests, plus the every-prefix truncation sweep.

use std::io::Cursor;

use sparql_rewrite_core::httpcore::HttpLimits;
use sparql_rewrite_core::mix_chain;
use sparql_rewrite_server::request::{read_request, RequestError, RequestScratch, Route};

fn read(bytes: &[u8], limits: &HttpLimits) -> Result<(String, bool), RequestError> {
    let mut scratch = RequestScratch::new();
    let mut r = Cursor::new(bytes);
    read_request(&mut r, limits, b"/sparql", &mut scratch)
        .map(|req| (scratch.query.clone(), req.keep_alive))
}

fn read_route(bytes: &[u8]) -> Result<Route, RequestError> {
    let mut scratch = RequestScratch::new();
    let mut r = Cursor::new(bytes);
    read_request(&mut r, &HttpLimits::default(), b"/sparql", &mut scratch).map(|req| req.route)
}

fn read_default(bytes: &[u8]) -> Result<(String, bool), RequestError> {
    read(bytes, &HttpLimits::default())
}

#[test]
fn battery_of_malformed_requests_degrades_to_structured_errors() {
    use RequestError::*;
    // (case name, raw request bytes, expected outcome)
    let err_cases: &[(&str, &[u8], RequestError)] = &[
        (
            "missing_query_get",
            b"GET /sparql?other=1 HTTP/1.1\r\n\r\n",
            MissingQuery,
        ),
        ("no_query_string", b"GET /sparql HTTP/1.1\r\n\r\n", MissingQuery),
        (
            "missing_query_form",
            b"POST /sparql HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 3\r\n\r\na=1",
            MissingQuery,
        ),
        (
            "bad_percent_truncated",
            b"GET /sparql?query=%2 HTTP/1.1\r\n\r\n",
            BadEncoding,
        ),
        (
            "bad_percent_nonhex",
            b"GET /sparql?query=%zz HTTP/1.1\r\n\r\n",
            BadEncoding,
        ),
        (
            "non_utf8_query",
            b"GET /sparql?query=%FF%FE HTTP/1.1\r\n\r\n",
            BadEncoding,
        ),
        (
            "non_utf8_post_body",
            b"POST /sparql HTTP/1.1\r\nContent-Length: 2\r\n\r\n\xff\xfe",
            BadEncoding,
        ),
        ("wrong_path", b"GET /other?query=x HTTP/1.1\r\n\r\n", NotFound),
        (
            "route_prefix_not_route",
            b"GET /sparqlx?query=x HTTP/1.1\r\n\r\n",
            NotFound,
        ),
        (
            "method_put",
            b"PUT /sparql?query=x HTTP/1.1\r\n\r\n",
            MethodNotAllowed,
        ),
        (
            "method_delete",
            b"DELETE /sparql?query=x HTTP/1.1\r\n\r\n",
            MethodNotAllowed,
        ),
        (
            "method_lowercase",
            b"get /sparql?query=x HTTP/1.1\r\n\r\n",
            BadRequestLine,
        ),
        (
            "bad_version",
            b"GET /sparql?query=x HTTP/2.0\r\n\r\n",
            BadRequestLine,
        ),
        (
            "two_part_request_line",
            b"GET /sparql?query=x\r\n\r\n",
            BadRequestLine,
        ),
        ("empty_target", b"GET  HTTP/1.1\r\n\r\n", BadRequestLine),
        (
            "get_with_content_length_body",
            b"GET /sparql?query=x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
            BadRequestLine,
        ),
        (
            "get_chunked",
            b"GET /sparql?query=x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            BadRequestLine,
        ),
        (
            "header_without_colon",
            b"GET /sparql?query=x HTTP/1.1\r\nNoColonHere\r\n\r\n",
            BadHeader,
        ),
        (
            "fold_with_no_header",
            b"GET /sparql?query=x HTTP/1.1\r\n continuation\r\n\r\n",
            BadHeader,
        ),
        (
            "invalid_content_length",
            b"POST /sparql HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
            InvalidContentLength,
        ),
        (
            "negative_content_length",
            b"POST /sparql HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
            InvalidContentLength,
        ),
        (
            "conflicting_content_lengths",
            b"POST /sparql HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 4\r\n\r\nabc",
            InvalidContentLength,
        ),
        (
            "post_without_length",
            b"POST /sparql HTTP/1.1\r\n\r\nSELECT",
            LengthRequired,
        ),
        (
            "unsupported_media_type",
            b"POST /sparql HTTP/1.1\r\nContent-Type: text/turtle\r\nContent-Length: 6\r\n\r\nSELECT",
            UnsupportedMediaType,
        ),
        (
            "bad_chunk_size",
            b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nxyz\r\n",
            InvalidChunk,
        ),
        (
            "chunk_missing_crlf",
            b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nSELECTXX0\r\n\r\n",
            InvalidChunk,
        ),
        (
            "truncated_mid_headers",
            b"GET /sparql?query=x HTTP/1.1\r\nHost: a",
            Closed,
        ),
        (
            "truncated_mid_body",
            b"POST /sparql HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort",
            Closed,
        ),
        ("empty_input", b"", Closed),
        (
            "body_too_large_declared",
            b"POST /sparql HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
            BodyTooLarge,
        ),
    ];
    for (name, bytes, want) in err_cases {
        match read_default(bytes) {
            Err(got) => assert_eq!(got, *want, "case {name}"),
            Ok((q, _)) => panic!("case {name}: expected {want:?}, parsed query {q:?}"),
        }
    }

    // Small-limit cases: header and body caps enforced with exact classes.
    let tight = HttpLimits {
        max_header_bytes: 64,
        max_body_bytes: 16,
    };
    let mut big_header = b"GET /sparql?query=x HTTP/1.1\r\nX-Pad: ".to_vec();
    big_header.extend_from_slice(&[b'a'; 128]);
    big_header.extend_from_slice(b"\r\n\r\n");
    assert_eq!(
        read(&big_header, &tight).unwrap_err(),
        HeadersTooLarge,
        "case headers_too_large"
    );
    assert_eq!(
        read(
            b"POST /sparql HTTP/1.1\r\nContent-Length: 32\r\n\r\n0123456789abcdef0123456789abcdef",
            &tight,
        )
        .unwrap_err(),
        BodyTooLarge,
        "case body_too_large_vs_limit"
    );
    assert_eq!(
        read(
            b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n20\r\n0123456789abcdef0123456789abcdef\r\n0\r\n\r\n",
            &tight,
        )
        .unwrap_err(),
        BodyTooLarge,
        "case chunked_body_too_large"
    );
}

#[test]
fn battery_of_healthy_requests_parses_exactly() {
    // (case name, raw bytes, expected query text, expected keep-alive)
    let ok_cases: &[(&str, &[u8], &str, bool)] = &[
        (
            "get_urlencoded",
            b"GET /sparql?query=SELECT%20*%20WHERE%20%7B%3Fs%20%3Fp%20%3Fo%7D HTTP/1.1\r\nHost: x\r\n\r\n",
            "SELECT * WHERE {?s ?p ?o}",
            true,
        ),
        (
            "get_plus_as_space",
            b"GET /sparql?query=a+b+c HTTP/1.1\r\n\r\n",
            "a b c",
            true,
        ),
        (
            "get_other_params_around",
            b"GET /sparql?format=json&query=x&limit=10 HTTP/1.1\r\n\r\n",
            "x",
            true,
        ),
        (
            "get_empty_query_param",
            b"GET /sparql?query= HTTP/1.1\r\n\r\n",
            "",
            true,
        ),
        (
            "get_http10_default_close",
            b"GET /sparql?query=x HTTP/1.0\r\n\r\n",
            "x",
            false,
        ),
        (
            "get_http10_keep_alive_optin",
            b"GET /sparql?query=x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
            "x",
            true,
        ),
        (
            "get_http11_connection_close",
            b"GET /sparql?query=x HTTP/1.1\r\nConnection: close\r\n\r\n",
            "x",
            false,
        ),
        (
            "post_sparql_query_body",
            b"POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 25\r\n\r\nSELECT * WHERE {?s ?p ?o}",
            "SELECT * WHERE {?s ?p ?o}",
            true,
        ),
        (
            "post_media_type_with_params",
            b"POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query; charset=UTF-8\r\nContent-Length: 6\r\n\r\nSELECT",
            "SELECT",
            true,
        ),
        (
            "post_missing_content_type_defaults_to_sparql",
            b"POST /sparql HTTP/1.1\r\nContent-Length: 6\r\n\r\nSELECT",
            "SELECT",
            true,
        ),
        (
            "post_form_urlencoded",
            b"POST /sparql HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 17\r\n\r\nquery=a%20b&pad=1",
            "a b",
            true,
        ),
        (
            "post_chunked_body",
            b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nSELECT\r\n3\r\n *X\r\n0\r\n\r\n",
            "SELECT *X",
            true,
        ),
        (
            "post_chunked_with_extension_and_trailer",
            b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6;ext=1\r\nSELECT\r\n0\r\nTrailer: x\r\n\r\n",
            "SELECT",
            true,
        ),
        (
            "duplicate_agreeing_content_lengths",
            b"POST /sparql HTTP/1.1\r\nContent-Length: 6\r\nContent-Length: 6\r\n\r\nSELECT",
            "SELECT",
            true,
        ),
        (
            "folded_header_ignored",
            b"GET /sparql?query=x HTTP/1.1\r\nX-Long: part one\r\n part two\r\n\r\n",
            "x",
            true,
        ),
        (
            "case_insensitive_headers",
            b"POST /sparql HTTP/1.1\r\ncOnTeNt-LeNgTh: 6\r\ncontent-TYPE: APPLICATION/SPARQL-QUERY\r\n\r\nSELECT",
            "SELECT",
            true,
        ),
    ];
    for (name, bytes, want_query, want_keep) in ok_cases {
        match read_default(bytes) {
            Ok((q, keep)) => {
                assert_eq!(q, *want_query, "case {name}: query text");
                assert_eq!(keep, *want_keep, "case {name}: keep-alive");
            }
            Err(e) => panic!("case {name}: expected success, got {e:?}"),
        }
    }
}

/// The fixed observability routes: `GET` resolves to the right [`Route`]
/// without needing a `query` parameter; writes are refused before any
/// body read; unknown paths are still `NotFound`.
#[test]
fn observability_routes_are_get_only_and_query_free() {
    use RequestError::*;
    assert_eq!(
        read_route(b"GET /healthz HTTP/1.1\r\n\r\n"),
        Ok(Route::Health)
    );
    assert_eq!(read_route(b"GET /stats HTTP/1.1\r\n\r\n"), Ok(Route::Stats));
    // A query string on an aux route is tolerated and ignored.
    assert_eq!(
        read_route(b"GET /stats?verbose=1 HTTP/1.1\r\n\r\n"),
        Ok(Route::Stats)
    );
    assert_eq!(
        read_route(b"GET /sparql?query=x HTTP/1.1\r\n\r\n"),
        Ok(Route::Query)
    );
    // Read-only surface: POST refused with 405, body never read.
    assert_eq!(
        read_route(b"POST /healthz HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"),
        Err(MethodNotAllowed),
    );
    assert_eq!(
        read_route(b"POST /stats HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc"),
        Err(MethodNotAllowed),
    );
    // Aux routes don't loosen path matching for everything else.
    assert_eq!(read_route(b"GET /healthz2 HTTP/1.1\r\n\r\n"), Err(NotFound));
    assert_eq!(read_route(b"GET /statsx HTTP/1.1\r\n\r\n"), Err(NotFound));
}

/// Every strict prefix of a valid request is an error (mostly `Closed` —
/// the peer vanished mid-message), and never a panic.
#[test]
fn every_prefix_of_a_valid_request_errors_cleanly() {
    let bases: &[&[u8]] = &[
        b"GET /sparql?query=SELECT%20*%20WHERE%20%7B%3Fs%20%3Fp%20%3Fo%7D HTTP/1.1\r\nHost: x\r\n\r\n",
        b"POST /sparql HTTP/1.1\r\nContent-Type: application/sparql-query\r\nContent-Length: 25\r\n\r\nSELECT * WHERE {?s ?p ?o}",
        b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n6\r\nSELECT\r\n0\r\n\r\n",
    ];
    for base in bases {
        for cut in 0..base.len() {
            let r = read_default(&base[..cut]);
            assert!(
                r.is_err(),
                "prefix of len {cut} of {:?} parsed as {:?}",
                String::from_utf8_lossy(base),
                r
            );
        }
        assert!(read_default(base).is_ok());
    }
}

/// Seeded mutation fuzz: single-edit corruptions (flip / insert / delete
/// / truncate / slice-duplicate) of known-good requests. The reader must
/// return *some* result for every mutant — structured error or a
/// still-valid parse — without panicking; and valid bases must keep
/// parsing between rounds (no state leaks through the reused scratch).
#[test]
fn mutation_fuzz_never_panics_the_request_reader() {
    let bases: &[&[u8]] = &[
        b"GET /sparql?query=SELECT%20*%20WHERE%20%7B%3Fs%20%3Fp%20%3Fo%7D HTTP/1.1\r\nHost: example.org\r\nAccept: */*\r\n\r\n",
        b"POST /sparql HTTP/1.1\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: 11\r\n\r\nquery=a%20b",
        b"POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n6\r\nSELECT\r\n4\r\n ABC\r\n0\r\n\r\n",
    ];
    let limits = HttpLimits::default();
    let mut scratch = RequestScratch::new();
    let seed = 0x05ee_d0f0_25e1_7ee5_u64;
    let mut mutant = Vec::new();
    for round in 0..6000u64 {
        let base = bases[(mix_chain(seed, &[round, 0]) % bases.len() as u64) as usize];
        mutant.clear();
        mutant.extend_from_slice(base);
        let pos = (mix_chain(seed, &[round, 1]) % base.len() as u64) as usize;
        let byte = (mix_chain(seed, &[round, 2]) & 0xff) as u8;
        match mix_chain(seed, &[round, 3]) % 5 {
            0 => mutant[pos] ^= byte | 1,
            1 => mutant.insert(pos, byte),
            2 => {
                mutant.remove(pos);
            }
            3 => mutant.truncate(pos),
            _ => {
                let end = (pos + 1 + (mix_chain(seed, &[round, 4]) % 8) as usize).min(base.len());
                let dup: Vec<u8> = base[pos..end].to_vec();
                let at = (mix_chain(seed, &[round, 5]) % (mutant.len() as u64 + 1)) as usize;
                for (i, b) in dup.into_iter().enumerate() {
                    mutant.insert(at + i, b);
                }
            }
        }
        let mut r = Cursor::new(mutant.as_slice());
        // Any Ok/Err is fine; panics and hangs are the failure modes.
        let _ = read_request(&mut r, &limits, b"/sparql", &mut scratch);
        // Scratch must stay serviceable: the unmutated base still parses.
        let mut r = Cursor::new(base);
        read_request(&mut r, &limits, b"/sparql", &mut scratch)
            .expect("pristine base request must keep parsing with the reused scratch");
    }
}
