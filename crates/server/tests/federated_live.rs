//! Live loopback tests for federated serving: a real `Server` in
//! federated mode in front of real endpoint sockets. Covers the
//! malformed-federation-config battery (structured startup errors, never
//! a panic), the degraded-mode contract for a wedged endpoint (partial
//! `200` inside the deadline, never a whole-request failure), and the
//! `/healthz` + `/stats` observability surface.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparql_rewrite_core::{
    AlignmentStore, BackoffPolicy, ChaosProxy, ChaosSpec, ExecutorConfig, FederationPlanner,
    HttpConfig, Interner, RewriteLimits, Term, TriplePattern,
};
use sparql_rewrite_server::request::percent_encode_into;
use sparql_rewrite_server::{
    EndpointRoute, FederationConfig, FederationConfigError, Server, ServerConfig, SpawnError,
};

fn quick_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_capacity: 8,
        request_deadline: Duration::from_secs(2),
        keep_alive_idle: Duration::from_millis(400),
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    }
}

fn route(e: usize, authority: &str) -> EndpointRoute {
    EndpointRoute {
        iri: format!("http://ep{e}.example.org/sparql"),
        authority: authority.to_string(),
        path: "/sparql".to_string(),
    }
}

/// Two endpoints, one predicate rule each: queries over
/// `http://src.example.org/onto/p{e}` dispatch to endpoint `e`.
fn two_endpoint_config(routes: Vec<EndpointRoute>) -> FederationConfig {
    let mut interner = Interner::new();
    let var_s = Term::var(interner.intern("s"));
    let var_o = Term::var(interner.intern("o"));
    let mut planner = FederationPlanner::new();
    for e in 0..2 {
        let mut store = AlignmentStore::new();
        let src = Term::iri(interner.intern(&format!("http://src.example.org/onto/p{e}")));
        let tgt = Term::iri(interner.intern(&format!("http://ep{e}.example.org/onto/q")));
        store
            .add_predicate(
                TriplePattern::new(var_s, src, var_o),
                vec![TriplePattern::new(var_s, tgt, var_o)],
            )
            .expect("valid rule");
        let ep = Term::iri(interner.intern(&format!("http://ep{e}.example.org/sparql")));
        planner.add_endpoint(ep, Arc::new(store));
    }
    FederationConfig {
        planner,
        interner,
        routes,
        executor: ExecutorConfig {
            deadline_nanos: 150_000_000,
            backoff: BackoffPolicy::none(),
            ..ExecutorConfig::default()
        },
        http: HttpConfig::default(),
        limits: RewriteLimits::default(),
        record_outcomes: false,
    }
}

#[test]
fn malformed_federation_configs_are_structured_errors() {
    // Zero endpoints (empty planner AND no routes).
    let empty = FederationConfig {
        planner: FederationPlanner::new(),
        interner: Interner::new(),
        routes: Vec::new(),
        executor: ExecutorConfig::default(),
        http: HttpConfig::default(),
        limits: RewriteLimits::default(),
        record_outcomes: false,
    };
    match Server::spawn_federated(empty, quick_config(), "127.0.0.1:0").map(|_| ()) {
        Err(SpawnError::Config(FederationConfigError::NoEndpoints)) => {}
        other => panic!("empty federation: expected NoEndpoints, got {other:?}"),
    }

    // A route naming an IRI the planner never registered.
    let unknown = two_endpoint_config(vec![
        route(0, "127.0.0.1:1"),
        EndpointRoute {
            iri: "http://nope.example.org/sparql".to_string(),
            authority: "127.0.0.1:1".to_string(),
            path: "/sparql".to_string(),
        },
    ]);
    match Server::spawn_federated(unknown, quick_config(), "127.0.0.1:0").map(|_| ()) {
        Err(SpawnError::Config(FederationConfigError::UnknownEndpointIri(iri))) => {
            assert_eq!(iri, "http://nope.example.org/sparql");
        }
        other => panic!("unknown IRI: expected UnknownEndpointIri, got {other:?}"),
    }

    // Two routes for the same endpoint.
    let dup = two_endpoint_config(vec![
        route(0, "127.0.0.1:1"),
        route(0, "127.0.0.1:2"),
        route(1, "127.0.0.1:3"),
    ]);
    match Server::spawn_federated(dup, quick_config(), "127.0.0.1:0").map(|_| ()) {
        Err(SpawnError::Config(FederationConfigError::DuplicateEndpoint(iri))) => {
            assert_eq!(iri, "http://ep0.example.org/sparql");
        }
        other => panic!("duplicate: expected DuplicateEndpoint, got {other:?}"),
    }

    // A planner endpoint left without any route.
    let missing = two_endpoint_config(vec![route(0, "127.0.0.1:1")]);
    match Server::spawn_federated(missing, quick_config(), "127.0.0.1:0").map(|_| ()) {
        Err(SpawnError::Config(FederationConfigError::MissingRoute(iri))) => {
            assert_eq!(iri, "http://ep1.example.org/sparql");
        }
        other => panic!("missing route: expected MissingRoute, got {other:?}"),
    }
}

/// An endpoint that accepts connections and then never sends a byte.
/// Accepted sockets are held so the peer sees a stall, not a reset.
fn wedged_endpoint() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind wedged endpoint");
    let authority = format!("127.0.0.1:{}", listener.local_addr().unwrap().port());
    std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = listener.accept() {
            held.push(s);
        }
    });
    authority
}

#[test]
fn wedged_endpoint_yields_partial_200_within_deadline() {
    let healthy = ChaosProxy::spawn(0xfeed, ChaosSpec::default()).expect("healthy endpoint");
    let wedged = wedged_endpoint();
    let fed = two_endpoint_config(vec![route(0, &healthy.authority()), route(1, &wedged)]);
    let config = quick_config();
    let request_deadline = config.request_deadline;
    let server = Server::spawn_federated(fed, config, "127.0.0.1:0").expect("spawn federated");

    let query = "SELECT * WHERE { ?s <http://src.example.org/onto/p0> ?o . \
                 ?s <http://src.example.org/onto/p1> ?o }";
    let mut req = Vec::new();
    req.extend_from_slice(b"GET /sparql?query=");
    percent_encode_into(query, &mut req);
    req.extend_from_slice(b" HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&req).expect("request write");
    let t0 = Instant::now();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("response read");
    let elapsed = t0.elapsed();
    let text = String::from_utf8_lossy(&raw).into_owned();

    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "a wedged endpoint must degrade to a partial 200, got: {text}"
    );
    assert!(
        text.contains("X-Endpoint-Status: "),
        "partial responses must carry per-endpoint detail: {text}"
    );
    assert!(text.contains("ep1=timed-out"), "detail header: {text}");
    assert!(text.contains("ep0=served"), "detail header: {text}");
    assert!(text.contains("\"partial\":true"), "envelope: {text}");
    assert!(
        elapsed < request_deadline,
        "partial response took {elapsed:?}, request deadline {request_deadline:?}"
    );

    let fstats = server.federation_stats().expect("federated mode");
    assert_eq!(fstats.partial_responses, 1);
    assert_eq!(fstats.outcomes[0], 1, "one served endpoint");
    assert_eq!(fstats.outcomes[1], 1, "one timed-out endpoint");
    assert_eq!(fstats.deadline_breaches, 0);
    server.shutdown();
}

#[test]
fn health_and_stats_surface_is_read_only() {
    let healthy = ChaosProxy::spawn(0x900d, ChaosSpec::default()).expect("healthy endpoint");
    let wedged = wedged_endpoint();
    let fed = two_endpoint_config(vec![route(0, &healthy.authority()), route(1, &wedged)]);
    let server = Server::spawn_federated(fed, quick_config(), "127.0.0.1:0").expect("spawn");
    let addr = server.local_addr();

    let send = |req: &[u8]| -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(req).expect("write");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read");
        String::from_utf8_lossy(&raw).into_owned()
    };

    let health = send(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    let stats = send(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(stats.starts_with("HTTP/1.1 200 OK\r\n"), "{stats}");
    for key in [
        "\"accepted\":",
        "\"errors\":{",
        "\"drain\":{",
        "\"latency_nanos\":{",
        "\"federation\":{",
        "\"breakers\":[",
        "\"dropped_from_queue\":",
    ] {
        assert!(stats.contains(key), "missing {key} in /stats: {stats}");
    }

    let post = send(b"POST /stats HTTP/1.1\r\nContent-Length: 3\r\nConnection: close\r\n\r\nabc");
    assert!(
        post.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"),
        "observability surface must be read-only: {post}"
    );
    server.shutdown();
}
