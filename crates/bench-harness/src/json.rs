//! Hand-rolled JSON emission (no serde in the offline container). Only the
//! shapes the bench runner needs: objects, arrays, strings, numbers.

use std::fmt::Write;

#[derive(Default)]
pub struct JsonObject {
    buf: String,
    n: usize,
}

impl JsonObject {
    pub fn new() -> JsonObject {
        JsonObject::default()
    }

    fn key(&mut self, k: &str) {
        if self.n > 0 {
            self.buf.push(',');
        }
        self.n += 1;
        write!(self.buf, "\n  {}: ", quote(k)).unwrap();
    }

    pub fn num(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write!(self.buf, "{}", fmt_num(v)).unwrap();
        self
    }

    pub fn int(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        write!(self.buf, "{v}").unwrap();
        self
    }

    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(&quote(v));
        self
    }

    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    pub fn finish(&self) -> String {
        format!("{{{}\n}}", self.buf)
    }
}

pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let items: Vec<String> = items.into_iter().collect();
    if items.is_empty() {
        return "[]".to_string();
    }
    let body = items
        .iter()
        .map(|i| i.replace('\n', "\n  "))
        .collect::<Vec<_>>()
        .join(",\n  ");
    format!("[\n  {body}\n]")
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format with enough precision to be useful, without scientific notation
/// (not valid in some strict JSON consumers when produced by `{:e}`).
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_an_object() {
        let mut o = JsonObject::new();
        o.str("name", "x\"y").int("n", 3).num("f", 1.5);
        let s = o.finish();
        assert!(s.contains("\"name\": \"x\\\"y\""));
        assert!(s.contains("\"n\": 3"));
        assert!(s.contains("\"f\": 1.500"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn builds_arrays() {
        assert_eq!(array(Vec::<String>::new()), "[]");
        let a = array(vec!["1".to_string(), "2".to_string()]);
        assert_eq!(a, "[\n  1,\n  2\n]");
    }
}
