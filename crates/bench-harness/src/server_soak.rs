//! Server-side robustness legs: the `server/chaos_soak` config (seeded
//! chaos client vs the live HTTP front end, run twice and gated on
//! byte-identical outcome transcripts) and the `server/cached/zipf`
//! config (healthy keep-alive traffic through the socket, gated on zero
//! steady-state allocations per request under the counting allocator).
//!
//! Three phases:
//!
//! 1. **Chaos** — a fresh server + [`ChaosClient`] schedule, twice with
//!    the same seed. Gates: zero worker panics, transcripts and fault
//!    schedules byte-identical, every fault class observed, structured
//!    degradation observed (some errors, some serves).
//! 2. **Shed/drain** — workers wedged by slow-loris blockers, queue
//!    packed by silent fillers, then probes that must all be refused
//!    with an O(1) `503` under a p99 bound; shutdown must refuse exactly
//!    the parked fillers and finish inside the documented drain bound.
//! 3. **Cached hit path** — one keep-alive connection streams a Zipfian
//!    request mix (pre-rendered bytes, hand-rolled allocation-free
//!    response reader) through a [`ServeEngine::with_tuned_cache`]
//!    server; the allocation counter must not move.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparql_rewrite_core::counting_alloc::allocation_count;
use sparql_rewrite_core::httpcore::{read_response, HttpLimits};
use sparql_rewrite_core::{CacheConfig, Interner, ServeEngine};
use sparql_rewrite_server::request::ERROR_CLASSES;
use sparql_rewrite_server::{Server, ServerConfig, StatsSnapshot};

use crate::chaos_client::{render_get, ChaosClient, N_FAULTS};
use crate::workload::{
    alias_prefix, generate, perturb_whitespace, zipf_ranks, ComplexShape, Rng, WorkloadSpec,
    ZipfSpec,
};

/// Outcome of the server chaos soak (phases 1 and 2).
pub struct ServerSoak {
    pub name: String,
    pub n_connections: usize,
    /// Request attempts per run (transcript lines).
    pub requests_attempted: u64,
    pub served: u64,
    pub idle_closes: u64,
    pub errors_total: u64,
    /// Per-error-class counts from run 1
    /// ([`sparql_rewrite_server::request::RequestError`] order).
    pub error_classes: [u64; ERROR_CLASSES],
    /// Client-side fault injections, [`ClientFault::ALL`] order.
    ///
    /// [`ClientFault::ALL`]: crate::chaos_client::ClientFault::ALL
    pub injected: [u64; N_FAULTS],
    pub attempts_per_sec: f64,
    /// Transcripts, fault schedules, and server counters byte-identical
    /// across the two identical-seed runs.
    pub deterministic: bool,
    pub all_faults_injected: bool,
    /// Worker panics summed over both runs (gated to zero).
    pub panics: u64,
    // ---- shed/drain phase ----
    pub shed: u64,
    pub sheds_well_formed: bool,
    pub shed_p99_ms: f64,
    pub dropped_from_queue: usize,
    pub drain_elapsed_ms: f64,
    pub drain_within_bound: bool,
}

/// Chaos phase: run the full seeded schedule against a fresh server and
/// return everything the determinism compare needs.
fn chaos_run(
    spec: &WorkloadSpec,
    n_connections: usize,
    seed: u64,
) -> (String, [u64; N_FAULTS], u64, StatsSnapshot) {
    let mut w = generate(spec);
    let queries = w.query_texts();
    let engine = Arc::new(ServeEngine::with_cache(
        std::mem::take(&mut w.store),
        std::mem::replace(&mut w.interner, Interner::new()),
        Some(CacheConfig::default()),
    ));
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 16,
        request_deadline: Duration::from_secs(2),
        keep_alive_idle: Duration::from_secs(2),
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let limits = config.limits;
    let server = Server::spawn(engine, config, "127.0.0.1:0").expect("soak server binds loopback");
    let mut client = ChaosClient::new(server.local_addr(), seed, limits);
    let mut transcript = String::new();
    let mut attempts = 0u64;
    for conn in 0..n_connections {
        attempts += client.run_connection(conn as u64, &queries, &mut transcript);
    }
    let stats = server.stats();
    server.shutdown();
    (transcript, client.injected, attempts, stats)
}

/// Shed/drain phase observations.
struct ShedDrain {
    shed: u64,
    sheds_well_formed: bool,
    shed_p99_ms: f64,
    dropped_from_queue: usize,
    drain_elapsed_ms: f64,
    drain_within_bound: bool,
}

/// Wedge every worker with a slow-loris blocker, pack the queue with
/// silent fillers, then fire probes that must all shed fast; finally
/// shut down and check the drain contract refuses exactly the fillers.
fn shed_drain_phase(spec: &WorkloadSpec) -> ShedDrain {
    const WORKERS: usize = 2;
    const FILLERS: usize = 4;
    const PROBES: usize = 8;
    let mut w = generate(spec);
    let engine = Arc::new(ServeEngine::with_cache(
        std::mem::take(&mut w.store),
        std::mem::replace(&mut w.interner, Interner::new()),
        None,
    ));
    let config = ServerConfig {
        workers: WORKERS,
        queue_capacity: FILLERS,
        request_deadline: Duration::from_millis(800),
        keep_alive_idle: Duration::from_millis(800),
        drain_deadline: Duration::from_millis(250),
        ..ServerConfig::default()
    };
    let server = Server::spawn(engine, config, "127.0.0.1:0").expect("shed server binds loopback");
    let addr = server.local_addr();

    // Blockers: hold every worker mid-request (the request deadline keeps
    // them wedged far longer than the probe sequence takes).
    let blockers: Vec<TcpStream> = (0..WORKERS)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("blocker connect");
            s.write_all(b"POST /spar").expect("blocker partial write");
            s
        })
        .collect();
    let t0 = Instant::now();
    while server.stats().in_flight < WORKERS {
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "workers never picked up blockers"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // Fillers: park in the admission queue without sending a byte.
    let fillers: Vec<TcpStream> = (0..FILLERS)
        .map(|_| TcpStream::connect(addr).expect("filler connect"))
        .collect();
    while server.stats().queue_depth < FILLERS {
        assert!(t0.elapsed() < Duration::from_secs(2), "queue never filled");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Probes: each must be refused with the prebuilt 503 + Retry-After,
    // without waiting on any worker.
    let mut sheds_well_formed = true;
    let mut latencies = Vec::with_capacity(PROBES);
    for _ in 0..PROBES {
        let start = Instant::now();
        let probe = TcpStream::connect(addr).expect("probe connect");
        let _ = probe.set_read_timeout(Some(Duration::from_secs(2)));
        let mut r = std::io::BufReader::new(probe);
        match read_response(&mut r, &HttpLimits::default()) {
            Ok(resp) => {
                sheds_well_formed &=
                    resp.status == 503 && resp.close && resp.body == b"overloaded\n"
            }
            Err(_) => sheds_well_formed = false,
        }
        latencies.push(start.elapsed());
    }
    latencies.sort();
    // p99 over 8 samples is the max — the bound is on the worst probe.
    let shed_p99_ms = latencies.last().map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);

    let shed = server.stats().shed;
    let report = server.shutdown();
    drop(blockers);
    drop(fillers);
    ShedDrain {
        shed,
        sheds_well_formed,
        shed_p99_ms,
        dropped_from_queue: report.dropped_from_queue,
        drain_elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        drain_within_bound: report.within_bound(Duration::from_millis(500)),
    }
}

/// The `server/chaos_soak` leg: phases 1 (chaos, twice) and 2
/// (shed/drain) against live loopback servers.
pub fn run_server_chaos_soak(quick: bool) -> ServerSoak {
    let spec = WorkloadSpec {
        n_rules: if quick { 512 } else { 2_000 },
        patterns_per_query: 6,
        n_queries: 24,
        seed: 0xc1a0_5eed,
        group_shapes: false,
        complex: ComplexShape::None,
    };
    let n_connections = if quick { 48 } else { 160 };
    let seed = 0x5eed_0fa0_17c1_a55e;

    let start = Instant::now();
    let first = std::panic::catch_unwind(|| chaos_run(&spec, n_connections, seed));
    let second = std::panic::catch_unwind(|| chaos_run(&spec, n_connections, seed));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let (deterministic, injected, attempts, stats, panics, harness_panic) = match (&first, &second)
    {
        (Ok(a), Ok(b)) => {
            let (ta, ia, aa, sa) = a;
            let (tb, ib, ab, sb) = b;
            let same = ta == tb
                && ia == ib
                && aa == ab
                && sa.accepted == sb.accepted
                && sa.served == sb.served
                && sa.shed == sb.shed
                && sa.idle_closes == sb.idle_closes
                && sa.error_classes == sb.error_classes;
            (same, *ia, *aa, sa.clone(), sa.panics + sb.panics, false)
        }
        _ => (false, [0; N_FAULTS], 0, StatsSnapshot::default(), 0, true),
    };
    let all_faults_injected = injected.iter().all(|&n| n > 0);

    let shed = shed_drain_phase(&spec);
    ServerSoak {
        name: "server/chaos_soak/2w/9faults".to_string(),
        n_connections,
        requests_attempted: attempts,
        served: stats.served,
        idle_closes: stats.idle_closes,
        errors_total: stats.errors_total(),
        error_classes: stats.error_classes,
        injected,
        attempts_per_sec: (2 * attempts) as f64 / elapsed,
        deterministic,
        all_faults_injected,
        // A panic that escapes `chaos_run` itself (client-side) is
        // folded into the panic gate alongside caught worker panics.
        panics: panics + u64::from(harness_panic),
        shed: shed.shed,
        sheds_well_formed: shed.sheds_well_formed,
        shed_p99_ms: shed.shed_p99_ms,
        dropped_from_queue: shed.dropped_from_queue,
        drain_elapsed_ms: shed.drain_elapsed_ms,
        drain_within_bound: shed.drain_within_bound,
    }
}

/// Outcome of the healthy-traffic cached socket config (phase 3).
pub struct ServerCachedResult {
    pub name: String,
    pub n_rules: usize,
    pub n_distinct: usize,
    pub n_requests: usize,
    pub ns_per_request: f64,
    pub requests_per_sec: f64,
    /// Heap allocations per request across the *whole process* (client
    /// write, server parse/serve/render, client read) at steady state.
    pub allocs_per_request: f64,
    /// Every measured request answered `200`.
    pub served_all: bool,
    /// Probe-level cache hit rate over the measured window only.
    pub measured_hit_rate: f64,
    pub cache_occupancy: u64,
    pub cache_capacity: u64,
    pub cache_evictions: u64,
    pub cache_hit_ratio: f64,
    pub oversize_bypasses: u64,
    /// Workload-tuned value cap the engine picked.
    pub value_cap: u64,
}

/// Allocation-free response reader: preallocated accumulation buffer, a
/// stack scratch for reads, manual status/Content-Length scan. After the
/// warm pass it never allocates.
struct PinnedReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl PinnedReader {
    fn new(stream: TcpStream) -> PinnedReader {
        PinnedReader {
            stream,
            buf: Vec::with_capacity(64 * 1024),
        }
    }

    /// Read exactly one response off the keep-alive stream; returns its
    /// status code.
    fn read_one(&mut self) -> io::Result<u16> {
        loop {
            if let Some(h_end) = find_double_crlf(&self.buf) {
                let status = parse_status(&self.buf)?;
                let total = h_end + 4 + content_length(&self.buf[..h_end + 2]);
                while self.buf.len() < total {
                    self.fill()?;
                }
                self.buf.drain(..total);
                return Ok(status);
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut scratch = [0u8; 4096];
        let n = self.stream.read(&mut scratch)?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        self.buf.extend_from_slice(&scratch[..n]);
        Ok(())
    }
}

fn find_double_crlf(b: &[u8]) -> Option<usize> {
    b.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_status(b: &[u8]) -> io::Result<u16> {
    // b"HTTP/1.1 NNN ..." — the server always emits this shape.
    if b.len() < 12 || !b.starts_with(b"HTTP/1.") {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let d = &b[9..12];
    if !d.iter().all(u8::is_ascii_digit) {
        return Err(io::ErrorKind::InvalidData.into());
    }
    Ok(d.iter().fold(0u16, |acc, &c| acc * 10 + (c - b'0') as u16))
}

fn content_length(headers: &[u8]) -> usize {
    for line in headers.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.len() > 15 && line[..15].eq_ignore_ascii_case(b"content-length:") {
            return line[15..]
                .iter()
                .filter(|c| c.is_ascii_digit())
                .fold(0usize, |acc, &c| acc * 10 + (c - b'0') as usize);
        }
    }
    0
}

/// The `server/cached/zipf` leg: a single-worker server fronting a
/// workload-tuned cache, driven by one keep-alive connection replaying a
/// Zipfian stream of re-spelled repeats from pre-rendered request bytes.
/// The measured window must not allocate anywhere in the process.
pub fn run_server_cached_config(quick: bool) -> ServerCachedResult {
    let n_rules = 1_000;
    let spec = WorkloadSpec {
        n_rules,
        patterns_per_query: 8,
        n_queries: 64,
        seed: 0x5e12_ed0c_ac4e,
        group_shapes: false,
        complex: ComplexShape::None,
    };
    let mut w = generate(&spec);
    let distinct = w.query_texts();
    let engine = Arc::new(ServeEngine::with_tuned_cache(
        std::mem::take(&mut w.store),
        std::mem::replace(&mut w.interner, Interner::new()),
        CacheConfig::default(),
        &distinct,
    ));
    let value_cap = engine.cache_value_cap().unwrap_or(0) as u64;
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        request_deadline: Duration::from_secs(2),
        keep_alive_idle: Duration::from_secs(10),
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::spawn(Arc::clone(&engine), config, "127.0.0.1:0")
        .expect("cached server binds loopback");

    // Three spellings per logical query, pre-rendered to raw request
    // bytes so the measured loop only writes and reads.
    let mut rng = Rng::new(spec.seed ^ 0x77);
    let rendered: Vec<[Vec<u8>; 3]> = distinct
        .iter()
        .map(|t| {
            let spellings = [
                t.clone(),
                perturb_whitespace(t, &mut rng),
                alias_prefix(t, "s", "http://src.example.org/onto/"),
            ];
            spellings.map(|s| {
                let mut req = Vec::new();
                render_get(&s, &mut req);
                req
            })
        })
        .collect();
    let n_requests = if quick { 512 } else { 4_096 };
    let ranks = zipf_ranks(&ZipfSpec {
        s: 1.0,
        n_distinct: distinct.len(),
        n_requests,
        seed: spec.seed ^ 0x21bf_5eed,
    });

    let stream = TcpStream::connect(server.local_addr()).expect("client connect");
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut writer = stream.try_clone().expect("stream clone");
    let mut reader = PinnedReader::new(stream);

    // Warm pass: every spelling once (populates the cache and grows every
    // buffer on both sides of the socket), then one full stream replay
    // (warms the drain/extend patterns at measured-loop sizes).
    for spellings in &rendered {
        for req in spellings {
            writer.write_all(req).expect("warm write");
            reader.read_one().expect("warm response");
        }
    }
    for (i, &rank) in ranks.iter().enumerate() {
        writer
            .write_all(&rendered[rank as usize][i % 3])
            .expect("warm write");
        reader.read_one().expect("warm response");
    }

    // Measured window: the whole process (this thread writing/reading,
    // the worker thread parsing/serving/rendering) must not allocate.
    let stats_before = engine.cache_stats().expect("cache installed");
    let before = allocation_count();
    let t = Instant::now();
    let mut served_all = true;
    for (i, &rank) in ranks.iter().enumerate() {
        writer
            .write_all(&rendered[rank as usize][i % 3])
            .expect("measured write");
        served_all &= reader.read_one().expect("measured response") == 200;
    }
    let elapsed = t.elapsed();
    let allocs = allocation_count() - before;
    let stats_after = engine.cache_stats().expect("cache installed");

    drop(writer);
    drop(reader);
    server.shutdown();

    let d_hits = stats_after.hits() - stats_before.hits();
    let d_misses = stats_after.misses() - stats_before.misses();
    let ns_per_request = elapsed.as_nanos() as f64 / n_requests as f64;
    ServerCachedResult {
        name: format!("server/cached/zipf/{}", crate::fmt_rules(n_rules)),
        n_rules,
        n_distinct: distinct.len(),
        n_requests,
        ns_per_request,
        requests_per_sec: 1e9 / ns_per_request,
        allocs_per_request: allocs as f64 / n_requests as f64,
        served_all,
        measured_hit_rate: if d_hits + d_misses > 0 {
            d_hits as f64 / (d_hits + d_misses) as f64
        } else {
            0.0
        },
        cache_occupancy: stats_after.occupancy() as u64,
        cache_capacity: stats_after.capacity() as u64,
        cache_evictions: stats_after.evictions(),
        cache_hit_ratio: stats_after.hit_ratio(),
        oversize_bypasses: engine.cache_bypasses(),
        value_cap,
    }
}
