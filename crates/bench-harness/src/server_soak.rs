//! Server-side robustness legs: the `server/chaos_soak` config (seeded
//! chaos client vs the live HTTP front end, run twice and gated on
//! byte-identical outcome transcripts) and the `server/cached/zipf`
//! config (healthy keep-alive traffic through the socket, gated on zero
//! steady-state allocations per request under the counting allocator).
//!
//! Three phases:
//!
//! 1. **Chaos** — a fresh server + [`ChaosClient`] schedule, twice with
//!    the same seed. Gates: zero worker panics, transcripts and fault
//!    schedules byte-identical, every fault class observed, structured
//!    degradation observed (some errors, some serves).
//! 2. **Shed/drain** — workers wedged by slow-loris blockers, queue
//!    packed by silent fillers, then probes that must all be refused
//!    with an O(1) `503` under a p99 bound; shutdown must refuse exactly
//!    the parked fillers and finish inside the documented drain bound.
//! 3. **Cached hit path** — one keep-alive connection streams a Zipfian
//!    request mix (pre-rendered bytes, hand-rolled allocation-free
//!    response reader) through a [`ServeEngine::with_tuned_cache`]
//!    server; the allocation counter must not move.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sparql_rewrite_core::counting_alloc::allocation_count;
use sparql_rewrite_core::httpcore::{read_response, HttpLimits};
use sparql_rewrite_core::{
    BackoffPolicy, BreakerConfig, CacheConfig, ChaosProxy, ChaosSpec, ExecutorConfig, HttpConfig,
    Interner, RewriteLimits, ServeEngine,
};
use sparql_rewrite_server::request::{Route, ERROR_CLASSES};
use sparql_rewrite_server::{
    EndpointRoute, FederationConfig, FederationStats, Server, ServerConfig, StatsSnapshot,
    LATENCY_BINS,
};

use crate::chaos_client::{render_get, ChaosClient, N_FAULTS};
use crate::workload::{
    alias_prefix, generate, generate_federation, perturb_whitespace, zipf_ranks, ComplexShape,
    FederationSpec, Rng, WorkloadSpec, ZipfSpec,
};

/// Outcome of the server chaos soak (phases 1 and 2).
pub struct ServerSoak {
    pub name: String,
    pub n_connections: usize,
    /// Request attempts per run (transcript lines).
    pub requests_attempted: u64,
    pub served: u64,
    pub idle_closes: u64,
    pub errors_total: u64,
    /// Per-error-class counts from run 1
    /// ([`sparql_rewrite_server::request::RequestError`] order).
    pub error_classes: [u64; ERROR_CLASSES],
    /// Client-side fault injections, [`ClientFault::ALL`] order.
    ///
    /// [`ClientFault::ALL`]: crate::chaos_client::ClientFault::ALL
    pub injected: [u64; N_FAULTS],
    pub attempts_per_sec: f64,
    /// Transcripts, fault schedules, and server counters byte-identical
    /// across the two identical-seed runs.
    pub deterministic: bool,
    pub all_faults_injected: bool,
    /// Worker panics summed over both runs (gated to zero).
    pub panics: u64,
    // ---- shed/drain phase ----
    pub shed: u64,
    pub sheds_well_formed: bool,
    pub shed_p99_ms: f64,
    pub dropped_from_queue: usize,
    pub drain_elapsed_ms: f64,
    pub drain_within_bound: bool,
}

/// Chaos phase: run the full seeded schedule against a fresh server and
/// return everything the determinism compare needs.
fn chaos_run(
    spec: &WorkloadSpec,
    n_connections: usize,
    seed: u64,
) -> (String, [u64; N_FAULTS], u64, StatsSnapshot) {
    let mut w = generate(spec);
    let queries = w.query_texts();
    let engine = Arc::new(ServeEngine::with_cache(
        std::mem::take(&mut w.store),
        std::mem::replace(&mut w.interner, Interner::new()),
        Some(CacheConfig::default()),
    ));
    let config = ServerConfig {
        workers: 2,
        queue_capacity: 16,
        request_deadline: Duration::from_secs(2),
        keep_alive_idle: Duration::from_secs(2),
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let limits = config.limits;
    let server = Server::spawn(engine, config, "127.0.0.1:0").expect("soak server binds loopback");
    let mut client = ChaosClient::new(server.local_addr(), seed, limits);
    let mut transcript = String::new();
    let mut attempts = 0u64;
    for conn in 0..n_connections {
        attempts += client.run_connection(conn as u64, &queries, &mut transcript);
    }
    let stats = server.stats();
    server.shutdown();
    (transcript, client.injected, attempts, stats)
}

/// Shed/drain phase observations.
struct ShedDrain {
    shed: u64,
    sheds_well_formed: bool,
    shed_p99_ms: f64,
    dropped_from_queue: usize,
    drain_elapsed_ms: f64,
    drain_within_bound: bool,
}

/// Wedge every worker with a slow-loris blocker, pack the queue with
/// silent fillers, then fire probes that must all shed fast; finally
/// shut down and check the drain contract refuses exactly the fillers.
fn shed_drain_phase(spec: &WorkloadSpec) -> ShedDrain {
    const WORKERS: usize = 2;
    const FILLERS: usize = 4;
    const PROBES: usize = 8;
    let mut w = generate(spec);
    let engine = Arc::new(ServeEngine::with_cache(
        std::mem::take(&mut w.store),
        std::mem::replace(&mut w.interner, Interner::new()),
        None,
    ));
    let config = ServerConfig {
        workers: WORKERS,
        queue_capacity: FILLERS,
        request_deadline: Duration::from_millis(800),
        keep_alive_idle: Duration::from_millis(800),
        drain_deadline: Duration::from_millis(250),
        ..ServerConfig::default()
    };
    let server = Server::spawn(engine, config, "127.0.0.1:0").expect("shed server binds loopback");
    let addr = server.local_addr();

    // Blockers: hold every worker mid-request (the request deadline keeps
    // them wedged far longer than the probe sequence takes).
    let blockers: Vec<TcpStream> = (0..WORKERS)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("blocker connect");
            s.write_all(b"POST /spar").expect("blocker partial write");
            s
        })
        .collect();
    let t0 = Instant::now();
    while server.stats().in_flight < WORKERS {
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "workers never picked up blockers"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // Fillers: park in the admission queue without sending a byte.
    let fillers: Vec<TcpStream> = (0..FILLERS)
        .map(|_| TcpStream::connect(addr).expect("filler connect"))
        .collect();
    while server.stats().queue_depth < FILLERS {
        assert!(t0.elapsed() < Duration::from_secs(2), "queue never filled");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Probes: each must be refused with the prebuilt 503 + Retry-After,
    // without waiting on any worker.
    let mut sheds_well_formed = true;
    let mut latencies = Vec::with_capacity(PROBES);
    for _ in 0..PROBES {
        let start = Instant::now();
        let probe = TcpStream::connect(addr).expect("probe connect");
        let _ = probe.set_read_timeout(Some(Duration::from_secs(2)));
        let mut r = std::io::BufReader::new(probe);
        match read_response(&mut r, &HttpLimits::default()) {
            Ok(resp) => {
                sheds_well_formed &=
                    resp.status == 503 && resp.close && resp.body == b"overloaded\n"
            }
            Err(_) => sheds_well_formed = false,
        }
        latencies.push(start.elapsed());
    }
    latencies.sort();
    // p99 over 8 samples is the max — the bound is on the worst probe.
    let shed_p99_ms = latencies.last().map_or(f64::NAN, |d| d.as_secs_f64() * 1e3);

    let shed = server.stats().shed;
    let report = server.shutdown();
    drop(blockers);
    drop(fillers);
    ShedDrain {
        shed,
        sheds_well_formed,
        shed_p99_ms,
        dropped_from_queue: report.dropped_from_queue,
        drain_elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
        drain_within_bound: report.within_bound(Duration::from_millis(500)),
    }
}

/// The `server/chaos_soak` leg: phases 1 (chaos, twice) and 2
/// (shed/drain) against live loopback servers.
pub fn run_server_chaos_soak(quick: bool) -> ServerSoak {
    let spec = WorkloadSpec {
        n_rules: if quick { 512 } else { 2_000 },
        patterns_per_query: 6,
        n_queries: 24,
        seed: 0xc1a0_5eed,
        group_shapes: false,
        complex: ComplexShape::None,
    };
    let n_connections = if quick { 48 } else { 160 };
    let seed = 0x5eed_0fa0_17c1_a55e;

    let start = Instant::now();
    let first = std::panic::catch_unwind(|| chaos_run(&spec, n_connections, seed));
    let second = std::panic::catch_unwind(|| chaos_run(&spec, n_connections, seed));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let (deterministic, injected, attempts, stats, panics, harness_panic) = match (&first, &second)
    {
        (Ok(a), Ok(b)) => {
            let (ta, ia, aa, sa) = a;
            let (tb, ib, ab, sb) = b;
            let same = ta == tb
                && ia == ib
                && aa == ab
                && sa.accepted == sb.accepted
                && sa.served == sb.served
                && sa.shed == sb.shed
                && sa.idle_closes == sb.idle_closes
                && sa.error_classes == sb.error_classes;
            (same, *ia, *aa, sa.clone(), sa.panics + sb.panics, false)
        }
        _ => (false, [0; N_FAULTS], 0, StatsSnapshot::default(), 0, true),
    };
    let all_faults_injected = injected.iter().all(|&n| n > 0);

    let shed = shed_drain_phase(&spec);
    ServerSoak {
        name: "server/chaos_soak/2w/9faults".to_string(),
        n_connections,
        requests_attempted: attempts,
        served: stats.served,
        idle_closes: stats.idle_closes,
        errors_total: stats.errors_total(),
        error_classes: stats.error_classes,
        injected,
        attempts_per_sec: (2 * attempts) as f64 / elapsed,
        deterministic,
        all_faults_injected,
        // A panic that escapes `chaos_run` itself (client-side) is
        // folded into the panic gate alongside caught worker panics.
        panics: panics + u64::from(harness_panic),
        shed: shed.shed,
        sheds_well_formed: shed.sheds_well_formed,
        shed_p99_ms: shed.shed_p99_ms,
        dropped_from_queue: shed.dropped_from_queue,
        drain_elapsed_ms: shed.drain_elapsed_ms,
        drain_within_bound: shed.drain_within_bound,
    }
}

/// Outcome of the healthy-traffic cached socket config (phase 3).
pub struct ServerCachedResult {
    pub name: String,
    pub n_rules: usize,
    pub n_distinct: usize,
    pub n_requests: usize,
    pub ns_per_request: f64,
    pub requests_per_sec: f64,
    /// Heap allocations per request across the *whole process* (client
    /// write, server parse/serve/render, client read) at steady state.
    pub allocs_per_request: f64,
    /// Every measured request answered `200`.
    pub served_all: bool,
    /// Probe-level cache hit rate over the measured window only.
    pub measured_hit_rate: f64,
    pub cache_occupancy: u64,
    pub cache_capacity: u64,
    pub cache_evictions: u64,
    pub cache_hit_ratio: f64,
    pub oversize_bypasses: u64,
    /// Workload-tuned value cap the engine picked.
    pub value_cap: u64,
}

/// Allocation-free response reader: preallocated accumulation buffer, a
/// stack scratch for reads, manual status/Content-Length scan. After the
/// warm pass it never allocates.
struct PinnedReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl PinnedReader {
    fn new(stream: TcpStream) -> PinnedReader {
        PinnedReader {
            stream,
            buf: Vec::with_capacity(64 * 1024),
        }
    }

    /// Read exactly one response off the keep-alive stream; returns its
    /// status code.
    fn read_one(&mut self) -> io::Result<u16> {
        loop {
            if let Some(h_end) = find_double_crlf(&self.buf) {
                let status = parse_status(&self.buf)?;
                let total = h_end + 4 + content_length(&self.buf[..h_end + 2]);
                while self.buf.len() < total {
                    self.fill()?;
                }
                self.buf.drain(..total);
                return Ok(status);
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut scratch = [0u8; 4096];
        let n = self.stream.read(&mut scratch)?;
        if n == 0 {
            return Err(io::ErrorKind::UnexpectedEof.into());
        }
        self.buf.extend_from_slice(&scratch[..n]);
        Ok(())
    }
}

fn find_double_crlf(b: &[u8]) -> Option<usize> {
    b.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_status(b: &[u8]) -> io::Result<u16> {
    // b"HTTP/1.1 NNN ..." — the server always emits this shape.
    if b.len() < 12 || !b.starts_with(b"HTTP/1.") {
        return Err(io::ErrorKind::InvalidData.into());
    }
    let d = &b[9..12];
    if !d.iter().all(u8::is_ascii_digit) {
        return Err(io::ErrorKind::InvalidData.into());
    }
    Ok(d.iter().fold(0u16, |acc, &c| acc * 10 + (c - b'0') as u16))
}

fn content_length(headers: &[u8]) -> usize {
    for line in headers.split(|&b| b == b'\n') {
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        if line.len() > 15 && line[..15].eq_ignore_ascii_case(b"content-length:") {
            return line[15..]
                .iter()
                .filter(|c| c.is_ascii_digit())
                .fold(0usize, |acc, &c| acc * 10 + (c - b'0') as usize);
        }
    }
    0
}

/// The `server/cached/zipf` leg: a single-worker server fronting a
/// workload-tuned cache, driven by one keep-alive connection replaying a
/// Zipfian stream of re-spelled repeats from pre-rendered request bytes.
/// The measured window must not allocate anywhere in the process.
pub fn run_server_cached_config(quick: bool) -> ServerCachedResult {
    let n_rules = 1_000;
    let spec = WorkloadSpec {
        n_rules,
        patterns_per_query: 8,
        n_queries: 64,
        seed: 0x5e12_ed0c_ac4e,
        group_shapes: false,
        complex: ComplexShape::None,
    };
    let mut w = generate(&spec);
    let distinct = w.query_texts();
    let engine = Arc::new(ServeEngine::with_tuned_cache(
        std::mem::take(&mut w.store),
        std::mem::replace(&mut w.interner, Interner::new()),
        CacheConfig::default(),
        &distinct,
    ));
    let value_cap = engine.cache_value_cap().unwrap_or(0) as u64;
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        request_deadline: Duration::from_secs(2),
        keep_alive_idle: Duration::from_secs(10),
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::spawn(Arc::clone(&engine), config, "127.0.0.1:0")
        .expect("cached server binds loopback");

    // Three spellings per logical query, pre-rendered to raw request
    // bytes so the measured loop only writes and reads.
    let mut rng = Rng::new(spec.seed ^ 0x77);
    let rendered: Vec<[Vec<u8>; 3]> = distinct
        .iter()
        .map(|t| {
            let spellings = [
                t.clone(),
                perturb_whitespace(t, &mut rng),
                alias_prefix(t, "s", "http://src.example.org/onto/"),
            ];
            spellings.map(|s| {
                let mut req = Vec::new();
                render_get(&s, &mut req);
                req
            })
        })
        .collect();
    let n_requests = if quick { 512 } else { 4_096 };
    let ranks = zipf_ranks(&ZipfSpec {
        s: 1.0,
        n_distinct: distinct.len(),
        n_requests,
        seed: spec.seed ^ 0x21bf_5eed,
    });

    let stream = TcpStream::connect(server.local_addr()).expect("client connect");
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut writer = stream.try_clone().expect("stream clone");
    let mut reader = PinnedReader::new(stream);

    // Warm pass: every spelling once (populates the cache and grows every
    // buffer on both sides of the socket), then one full stream replay
    // (warms the drain/extend patterns at measured-loop sizes).
    for spellings in &rendered {
        for req in spellings {
            writer.write_all(req).expect("warm write");
            reader.read_one().expect("warm response");
        }
    }
    for (i, &rank) in ranks.iter().enumerate() {
        writer
            .write_all(&rendered[rank as usize][i % 3])
            .expect("warm write");
        reader.read_one().expect("warm response");
    }

    // Measured window: the whole process (this thread writing/reading,
    // the worker thread parsing/serving/rendering) must not allocate.
    let stats_before = engine.cache_stats().expect("cache installed");
    let before = allocation_count();
    let t = Instant::now();
    let mut served_all = true;
    for (i, &rank) in ranks.iter().enumerate() {
        writer
            .write_all(&rendered[rank as usize][i % 3])
            .expect("measured write");
        served_all &= reader.read_one().expect("measured response") == 200;
    }
    let elapsed = t.elapsed();
    let allocs = allocation_count() - before;
    let stats_after = engine.cache_stats().expect("cache installed");

    drop(writer);
    drop(reader);
    server.shutdown();

    let d_hits = stats_after.hits() - stats_before.hits();
    let d_misses = stats_after.misses() - stats_before.misses();
    let ns_per_request = elapsed.as_nanos() as f64 / n_requests as f64;
    ServerCachedResult {
        name: format!("server/cached/zipf/{}", crate::fmt_rules(n_rules)),
        n_rules,
        n_distinct: distinct.len(),
        n_requests,
        ns_per_request,
        requests_per_sec: 1e9 / ns_per_request,
        allocs_per_request: allocs as f64 / n_requests as f64,
        served_all,
        measured_hit_rate: if d_hits + d_misses > 0 {
            d_hits as f64 / (d_hits + d_misses) as f64
        } else {
            0.0
        },
        cache_occupancy: stats_after.occupancy() as u64,
        cache_capacity: stats_after.capacity() as u64,
        cache_evictions: stats_after.evictions(),
        cache_hit_ratio: stats_after.hit_ratio(),
        oversize_bypasses: engine.cache_bypasses(),
        value_cap,
    }
}

// ---------------------------------------------------------------------------
// Double-sided federated chaos: seeded chaos client in front, chaos proxies
// behind, the federated server squeezed between them.
// ---------------------------------------------------------------------------

/// Fault counters a [`ChaosProxy`] reports.
const PROXY_FAULTS: usize = 9;

/// Outcome of the `server/federated_chaos` leg: the full seeded client
/// schedule against a federated server whose member endpoints are chaos
/// proxies, twice with the same seeds, gated on byte-identical
/// transcripts on *both* sides of the server.
pub struct FederatedSoak {
    pub name: String,
    pub n_endpoints: usize,
    pub n_connections: usize,
    /// Client request attempts per run (transcript lines).
    pub requests_attempted: u64,
    pub served: u64,
    pub errors_total: u64,
    /// Client-side fault injections, [`ClientFault::ALL`] order.
    ///
    /// [`ClientFault::ALL`]: crate::chaos_client::ClientFault::ALL
    pub injected_client: [u64; N_FAULTS],
    /// Endpoint-side fault injections summed over every proxy,
    /// `ChaosFault` order.
    pub injected_endpoints: [u64; PROXY_FAULTS],
    /// Per-endpoint outcome tallies ([`OUTCOME_CLASSES`] order:
    /// served / timed-out / circuit-open / retries-exhausted).
    ///
    /// [`OUTCOME_CLASSES`]: sparql_rewrite_server::OUTCOME_CLASSES
    pub outcomes: [u64; 4],
    pub complete_responses: u64,
    pub partial_responses: u64,
    pub gateway_unavailable: u64,
    pub gateway_timeouts: u64,
    pub deadline_breaches: u64,
    /// Final breaker state per endpoint (run 1).
    pub breakers: Vec<String>,
    /// Server-measured wall-clock latency histogram for the query route
    /// (run 1; reported, never part of the determinism compare).
    pub latency_query: [u64; LATENCY_BINS],
    pub attempts_per_sec: f64,
    /// Client transcript, server outcome transcript, both fault
    /// schedules, federation stats, and server counters all byte- or
    /// field-identical across the two identical-seed runs.
    pub deterministic: bool,
    /// At least one mixed response (some endpoints served, some not) was
    /// actually observed — the partial-result path ran, not just the
    /// happy path.
    pub partial_seen: bool,
    /// Final breaker states identical across both runs.
    pub breakers_converged: bool,
    /// Worker panics + executor transport panics over both runs, plus
    /// any panic that escaped the harness itself.
    pub panics: u64,
}

/// Everything one federated chaos run yields that the determinism
/// compare needs.
struct FedRun {
    client_transcript: String,
    server_transcript: String,
    injected_client: [u64; N_FAULTS],
    injected_endpoints: [u64; PROXY_FAULTS],
    attempts: u64,
    fstats: FederationStats,
    stats: StatsSnapshot,
}

/// Per-endpoint chaos profile: one honest member, one that lies at the
/// protocol layer, one slow one, and one hostile enough to trip its
/// breaker — the mix that forces mixed (partial) responses.
fn endpoint_chaos(e: usize) -> ChaosSpec {
    match e {
        0 => ChaosSpec::default(),
        1 => ChaosSpec {
            malformed_status_pct: 10,
            malformed_header_pct: 8,
            wrong_len_pct: 6,
            ..ChaosSpec::default()
        },
        2 => ChaosSpec {
            trickle_pct: 10,
            truncate_pct: 8,
            trickle_step_nanos: 2_000_000,
            ..ChaosSpec::default()
        },
        _ => ChaosSpec {
            refuse_pct: 20,
            reset_pct: 18,
            truncate_pct: 12,
            ..ChaosSpec::default()
        },
    }
}

/// One full double-sided run: fresh proxies, fresh federated server,
/// the complete seeded client schedule, then a quiescence wait so every
/// accepted connection is fully processed before counters are read
/// (abandoned client connections would otherwise race the snapshot).
fn federated_chaos_run(spec: &FederationSpec, n_connections: usize, client_seed: u64) -> FedRun {
    let w = generate_federation(spec);
    let queries: Vec<String> = w
        .queries
        .iter()
        .map(|q| q.display(&w.interner).to_string())
        .collect();
    let proxies: Vec<ChaosProxy> = (0..spec.n_endpoints)
        .map(|e| {
            ChaosProxy::spawn(spec.seed.wrapping_add(e as u64), endpoint_chaos(e))
                .expect("chaos proxy binds loopback")
        })
        .collect();
    let routes = (0..spec.n_endpoints)
        .map(|e| EndpointRoute {
            iri: format!("http://ep{e}.example.org/sparql"),
            authority: proxies[e].authority(),
            path: "/sparql".to_string(),
        })
        .collect();
    let fed = FederationConfig {
        planner: w.planner,
        interner: w.interner,
        routes,
        executor: ExecutorConfig {
            n_threads: 4,
            deadline_nanos: 250_000_000,
            inter_request_nanos: 50_000_000,
            backoff: BackoffPolicy {
                base_nanos: 2_000_000,
                max_nanos: 10_000_000,
                max_retries: 2,
            },
            breaker: BreakerConfig {
                window: 8,
                min_samples: 4,
                failure_rate_pct: 50,
                cooldown_nanos: 120_000_000,
                half_open_successes: 1,
            },
            seed: client_seed ^ 0xfed,
        },
        http: HttpConfig::default(),
        limits: RewriteLimits::default(),
        record_outcomes: true,
    };
    // One worker: the serial client plus a single worker makes the
    // server-side outcome transcript a deterministic total order.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 16,
        request_deadline: Duration::from_secs(2),
        keep_alive_idle: Duration::from_secs(2),
        drain_deadline: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let limits = config.limits;
    let server =
        Server::spawn_federated(fed, config, "127.0.0.1:0").expect("federated server binds");
    let mut client = ChaosClient::new(server.local_addr(), client_seed, limits);
    let mut client_transcript = String::new();
    let mut attempts = 0u64;
    for conn in 0..n_connections {
        attempts += client.run_connection(conn as u64, &queries, &mut client_transcript);
    }
    // Quiesce: mid-request aborts leave the last connections queued or
    // in flight after the client returns; wait until the worker has
    // drained them so snapshots don't race wall-clock scheduling.
    let t0 = Instant::now();
    loop {
        let s = server.stats();
        if s.in_flight == 0 && s.queue_depth == 0 {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "federated server never quiesced"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let fstats = server.federation_stats().expect("federated mode");
    let server_transcript = server.federation_transcript().expect("recording enabled");
    let stats = server.stats();
    server.shutdown();
    let mut injected_endpoints = [0u64; PROXY_FAULTS];
    for p in &proxies {
        for (total, n) in injected_endpoints.iter_mut().zip(p.injected_counts()) {
            *total += n;
        }
    }
    FedRun {
        client_transcript,
        server_transcript,
        injected_client: client.injected,
        injected_endpoints,
        attempts,
        fstats,
        stats,
    }
}

/// The `server/federated_chaos` leg: double-sided chaos, twice with the
/// same seeds, compared field by field.
pub fn run_server_federated_chaos(quick: bool) -> FederatedSoak {
    let spec = FederationSpec {
        n_endpoints: 4,
        rules_per_endpoint: if quick { 48 } else { 96 },
        n_queries: 24,
        patterns_per_query: 8,
        seed: 0xfed5_0a4e_ca11_ed01,
    };
    let n_connections = if quick { 16 } else { 56 };
    let client_seed = 0x2fed_c1a0_5eed_cafe;

    let start = Instant::now();
    let first = std::panic::catch_unwind(|| federated_chaos_run(&spec, n_connections, client_seed));
    let second =
        std::panic::catch_unwind(|| federated_chaos_run(&spec, n_connections, client_seed));
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);

    let (deterministic, breakers_converged, run, panics) = match (&first, &second) {
        (Ok(a), Ok(b)) => {
            let same = a.client_transcript == b.client_transcript
                && a.server_transcript == b.server_transcript
                && a.injected_client == b.injected_client
                && a.injected_endpoints == b.injected_endpoints
                && a.attempts == b.attempts
                && a.fstats == b.fstats
                && a.stats.accepted == b.stats.accepted
                && a.stats.served == b.stats.served
                && a.stats.shed == b.stats.shed
                && a.stats.error_classes == b.stats.error_classes;
            let converged = a.fstats.breakers == b.fstats.breakers;
            let panics = a.stats.panics
                + b.stats.panics
                + a.fstats.transport_panics
                + b.fstats.transport_panics;
            (same, converged, Some(a), panics)
        }
        // A panic that escaped the harness folds into the panic gate.
        _ => (false, false, None, 1),
    };

    match run {
        Some(a) => FederatedSoak {
            name: "server/federated_chaos/4ep/double-sided".to_string(),
            n_endpoints: spec.n_endpoints,
            n_connections,
            requests_attempted: a.attempts,
            served: a.stats.served,
            errors_total: a.stats.errors_total(),
            injected_client: a.injected_client,
            injected_endpoints: a.injected_endpoints,
            outcomes: a.fstats.outcomes,
            complete_responses: a.fstats.complete_responses,
            partial_responses: a.fstats.partial_responses,
            gateway_unavailable: a.fstats.gateway_unavailable,
            gateway_timeouts: a.fstats.gateway_timeouts,
            deadline_breaches: a.fstats.deadline_breaches,
            breakers: a.fstats.breakers.iter().map(|b| format!("{b:?}")).collect(),
            latency_query: a.stats.latency[Route::Query.index()],
            attempts_per_sec: (2 * a.attempts) as f64 / elapsed,
            deterministic,
            partial_seen: a.fstats.partial_responses > 0,
            breakers_converged,
            panics,
        },
        None => FederatedSoak {
            name: "server/federated_chaos/4ep/double-sided".to_string(),
            n_endpoints: spec.n_endpoints,
            n_connections,
            requests_attempted: 0,
            served: 0,
            errors_total: 0,
            injected_client: [0; N_FAULTS],
            injected_endpoints: [0; PROXY_FAULTS],
            outcomes: [0; 4],
            complete_responses: 0,
            partial_responses: 0,
            gateway_unavailable: 0,
            gateway_timeouts: 0,
            deadline_breaches: 0,
            breakers: Vec::new(),
            latency_query: [0; LATENCY_BINS],
            attempts_per_sec: 0.0,
            deterministic,
            partial_seen: false,
            breakers_converged,
            panics,
        },
    }
}
