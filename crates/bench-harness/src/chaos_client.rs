//! Seeded client-side chaos for the server soak: a single-threaded HTTP
//! client that misbehaves on a deterministic schedule.
//!
//! Where the federation `http_soak` injects faults on the *server* side
//! (chaos proxies) to harden the client transport, this is the mirror
//! image: nine client-side fault classes — half-open connects, trickled
//! headers, aborted bodies, lying `Content-Length`, oversized frames —
//! thrown at the real [`sparql_rewrite_server`] front end over loopback
//! TCP. Every draw comes from `mix_chain(seed, [conn, req, salt])`, so
//! two runs with the same seed produce byte-identical fault schedules,
//! and the soak can gate on byte-identical outcome transcripts.
//!
//! Transcript lines record outcome *classes* (`200`, `400`, `closed`,
//! `200+400`), never wall-clock timings — real sockets make timings
//! noisy, and the whole point is that the *behavior* replays exactly.

use std::fmt::Write as _;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use sparql_rewrite_core::httpcore::{read_response, HttpLimits, HttpResponse};
use sparql_rewrite_core::mix_chain;
use sparql_rewrite_server::request::percent_encode_into;

/// Number of client fault classes (indexes [`ClientFault::ALL`]).
pub const N_FAULTS: usize = 9;

/// One client-side misbehavior, drawn per request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ClientFault {
    /// Well-formed GET or POST; expects `200`.
    Healthy,
    /// Valid request written in 7-byte sips with sub-millisecond pauses —
    /// slow but *under* the request deadline; still expects `200`.
    TrickleHeaders,
    /// Valid POST whose body straddles two writes with a pause between;
    /// expects `200`.
    StraddleBody,
    /// Bytes that are not HTTP; expects a structured `400` and close.
    PipelinedGarbage,
    /// Connect and close without sending a byte.
    HalfOpen,
    /// POST that announces a body, sends half, and disconnects.
    MidBodyAbort,
    /// `Content-Length` above the server's body cap, no body sent;
    /// expects `413` before any body byte is read.
    OversizeAnnounce,
    /// `Content-Length` *shorter* than the bytes sent: the tail bytes
    /// desync the keep-alive stream into a garbage next request —
    /// expects `200` then `400`.
    LyingLength,
    /// Header block above the server's header cap; expects `431`.
    HugeHeaders,
}

impl ClientFault {
    pub const ALL: [ClientFault; N_FAULTS] = [
        ClientFault::Healthy,
        ClientFault::TrickleHeaders,
        ClientFault::StraddleBody,
        ClientFault::PipelinedGarbage,
        ClientFault::HalfOpen,
        ClientFault::MidBodyAbort,
        ClientFault::OversizeAnnounce,
        ClientFault::LyingLength,
        ClientFault::HugeHeaders,
    ];

    /// Draw weights in percent, [`ClientFault::ALL`] order; sum 100.
    const PCTS: [u8; N_FAULTS] = [40, 8, 8, 10, 6, 7, 7, 7, 7];

    pub fn name(self) -> &'static str {
        match self {
            ClientFault::Healthy => "healthy",
            ClientFault::TrickleHeaders => "trickle",
            ClientFault::StraddleBody => "straddle",
            ClientFault::PipelinedGarbage => "garbage",
            ClientFault::HalfOpen => "halfopen",
            ClientFault::MidBodyAbort => "abort",
            ClientFault::OversizeAnnounce => "oversize",
            ClientFault::LyingLength => "lyinglen",
            ClientFault::HugeHeaders => "hugehdrs",
        }
    }

    pub fn index(self) -> usize {
        Self::ALL.iter().position(|&f| f == self).expect("in ALL")
    }

    fn draw(roll: u8) -> ClientFault {
        let mut acc = 0u8;
        for (i, &p) in Self::PCTS.iter().enumerate() {
            acc += p;
            if roll < acc {
                return Self::ALL[i];
            }
        }
        ClientFault::Healthy
    }
}

/// The seeded chaos client. One instance drives one soak run; fault
/// counts accumulate in [`ChaosClient::injected`].
pub struct ChaosClient {
    addr: SocketAddr,
    seed: u64,
    /// The server's parse limits — oversize faults are sized just past
    /// them, so the boundary is exercised no matter how it is tuned.
    limits: HttpLimits,
    /// Per-class injection counts, [`ClientFault::ALL`] order.
    pub injected: [u64; N_FAULTS],
    req: Vec<u8>,
}

/// What one request attempt observed (a transcript token).
enum Outcome {
    Status(u16),
    /// Two pipelined responses (the `LyingLength` desync).
    Pair(u16, u16),
    /// Connection ended without a (parseable) response.
    Closed,
}

impl ChaosClient {
    pub fn new(addr: SocketAddr, seed: u64, limits: HttpLimits) -> ChaosClient {
        ChaosClient {
            addr,
            seed,
            limits,
            injected: [0; N_FAULTS],
            req: Vec::with_capacity(4096),
        }
    }

    /// Run one connection's deterministic request schedule (1–3 requests,
    /// cut short by any fault that closes the stream). Appends one
    /// transcript line per attempt; returns the number of attempts.
    pub fn run_connection(
        &mut self,
        conn: u64,
        queries: &[String],
        transcript: &mut String,
    ) -> u64 {
        let stream = match TcpStream::connect(self.addr) {
            Ok(s) => s,
            Err(_) => {
                let _ = writeln!(transcript, "c{conn} connect refused");
                return 0;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
        let mut reader = BufReader::new(stream.try_clone().expect("stream clone"));

        let n_reqs = 1 + mix_chain(self.seed, &[conn, 0x0c]) % 3;
        let mut attempts = 0u64;
        for req_no in 0..n_reqs {
            let fault =
                ClientFault::draw((mix_chain(self.seed, &[conn, req_no, 0xfa]) % 100) as u8);
            self.injected[fault.index()] += 1;
            attempts += 1;
            let query = &queries
                [(mix_chain(self.seed, &[conn, req_no, 0x9e]) % queries.len() as u64) as usize];
            let use_post = mix_chain(self.seed, &[conn, req_no, 0x6e]) & 1 == 1;

            let (outcome, closes) = self.attempt(&stream, &mut reader, fault, query, use_post);
            let _ = write!(transcript, "c{conn} r{req_no} {} ", fault.name());
            match outcome {
                Outcome::Status(s) => {
                    let _ = writeln!(transcript, "{s}");
                }
                Outcome::Pair(a, b) => {
                    let _ = writeln!(transcript, "{a}+{b}");
                }
                Outcome::Closed => {
                    let _ = writeln!(transcript, "closed");
                }
            }
            if closes {
                break;
            }
        }
        attempts
    }

    /// Execute one fault against the live connection. Returns the
    /// observed outcome and whether the connection is now unusable.
    fn attempt(
        &mut self,
        stream: &TcpStream,
        reader: &mut BufReader<TcpStream>,
        fault: ClientFault,
        query: &str,
        use_post: bool,
    ) -> (Outcome, bool) {
        match fault {
            ClientFault::Healthy => {
                self.render_request(query, use_post);
                if write_all(stream, &self.req).is_err() {
                    return (Outcome::Closed, true);
                }
                finish_read(reader)
            }
            ClientFault::TrickleHeaders => {
                self.render_request(query, use_post);
                for chunk in self.req.chunks(7) {
                    if write_all(stream, chunk).is_err() {
                        return (Outcome::Closed, true);
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                finish_read(reader)
            }
            ClientFault::StraddleBody => {
                self.render_request(query, true);
                let split = self.req.len() - query.len() / 2;
                if write_all(stream, &self.req[..split]).is_err() {
                    return (Outcome::Closed, true);
                }
                std::thread::sleep(Duration::from_millis(2));
                if write_all(stream, &self.req[split..]).is_err() {
                    return (Outcome::Closed, true);
                }
                finish_read(reader)
            }
            ClientFault::PipelinedGarbage => {
                let _ = write_all(stream, b"~~ not http at all ~~\r\n\r\n");
                let (outcome, _) = finish_read(reader);
                (outcome, true)
            }
            ClientFault::HalfOpen => {
                // Close without a byte; the server's idle path absorbs it.
                (Outcome::Closed, true)
            }
            ClientFault::MidBodyAbort => {
                self.render_request(query, true);
                let cut = self.req.len() - query.len() / 2;
                let _ = write_all(stream, &self.req[..cut]);
                let _ = stream.shutdown(Shutdown::Write);
                // The server sees EOF mid-body: no response possible.
                let (outcome, _) = finish_read(reader);
                (outcome, true)
            }
            ClientFault::OversizeAnnounce => {
                self.req.clear();
                self.req.extend_from_slice(
                    b"POST /sparql HTTP/1.1\r\nHost: soak\r\nContent-Type: application/sparql-query\r\nContent-Length: ",
                );
                self.req
                    .extend_from_slice((self.limits.max_body_bytes + 1).to_string().as_bytes());
                self.req.extend_from_slice(b"\r\n\r\n");
                let _ = write_all(stream, &self.req);
                let (outcome, _) = finish_read(reader);
                (outcome, true)
            }
            ClientFault::LyingLength => {
                // Announce only the query, then append trailing garbage:
                // the server serves the query, reads the tail as a new
                // request line, and answers a structured 400.
                self.render_request(query, true);
                self.req.extend_from_slice(b"<<desync tail>>\r\n\r\n");
                if write_all(stream, &self.req).is_err() {
                    return (Outcome::Closed, true);
                }
                let first = match read_one(reader) {
                    Some(r) => r.status,
                    None => return (Outcome::Closed, true),
                };
                match read_one(reader) {
                    Some(r) => (Outcome::Pair(first, r.status), true),
                    None => (Outcome::Status(first), true),
                }
            }
            ClientFault::HugeHeaders => {
                self.req.clear();
                self.req
                    .extend_from_slice(b"GET /sparql?query=x HTTP/1.1\r\nHost: soak\r\nX-Pad: ");
                self.req
                    .resize(self.req.len() + self.limits.max_header_bytes + 2048, b'a');
                self.req.extend_from_slice(b"\r\n\r\n");
                let _ = write_all(stream, &self.req);
                let (outcome, _) = finish_read(reader);
                (outcome, true)
            }
        }
    }

    /// Render a well-formed keep-alive GET (percent-encoded query string)
    /// or POST (`application/sparql-query` body) into the scratch buffer.
    fn render_request(&mut self, query: &str, use_post: bool) {
        self.req.clear();
        if use_post {
            self.req.extend_from_slice(
                b"POST /sparql HTTP/1.1\r\nHost: soak\r\nContent-Type: application/sparql-query\r\nContent-Length: ",
            );
            self.req
                .extend_from_slice(query.len().to_string().as_bytes());
            self.req.extend_from_slice(b"\r\n\r\n");
            self.req.extend_from_slice(query.as_bytes());
        } else {
            self.req.extend_from_slice(b"GET /sparql?query=");
            percent_encode_into(query, &mut self.req);
            self.req
                .extend_from_slice(b" HTTP/1.1\r\nHost: soak\r\n\r\n");
        }
    }
}

/// Render a healthy keep-alive GET request for `query` into `out` —
/// shared with the zero-allocation cached-path config, which pre-renders
/// its whole request stream.
pub fn render_get(query: &str, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(b"GET /sparql?query=");
    percent_encode_into(query, out);
    out.extend_from_slice(b" HTTP/1.1\r\nHost: bench\r\n\r\n");
}

fn write_all(mut s: &TcpStream, buf: &[u8]) -> io::Result<()> {
    s.write_all(buf)
}

/// Read one response and fold it into an outcome + close decision.
fn finish_read(reader: &mut BufReader<TcpStream>) -> (Outcome, bool) {
    match read_one(reader) {
        Some(resp) => (Outcome::Status(resp.status), resp.close),
        None => (Outcome::Closed, true),
    }
}

fn read_one(reader: &mut BufReader<TcpStream>) -> Option<HttpResponse> {
    read_response(reader, &HttpLimits::default()).ok()
}
