//! Criterion-style micro-benchmark core: warmup, adaptive batch sizing,
//! and robust statistics over wall-clock samples.
//!
//! This is a minimal stand-in for the `criterion` crate (not fetchable in
//! the offline build container). It keeps criterion's key discipline —
//! warm up, batch iterations so timer overhead is negligible, report the
//! median rather than the mean of noisy samples — without the plotting and
//! regression machinery.

use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Stats {
    /// Nanoseconds per iteration, per sample (sorted ascending).
    pub samples_ns: Vec<f64>,
    pub mean_ns: f64,
    pub median_ns: f64,
    pub stddev_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub iters_per_sample: u64,
}

impl Stats {
    /// The one and only sort: samples are ordered here, once per config,
    /// and every later [`Stats::percentile`] call is a plain index into the
    /// sorted slice — no clone, no re-sort, no matter how many percentiles
    /// a config reports. `total_cmp` instead of `partial_cmp().unwrap()`
    /// so a NaN sample (a zero-duration clock quirk divided oddly) can
    /// never panic the harness mid-run.
    fn from_samples(mut samples_ns: Vec<f64>, iters_per_sample: u64) -> Stats {
        samples_ns.sort_by(f64::total_cmp);
        let n = samples_ns.len() as f64;
        let mean = samples_ns.iter().sum::<f64>() / n;
        let var = samples_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        let median = if samples_ns.len() % 2 == 1 {
            samples_ns[samples_ns.len() / 2]
        } else {
            let hi = samples_ns.len() / 2;
            (samples_ns[hi - 1] + samples_ns[hi]) / 2.0
        };
        Stats {
            mean_ns: mean,
            median_ns: median,
            stddev_ns: var.sqrt(),
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().unwrap(),
            samples_ns,
            iters_per_sample,
        }
    }

    /// Nearest-rank percentile over the sorted samples, `p` in `(0, 100]`.
    /// `percentile(50.0)` is the upper median; tail percentiles (90, 99)
    /// are what the perf gates check so a config with a good median but a
    /// fat tail still fails.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.samples_ns.len();
        debug_assert!(n > 0 && p > 0.0 && p <= 100.0);
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.samples_ns[rank.clamp(1, n) - 1]
    }
}

pub struct Bencher {
    pub warmup: Duration,
    pub measure_budget: Duration,
    pub target_samples: u32,
}

impl Default for Bencher {
    fn default() -> Bencher {
        Bencher {
            warmup: Duration::from_millis(150),
            measure_budget: Duration::from_millis(750),
            target_samples: 30,
        }
    }
}

impl Bencher {
    /// Benchmark `f`, returning per-iteration statistics. `f` should wrap
    /// its result in [`std::hint::black_box`] to defeat dead-code
    /// elimination.
    pub fn run<F: FnMut()>(&self, mut f: F) -> Stats {
        // Warmup doubles as iteration-time estimation.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup {
            f();
            warmup_iters += 1;
        }
        let est_ns_per_iter = warmup_start.elapsed().as_nanos() as f64 / warmup_iters.max(1) as f64;

        // Batch so each sample runs long enough that Instant overhead is
        // noise (>= ~50µs per sample), splitting the budget into
        // target_samples slices.
        let sample_budget_ns =
            (self.measure_budget.as_nanos() as f64 / self.target_samples as f64).max(50_000.0);
        let iters_per_sample = ((sample_budget_ns / est_ns_per_iter) as u64).max(1);

        let mut samples = Vec::with_capacity(self.target_samples as usize);
        let measure_start = Instant::now();
        while samples.len() < self.target_samples as usize
            && (samples.len() < 5 || measure_start.elapsed() < self.measure_budget)
        {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        Stats::from_samples(samples, iters_per_sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_busy_loop() {
        let bencher = Bencher {
            warmup: Duration::from_millis(10),
            measure_budget: Duration::from_millis(40),
            target_samples: 10,
        };
        let stats = bencher.run(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        assert!(stats.median_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert!(stats.samples_ns.len() >= 5);
        // Percentiles are ordered and bounded by the extremes.
        let (p50, p90, p99) = (
            stats.percentile(50.0),
            stats.percentile(90.0),
            stats.percentile(99.0),
        );
        assert!(stats.min_ns <= p50 && p50 <= p90 && p90 <= p99 && p99 <= stats.max_ns);
    }

    #[test]
    fn percentile_nearest_rank() {
        let stats = Stats::from_samples((1..=100).map(|n| n as f64).collect(), 1);
        assert_eq!(stats.percentile(50.0), 50.0);
        assert_eq!(stats.percentile(90.0), 90.0);
        assert_eq!(stats.percentile(99.0), 99.0);
        assert_eq!(stats.percentile(100.0), 100.0);
        let tiny = Stats::from_samples(vec![7.0], 1);
        assert_eq!(tiny.percentile(50.0), 7.0);
        assert_eq!(tiny.percentile(99.0), 7.0);
    }
}
