//! Multi-threaded batch rewrite engine: fan a query workload across N
//! worker threads sharing one `Arc<AlignmentStore>` + `Arc<FrozenInterner>`.
//!
//! This is the serve-phase shape the core crate's API redesign enables: the
//! rule set and symbol table are frozen and shared read-only, every worker
//! owns a [`RewriteScratch`], and the hot loop performs no locking, no
//! interning, and (once warm) no allocation. Work is split into contiguous
//! chunks so outputs can be reassembled in input order; because the fresh
//! counter restarts per query, the rewritten output of a query is identical
//! no matter which thread (or how many threads) processed it — asserted by
//! the determinism test below.

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use sparql_rewrite_core::{
    AlignmentStore, FrozenInterner, IndexedRewriter, Query, RewriteScratch, Rewriter,
};

pub struct BatchEngine {
    store: Arc<AlignmentStore>,
    interner: Arc<FrozenInterner>,
}

impl BatchEngine {
    pub fn new(store: Arc<AlignmentStore>, interner: Arc<FrozenInterner>) -> BatchEngine {
        BatchEngine { store, interner }
    }

    /// The shared frozen symbol table (for rendering results).
    pub fn interner(&self) -> &FrozenInterner {
        &self.interner
    }

    /// The shared fan-out scaffold: split `queries` into `n_threads`
    /// contiguous chunks, give each worker its own rewriter handle (an
    /// `Arc` clone of the shared store) and `RewriteScratch`, run `work`
    /// per chunk, and return the per-chunk results in chunk order. Both
    /// public entry points ride this, so the timed path always partitions
    /// work exactly the way the collecting path does.
    fn run_chunked<T, F>(&self, queries: &[Query], n_threads: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&[Query], &IndexedRewriter, &mut RewriteScratch) -> T + Sync,
    {
        let chunk = queries.len().div_ceil(n_threads.max(1)).max(1);
        thread::scope(|scope| {
            let work = &work;
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|slice| {
                    let store = Arc::clone(&self.store);
                    scope.spawn(move || {
                        let rewriter = IndexedRewriter::new(store);
                        let mut scratch = RewriteScratch::new();
                        work(slice, &rewriter, &mut scratch)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    }

    /// Rewrite every query across `n_threads` workers; outputs come back in
    /// input order regardless of the thread that produced them.
    pub fn rewrite_all(&self, queries: &[Query], n_threads: usize) -> Vec<Query> {
        let chunks = self.run_chunked(queries, n_threads, |slice, rewriter, scratch| {
            slice
                .iter()
                .map(|q| {
                    rewriter.rewrite_query_into(q, scratch);
                    scratch.to_query()
                })
                .collect::<Vec<Query>>()
        });
        let mut out = Vec::with_capacity(queries.len());
        for c in chunks {
            out.extend(c);
        }
        out
    }

    /// Steady-state timed run: each worker loops `reps` times over its
    /// contiguous slice with a warmed scratch (one untimed warm-up pass),
    /// rewriting into the scratch without materializing owned output.
    /// Returns total wall-clock time for the whole fan-out, including
    /// thread spawn/join — amortized by choosing `reps` large enough.
    pub fn timed_run(&self, queries: &[Query], n_threads: usize, reps: u32) -> Duration {
        let start = Instant::now();
        self.run_chunked(queries, n_threads, |slice, rewriter, scratch| {
            for q in slice {
                rewriter.rewrite_query_into(q, scratch);
            }
            for _ in 0..reps {
                for q in slice {
                    rewriter.rewrite_query_into(q, scratch);
                    std::hint::black_box(scratch.patterns());
                }
            }
        });
        start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadSpec};
    use sparql_rewrite_core::Interner;

    fn engine_and_queries() -> (BatchEngine, Vec<Query>) {
        let spec = WorkloadSpec {
            n_rules: 400,
            patterns_per_query: 8,
            n_queries: 97, // deliberately not divisible by the thread counts
            seed: 0xfeed_beef,
            // Group shapes: the batch engine must stay deterministic across
            // thread counts on the recursive path (UNION expansion included).
            group_shapes: true,
            complex: crate::workload::ComplexShape::None,
        };
        let mut w = generate(&spec);
        let mut store = std::mem::take(&mut w.store);
        // Freeze into the dense direct-indexed dispatch tables, like the
        // production serve path.
        assert!(store.build_dense_index(w.interner.symbol_bound()));
        let interner = Arc::new(std::mem::replace(&mut w.interner, Interner::new()).freeze());
        (
            BatchEngine::new(Arc::new(store), interner),
            std::mem::take(&mut w.queries),
        )
    }

    #[test]
    fn parallel_rewrite_equals_sequential_at_any_thread_count() {
        let (engine, queries) = engine_and_queries();
        // Ground truth: plain sequential rewrites, one scratch-free call per
        // query.
        let rewriter = IndexedRewriter::new(Arc::clone(&engine.store));
        let sequential: Vec<Query> = queries.iter().map(|q| rewriter.rewrite_query(q)).collect();

        for n_threads in [1, 2, 4, 8] {
            let parallel = engine.rewrite_all(&queries, n_threads);
            assert_eq!(
                parallel, sequential,
                "{n_threads}-thread batch diverged from sequential rewriting"
            );
        }
    }

    #[test]
    fn one_thread_and_eight_threads_render_identically() {
        let (engine, queries) = engine_and_queries();
        let one = engine.rewrite_all(&queries, 1);
        let eight = engine.rewrite_all(&queries, 8);
        assert_eq!(one, eight);
        // Rendered text (the externally observable artifact) matches too —
        // fresh-variable naming must not depend on scheduling.
        for (a, b) in one.iter().zip(&eight) {
            assert_eq!(
                a.display(engine.interner()).to_string(),
                b.display(engine.interner()).to_string()
            );
        }
    }

    #[test]
    fn timed_run_smoke() {
        let (engine, queries) = engine_and_queries();
        let elapsed = engine.timed_run(&queries, 2, 3);
        assert!(elapsed > Duration::ZERO);
    }
}
