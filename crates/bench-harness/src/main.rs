//! Benchmark runner: measures indexed vs linear BGP rewriting over
//! synthetic workloads, thread-scaling of the shared-read-only batch
//! engine, and allocations per rewrite — then writes `BENCH_core.json`.
//!
//! ```text
//! cargo run --release -p bench-harness            # full grid -> BENCH_core.json
//! cargo run --release -p bench-harness -- --quick # small grid, short budgets
//! cargo run --release -p bench-harness -- --out path.json
//! ```
//!
//! In both modes the run doubles as a regression gate: it exits nonzero if
//! steady-state rewriting allocates, if indexed throughput falls under a
//! conservative floor, or if the indexed/linear speedup collapses — so CI's
//! `--quick` smoke run fails loudly on perf regressions in the rewrite path.

mod bench;
mod json;
mod parallel;
mod workload;

use std::sync::Arc;
use std::time::Duration;

use bench::{Bencher, Stats};
use json::{array, JsonObject};
use parallel::BatchEngine;
use sparql_rewrite_core::counting_alloc::{allocation_count, CountingAllocator};
use sparql_rewrite_core::{IndexedRewriter, Interner, LinearRewriter, RewriteScratch, Rewriter};
use workload::{generate, WorkloadSpec};

// Counting allocator (shared with the core crate's alloc_free test) so the
// harness can report — and gate on — allocations per steady-state rewrite.
#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

struct ConfigResult {
    n_rules: usize,
    patterns_per_query: usize,
    strategy: &'static str,
    /// "flat" for plain BGP batches, "group" for OPTIONAL/UNION/FILTER
    /// workloads driving the recursive rewrite path.
    shape: &'static str,
    ns_per_query: f64,
    ns_per_pattern: f64,
    patterns_per_sec: f64,
    /// Heap allocations per `rewrite_query_into` call at steady state.
    allocs_per_rewrite: f64,
    stats: Stats,
}

fn run_config(
    bencher: &Bencher,
    n_rules: usize,
    patterns_per_query: usize,
    strategy_linear: bool,
    group_shapes: bool,
) -> ConfigResult {
    let spec = WorkloadSpec {
        n_rules,
        patterns_per_query,
        // A batch of queries per iteration so one iteration is meaty even
        // for the indexed path on tiny queries.
        n_queries: 64,
        seed: 0x5eed_0000 + n_rules as u64,
        group_shapes,
    };
    let mut w = generate(&spec);
    let store = std::mem::take(&mut w.store);
    let strategy: Box<dyn Rewriter> = if strategy_linear {
        Box::new(LinearRewriter::new(&store))
    } else {
        Box::new(IndexedRewriter::new(&store))
    };

    let queries = std::mem::take(&mut w.queries);
    let mut scratch = RewriteScratch::new();
    let stats = bencher.run(|| {
        for q in &queries {
            strategy.rewrite_query_into(q, &mut scratch);
            std::hint::black_box(scratch.patterns());
        }
    });

    // Steady state reached during the bench warm-up: count allocations over
    // one more full pass.
    let before = allocation_count();
    for q in &queries {
        strategy.rewrite_query_into(q, &mut scratch);
        std::hint::black_box(scratch.patterns());
    }
    let allocs_per_rewrite = (allocation_count() - before) as f64 / queries.len() as f64;

    // One bench iteration rewrites the whole batch.
    let ns_per_query = stats.median_ns / queries.len() as f64;
    let ns_per_pattern = stats.median_ns / w.total_patterns as f64;
    ConfigResult {
        n_rules,
        patterns_per_query,
        strategy: if strategy_linear { "linear" } else { "indexed" },
        shape: if group_shapes { "group" } else { "flat" },
        ns_per_query,
        ns_per_pattern,
        patterns_per_sec: 1e9 / ns_per_pattern,
        allocs_per_rewrite,
        stats,
    }
}

struct ThreadResult {
    threads: usize,
    patterns_per_sec: f64,
    speedup_vs_1: f64,
}

struct ScalingReport {
    results: Vec<ThreadResult>,
    /// Rewriting the workload on 1 thread and on max(thread_counts) threads
    /// produced identical queries AND identical rendered text.
    deterministic: bool,
}

/// Thread-scaling sweep of the batch engine: one shared `Arc` rule set and
/// frozen interner, N workers, contiguous chunks, warmed scratches.
fn run_thread_scaling(quick: bool, thread_counts: &[usize]) -> ScalingReport {
    let spec = WorkloadSpec {
        n_rules: if quick { 1_000 } else { 10_000 },
        patterns_per_query: 8,
        n_queries: 256,
        seed: 0x0007_4ead_5ca1_e000,
        group_shapes: false,
    };
    let mut w = generate(&spec);
    let store = Arc::new(std::mem::take(&mut w.store));
    let frozen = Arc::new(std::mem::replace(&mut w.interner, Interner::new()).freeze());
    let engine = BatchEngine::new(store, frozen);
    let queries = std::mem::take(&mut w.queries);

    // Calibrate reps so the 1-thread run lasts ~budget.
    let budget = if quick {
        Duration::from_millis(100)
    } else {
        Duration::from_millis(400)
    };
    let probe = engine
        .timed_run(&queries, 1, 4)
        .max(Duration::from_micros(50));
    let per_pass = probe.as_secs_f64() / 5.0; // 4 reps + warm pass
    let reps = ((budget.as_secs_f64() / per_pass) as u32).clamp(4, 100_000);

    let mut results = Vec::new();
    let mut base = 0.0f64;
    for &threads in thread_counts {
        // Median of three runs; spawn/join noise dominates tails on small
        // budgets.
        let mut secs: Vec<f64> = (0..3)
            .map(|_| engine.timed_run(&queries, threads, reps).as_secs_f64())
            .collect();
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let elapsed = secs[1];
        // The untimed-warm pass inside timed_run does the same work, so
        // count reps + 1 passes.
        let patterns = w.total_patterns as f64 * (reps as f64 + 1.0);
        let pps = patterns / elapsed;
        if threads == 1 {
            base = pps;
        }
        results.push(ThreadResult {
            threads,
            patterns_per_sec: pps,
            speedup_vs_1: if base > 0.0 { pps / base } else { 0.0 },
        });
    }

    // Determinism: the fresh-counter scheme is per-query, so the rewritten
    // batch (and its rendered text) must not depend on the thread count.
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let one = engine.rewrite_all(&queries, 1);
    let many = engine.rewrite_all(&queries, max_threads);
    let deterministic = one == many
        && one.iter().zip(&many).all(|(a, b)| {
            a.display(engine.interner()).to_string() == b.display(engine.interner()).to_string()
        });

    ScalingReport {
        results,
        deterministic,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_core.json".to_string());

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let (rule_counts, pattern_counts): (&[usize], &[usize]) = if quick {
        (&[1_000, 10_000], &[4, 16])
    } else {
        (&[1_000, 10_000, 100_000], &[1, 4, 8, 32])
    };
    let bencher = if quick {
        Bencher {
            warmup: Duration::from_millis(50),
            measure_budget: Duration::from_millis(200),
            target_samples: 15,
        }
    } else {
        Bencher::default()
    };

    let mut results: Vec<ConfigResult> = Vec::new();
    eprintln!(
        "{:>8} {:>9} {:>9} {:>6} {:>14} {:>14} {:>16} {:>8}",
        "rules",
        "patterns",
        "strategy",
        "shape",
        "ns/query",
        "ns/pattern",
        "patterns/sec",
        "allocs"
    );
    let run_one = |results: &mut Vec<ConfigResult>, n_rules, ppq, linear, group| {
        let r = run_config(&bencher, n_rules, ppq, linear, group);
        eprintln!(
            "{:>8} {:>9} {:>9} {:>6} {:>14.0} {:>14.1} {:>16.0} {:>8.2}",
            r.n_rules,
            r.patterns_per_query,
            r.strategy,
            r.shape,
            r.ns_per_query,
            r.ns_per_pattern,
            r.patterns_per_sec,
            r.allocs_per_rewrite
        );
        results.push(r);
    };
    for &n_rules in rule_counts {
        for &ppq in pattern_counts {
            for linear in [false, true] {
                run_one(&mut results, n_rules, ppq, linear, false);
            }
        }
    }
    // Group-shaped workloads gate the recursive path (nested groups,
    // OPTIONAL, UNION — including multi-template UNION expansion — and
    // FILTER substitution) under the same alloc/throughput gates.
    let group_rule_counts: &[usize] = if quick {
        &[1_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    for &n_rules in group_rule_counts {
        for linear in [false, true] {
            run_one(&mut results, n_rules, 8, linear, true);
        }
    }

    // Speedup per rule-set size: geometric mean over query sizes of
    // (linear ns / indexed ns) for matched configs.
    let mut speedups = Vec::new();
    for &n_rules in rule_counts {
        let mut log_sum = 0.0;
        let mut n = 0u32;
        for &ppq in pattern_counts {
            let find = |s: &str| {
                results.iter().find(|r| {
                    r.n_rules == n_rules
                        && r.patterns_per_query == ppq
                        && r.strategy == s
                        && r.shape == "flat"
                })
            };
            if let (Some(idx), Some(lin)) = (find("indexed"), find("linear")) {
                log_sum += (lin.ns_per_pattern / idx.ns_per_pattern).ln();
                n += 1;
            }
        }
        let geo = (log_sum / n as f64).exp();
        eprintln!("speedup @ {n_rules} rules (geomean): {geo:.1}x");
        speedups.push((n_rules, geo));
    }
    let min_indexed_throughput = results
        .iter()
        .filter(|r| r.strategy == "indexed")
        .map(|r| r.patterns_per_sec)
        .fold(f64::INFINITY, f64::min);
    eprintln!("indexed throughput floor: {min_indexed_throughput:.0} patterns/sec");

    // Thread-scaling sweep of the shared-read-only batch engine.
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    eprintln!("thread scaling (batch engine, host has {host_cpus} cpu(s)):");
    let scaling = run_thread_scaling(quick, thread_counts);
    let thread_results = &scaling.results;
    for t in thread_results {
        eprintln!(
            "  {:>2} thread(s): {:>14.0} patterns/sec  ({:.2}x vs 1 thread)",
            t.threads, t.patterns_per_sec, t.speedup_vs_1
        );
    }

    let max_allocs = results
        .iter()
        .map(|r| r.allocs_per_rewrite)
        .fold(0.0f64, f64::max);
    let scaling_4t = thread_results
        .iter()
        .find(|t| t.threads == 4)
        .map(|t| t.speedup_vs_1)
        .unwrap_or(0.0);

    let configs = array(results.iter().map(|r| {
        let mut o = JsonObject::new();
        o.int("rules", r.n_rules as u64)
            .int("patterns_per_query", r.patterns_per_query as u64)
            .str("strategy", r.strategy)
            .str("shape", r.shape)
            .num("ns_per_query_median", r.ns_per_query)
            .num("ns_per_pattern_median", r.ns_per_pattern)
            .num("patterns_per_sec", r.patterns_per_sec)
            .num("allocs_per_rewrite", r.allocs_per_rewrite)
            .num("sample_mean_ns", r.stats.mean_ns)
            .num("sample_stddev_ns", r.stats.stddev_ns)
            .num("sample_min_ns", r.stats.min_ns)
            .num("sample_max_ns", r.stats.max_ns)
            .int("samples", r.stats.samples_ns.len() as u64)
            .int("iters_per_sample", r.stats.iters_per_sample);
        o.finish()
    }));
    let speedup_json = array(speedups.iter().map(|(n_rules, geo)| {
        let mut o = JsonObject::new();
        o.int("rules", *n_rules as u64)
            .num("speedup_indexed_vs_linear_geomean", *geo);
        o.finish()
    }));
    let scaling_json = array(thread_results.iter().map(|t| {
        let mut o = JsonObject::new();
        o.int("threads", t.threads as u64)
            .num("patterns_per_sec", t.patterns_per_sec)
            .num("speedup_vs_1_thread", t.speedup_vs_1);
        o.finish()
    }));
    let mut summary = JsonObject::new();
    summary
        .raw("speedup_by_rule_count", &speedup_json)
        .num("indexed_patterns_per_sec_min", min_indexed_throughput)
        .num("allocs_per_rewrite_max", max_allocs)
        .num("thread_scaling_speedup_at_4", scaling_4t);

    let mut root = JsonObject::new();
    root.str("benchmark", "bgp_rewriting_core")
        .str(
            "description",
            "indexed vs linear alignment-rule lookup while rewriting synthetic BGPs \
             (Correndo et al. EDBT 2010 rewriting model), plus thread-scaling of the \
             shared-read-only batch engine",
        )
        .str("unit", "ns per rewritten query / triple pattern, medians")
        .str("mode", if quick { "quick" } else { "full" })
        .int("host_cpus", host_cpus as u64)
        .raw("configs", &configs)
        .raw("thread_scaling", &scaling_json)
        .raw("summary", &summary.finish());
    let doc = root.finish();

    if let Err(e) = std::fs::write(&out_path, format!("{doc}\n")) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    // ---- Regression gates (CI runs --quick; a failed gate fails the job) ----
    let mut failures: Vec<String> = Vec::new();
    if max_allocs > 0.0 {
        failures.push(format!(
            "steady-state rewriting allocated ({max_allocs:.2} allocs/rewrite, expected 0)"
        ));
    }
    // Conservative absolute floor: the indexed path sustains ~10M
    // patterns/sec on a 2020s laptop core; 250k leaves 40x headroom for
    // slow CI machines while still catching accidental O(rules) work.
    if min_indexed_throughput < 250_000.0 {
        failures.push(format!(
            "indexed throughput floor {min_indexed_throughput:.0} patterns/sec < 250000"
        ));
    }
    if let Some((n_rules, geo)) = speedups.last() {
        if *geo < 2.0 {
            failures.push(format!(
                "indexed vs linear speedup collapsed: {geo:.2}x at {n_rules} rules (< 2x)"
            ));
        }
    }
    // Thread scaling is only gated where the hardware can express it, and
    // the quick (CI) threshold is deliberately loose: shared CI runners
    // report 4 vCPUs but contend for physical cores, so 1.2x there still
    // catches a reintroduced global lock (~1.0x) without flaking on noisy
    // neighbors. The full-mode threshold matches the acceptance target.
    let scaling_floor = if quick { 1.2 } else { 2.0 };
    if host_cpus >= 4 && scaling_4t < scaling_floor {
        failures.push(format!(
            "4-thread batch speedup {scaling_4t:.2}x < {scaling_floor}x on a {host_cpus}-cpu host"
        ));
    }
    if !scaling.deterministic {
        failures.push("parallel batch output diverged from the 1-thread rewrite".to_string());
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("PERF GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("perf gates passed");
}
